//! The TRUST web server.
//!
//! Implements the server side of Figures 9 and 10: account ↔ public-key
//! binding, nonce freshness with replay detection, session-key unsealing,
//! per-interaction MAC verification, the risk policy, and the audit log of
//! frame hashes ("the server can store it to a log file. During future
//! audit event, the log can be investigated to discover how the user
//! interacted with the service").

use std::collections::HashMap;

use btd_crypto::bignum::U2048;
use btd_crypto::cert::{Certificate, Role};
use btd_crypto::entropy::{ChaChaEntropy, EntropySource};
use btd_crypto::group::DhGroup;
use btd_crypto::hmac::{hmac_sha256, verify_hmac};
use btd_crypto::nonce::{Nonce, NonceCheck, NonceGenerator, ReplayGuard};
use btd_crypto::schnorr::{KeyPair, PublicKey, Signature};
use btd_crypto::sha256::Digest;
use btd_sim::rng::SimRng;
use btd_sim::time::SimTime;
use btd_sim::trace::TraceLog;

use crate::ca::TrustAuthority;
use crate::messages::{
    ContentPage, Freshness, InteractionRequest, LoginSubmit, RegistrationAck, RegistrationSubmit,
    Reject, ServerHello,
};
use crate::pages::Page;
use crate::risk_policy::{RiskDecision, RiskReport, ServerRiskPolicy};

/// A bound account.
#[derive(Clone, Debug)]
struct AccountRecord {
    public_key: PublicKey,
    /// Fallback credential for identity reset ("the user can rely on her
    /// old passwords in order to … reset").
    reset_password: String,
}

/// The last reply served in a session, kept so a retransmitted request
/// can be answered without advancing state (at-most-once semantics).
#[derive(Clone, Debug)]
struct CachedInteraction {
    /// Sequence number of the request that produced the reply.
    seq: u64,
    /// MAC of that request — identifies a byte-identical retransmit.
    request_mac: Digest,
    /// The reply to resend.
    reply: ContentPage,
}

/// A live session.
#[derive(Clone, Debug)]
struct Session {
    account: String,
    key: Vec<u8>,
    pending_nonce: Nonce,
    /// Sequence number the next fresh interaction must carry.
    expected_seq: u64,
    /// Idempotency cache for the last served interaction.
    cache: Option<CachedInteraction>,
    current_path: String,
    stepups: u32,
    terminated: bool,
    interactions: u64,
}

/// One audit-log entry: what page the server believes the user was seeing,
/// and the frame hash FLock reported.
#[derive(Clone, Debug)]
pub struct AuditEntry {
    /// Account that acted.
    pub account: String,
    /// Path of the page the server had served for this view.
    pub expected_path: String,
    /// The frame hash FLock attached to the request.
    pub frame_hash: Digest,
    /// The action requested.
    pub action: String,
    /// The risk report attached.
    pub risk: RiskReport,
}

/// The TRUST web server.
#[derive(Debug)]
pub struct WebServer {
    domain: String,
    keys: KeyPair,
    cert: Certificate,
    ca_key: PublicKey,
    entropy: ChaChaEntropy,
    nonces: NonceGenerator<ChaChaEntropy>,
    replay: ReplayGuard,
    accounts: HashMap<String, AccountRecord>,
    sessions: HashMap<String, Session>,
    /// Idempotency cache for bound registrations, keyed by submission
    /// nonce: an exact retransmit is re-acked without rebinding.
    reg_cache: HashMap<Nonce, (Signature, RegistrationAck)>,
    /// Idempotency cache for opened logins, keyed by submission nonce: an
    /// exact retransmit gets the same first content page back.
    login_cache: HashMap<Nonce, (Signature, ContentPage)>,
    pages: HashMap<String, Page>,
    policy: ServerRiskPolicy,
    audit_log: Vec<AuditEntry>,
    reject_counts: HashMap<Reject, u64>,
    session_counter: u64,
    trace: TraceLog,
}

impl WebServer {
    /// Creates a server for `domain`, with a CA-issued certificate and a
    /// default page set (registration, login, home, and a few content
    /// pages).
    pub fn new(
        domain: &str,
        group: &'static DhGroup,
        ca: &mut TrustAuthority,
        rng: &mut SimRng,
    ) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut entropy = ChaChaEntropy::from_seed(seed);
        let keys = KeyPair::generate(group, &mut entropy);
        let cert = ca.issue_server_cert(domain, keys.public_key());
        let nonce_entropy = entropy.fork(b"nonces");

        let mut pages = HashMap::new();
        for (path, body) in [
            ("/register", &b"create your account"[..]),
            ("/login", &b"enter"[..]),
            ("/home", &b"welcome back"[..]),
            ("/inbox", &b"3 unread messages"[..]),
            ("/transfer", &b"transfer funds"[..]),
            ("/settings", &b"account settings"[..]),
        ] {
            pages.insert(path.to_owned(), Page::new(path, body.to_vec()));
        }

        WebServer {
            domain: domain.to_owned(),
            keys,
            cert,
            ca_key: ca.public_key().clone(),
            entropy,
            nonces: NonceGenerator::new(nonce_entropy),
            replay: ReplayGuard::new(),
            accounts: HashMap::new(),
            sessions: HashMap::new(),
            reg_cache: HashMap::new(),
            login_cache: HashMap::new(),
            pages,
            policy: ServerRiskPolicy::default(),
            audit_log: Vec::new(),
            reject_counts: HashMap::new(),
            session_counter: 0,
            trace: TraceLog::new(),
        }
    }

    /// The serving domain.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The server's public key.
    pub fn public_key(&self) -> &PublicKey {
        self.keys.public_key()
    }

    /// Overrides the risk policy (for the policy-sweep experiments).
    pub fn set_risk_policy(&mut self, policy: ServerRiskPolicy) {
        self.policy = policy;
    }

    /// The page at `path`, if served here.
    pub fn page(&self, path: &str) -> Option<&Page> {
        self.pages.get(path)
    }

    /// Adds (or replaces) a served page.
    pub fn put_page(&mut self, page: Page) {
        self.pages.insert(page.path.clone(), page);
    }

    /// Number of bound accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Whether `account` is bound.
    pub fn has_account(&self, account: &str) -> bool {
        self.accounts.contains_key(account)
    }

    /// The audit log.
    pub fn audit_log(&self) -> &[AuditEntry] {
        &self.audit_log
    }

    /// Rejection counters keyed by reason (the attack-matrix rows).
    pub fn reject_counts(&self) -> &HashMap<Reject, u64> {
        &self.reject_counts
    }

    fn reject(&mut self, reason: Reject) -> Reject {
        *self.reject_counts.entry(reason).or_insert(0) += 1;
        self.trace.security(
            SimTime::ZERO,
            "server",
            format!("rejected request: {reason}"),
        );
        reason
    }

    /// The server's security-event trace (every rejection, in order).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    fn fresh_nonce(&mut self) -> Nonce {
        let n = self.nonces.next_nonce();
        self.replay.issue(n);
        n
    }

    fn consume_nonce(&mut self, nonce: Nonce) -> Result<(), Reject> {
        match self.replay.consume(nonce) {
            NonceCheck::Fresh => Ok(()),
            NonceCheck::Replayed => Err(self.reject(Reject::Replay)),
            NonceCheck::Unknown => Err(self.reject(Reject::UnknownNonce)),
        }
    }

    /// Serves a page with freshness + authenticity (Figs. 9/10, step 1).
    ///
    /// # Panics
    ///
    /// Panics if `path` is not a served page.
    pub fn hello(&mut self, path: &str) -> ServerHello {
        let page = self
            .pages
            .get(path)
            .unwrap_or_else(|| panic!("no page at {path}"))
            .clone();
        let nonce = self.fresh_nonce();
        let bytes = ServerHello::signed_bytes(&self.domain, &page, &nonce);
        let signature = self.keys.sign(&bytes, &mut self.entropy);
        ServerHello {
            domain: self.domain.clone(),
            page,
            nonce,
            server_cert: self.cert.clone(),
            signature,
        }
    }

    /// Handles a registration submission (Fig. 9, step 5): verifies the
    /// nonce, the device certificate, and the device signature, then binds
    /// the account to the submitted public key.
    ///
    /// A byte-identical retransmit of an already-bound submission is
    /// re-acked as [`Freshness::Resent`] without touching state, so a
    /// device that lost the ack can retry safely.
    ///
    /// # Errors
    ///
    /// Rejects on replayed/unknown nonce, bad certificate, bad signature,
    /// an already-bound account name, or an invalid submitted key.
    pub fn handle_registration(
        &mut self,
        msg: &RegistrationSubmit,
    ) -> Result<(RegistrationAck, Freshness), Reject> {
        if let Some((sig, ack)) = self.reg_cache.get(&msg.nonce) {
            if *sig == msg.signature {
                return Ok((ack.clone(), Freshness::Resent));
            }
        }
        self.consume_nonce(msg.nonce)?;
        if !msg.device_cert.verify(&self.ca_key) || msg.device_cert.role() != Role::FlockModule {
            return Err(self.reject(Reject::BadCertificate));
        }
        let bytes = RegistrationSubmit::signed_bytes(
            &msg.domain,
            &msg.account,
            &msg.nonce,
            &msg.frame_hash,
            &msg.user_public,
        );
        if msg.domain != self.domain || !msg.device_cert.public_key().verify(&bytes, &msg.signature)
        {
            return Err(self.reject(Reject::BadSignature));
        }
        if self.accounts.contains_key(&msg.account) {
            return Err(self.reject(Reject::AccountExists));
        }
        let element = U2048::from_be_bytes(&msg.user_public);
        let group = self.keys.public_key().group();
        if !group.contains(&element) {
            return Err(self.reject(Reject::BadSignature));
        }
        let public_key = PublicKey::from_element(group, element);
        // Fallback password, deliverable out of band; derived here so the
        // reset experiment has a stable credential.
        let reset_password = format!("reset-{}-{}", msg.account, public_key.fingerprint());
        self.accounts.insert(
            msg.account.clone(),
            AccountRecord {
                public_key,
                reset_password,
            },
        );
        self.audit_log.push(AuditEntry {
            account: msg.account.clone(),
            expected_path: "/register".to_owned(),
            frame_hash: msg.frame_hash,
            action: "register".to_owned(),
            risk: RiskReport::fresh_login(),
        });
        let ack = RegistrationAck {
            account: msg.account.clone(),
            nonce: msg.nonce,
        };
        self.reg_cache
            .insert(msg.nonce, (msg.signature.clone(), ack.clone()));
        Ok((ack, Freshness::Fresh))
    }

    /// The account's fallback reset password (out-of-band channel in the
    /// real deployment; exposed for the reset experiment).
    pub fn reset_password_for(&self, account: &str) -> Option<&str> {
        self.accounts
            .get(account)
            .map(|a| a.reset_password.as_str())
    }

    /// Handles a login submission (Fig. 10, step 3): verifies nonce and
    /// user-key signature, recovers the session key, evaluates risk, and
    /// opens a session whose first content page it returns.
    ///
    /// A byte-identical retransmit of an already-processed submission gets
    /// the same first page back as [`Freshness::Resent`] without opening a
    /// second session; a replay with *different* bytes is rejected.
    ///
    /// # Errors
    ///
    /// Rejects on nonce, account, signature, session-key, or risk-policy
    /// failures.
    pub fn handle_login(&mut self, msg: &LoginSubmit) -> Result<(ContentPage, Freshness), Reject> {
        if let Some((sig, page)) = self.login_cache.get(&msg.nonce) {
            if *sig == msg.signature {
                return Ok((page.clone(), Freshness::Resent));
            }
        }
        self.consume_nonce(msg.nonce)?;
        let account_key = match self.accounts.get(&msg.account) {
            Some(record) => record.public_key.clone(),
            None => return Err(self.reject(Reject::UnknownAccount)),
        };
        let bytes = LoginSubmit::signed_bytes(
            &msg.domain,
            &msg.account,
            &msg.nonce,
            &msg.sealed_session_key,
            &msg.frame_hash,
            &msg.risk,
        );
        if msg.domain != self.domain || !account_key.verify(&bytes, &msg.signature) {
            return Err(self.reject(Reject::BadSignature));
        }
        let Ok(session_key) = btd_crypto::elgamal::open(&self.keys, &msg.sealed_session_key) else {
            return Err(self.reject(Reject::BadSessionKey));
        };
        if self.policy.evaluate(&msg.risk, 0) == RiskDecision::Terminate {
            return Err(self.reject(Reject::RiskTerminated));
        }

        self.session_counter += 1;
        let session_id = format!(
            "sess-{}-{}",
            self.session_counter,
            Nonce({
                let mut b = [0u8; 16];
                self.entropy.fill(&mut b);
                b
            })
        );
        self.audit_log.push(AuditEntry {
            account: msg.account.clone(),
            expected_path: "/login".to_owned(),
            frame_hash: msg.frame_hash,
            action: "login".to_owned(),
            risk: msg.risk,
        });
        let home = self.pages.get("/home").expect("home page").clone();
        let nonce = self.fresh_nonce();
        let mac_bytes = ContentPage::mac_bytes(&session_id, &msg.account, &nonce, 0, &home);
        let mac = hmac_sha256(&session_key, &mac_bytes);
        self.sessions.insert(
            session_id.clone(),
            Session {
                account: msg.account.clone(),
                key: session_key,
                pending_nonce: nonce,
                expected_seq: 0,
                cache: None,
                current_path: "/home".to_owned(),
                stepups: 0,
                terminated: false,
                interactions: 0,
            },
        );
        let page = ContentPage {
            session_id,
            account: msg.account.clone(),
            nonce,
            seq: 0,
            page: home,
            mac,
        };
        self.login_cache
            .insert(msg.nonce, (msg.signature.clone(), page.clone()));
        Ok((page, Freshness::Fresh))
    }

    /// Handles a post-login interaction (Fig. 10, step 4).
    ///
    /// Requests carry a sequence number in lockstep with the server's
    /// per-session counter, which makes duplicate handling explicit:
    ///
    /// * `seq == expected` — fresh work: full nonce/MAC/risk checks, state
    ///   advances, reply is cached, returned as [`Freshness::Fresh`].
    /// * `seq == expected - 1`, byte-identical to the cached request — a
    ///   retransmit (our reply was lost): the cached reply is resent as
    ///   [`Freshness::Resent`] and *no state advances*.
    /// * `seq == expected - 1`, different bytes but a valid session MAC —
    ///   the genuine device lost our reply and built a new request against
    ///   stale state: the cached reply is resent as [`Freshness::Resync`]
    ///   so the device can catch up. No state advances.
    /// * anything else — rejected ([`Reject::Replay`] for stale sequence
    ///   numbers, [`Reject::UnknownNonce`] for future ones).
    ///
    /// # Errors
    ///
    /// Rejects on unknown/terminated session, stale/forged sequence
    /// number, nonce replay, MAC failure, or risk-policy termination.
    pub fn handle_interaction(
        &mut self,
        msg: &InteractionRequest,
    ) -> Result<(ContentPage, Freshness), Reject> {
        let (terminated, account_matches, pending_nonce, key, expected_seq) =
            match self.sessions.get(&msg.session_id) {
                Some(s) => (
                    s.terminated,
                    s.account == msg.account,
                    s.pending_nonce,
                    s.key.clone(),
                    s.expected_seq,
                ),
                None => return Err(self.reject(Reject::UnknownSession)),
            };
        if terminated || !account_matches {
            return Err(self.reject(Reject::UnknownSession));
        }
        if msg.seq.checked_add(1) == Some(expected_seq) {
            if let Some(cache) = self
                .sessions
                .get(&msg.session_id)
                .and_then(|s| s.cache.as_ref())
            {
                if cache.seq == msg.seq {
                    // The MAC must verify over *this copy's* bytes before
                    // the cache answers: equality with the cached MAC alone
                    // would let a tampered copy (original MAC, rewritten
                    // fields) pass as a benign retransmit.
                    let mac_bytes = InteractionRequest::mac_bytes(
                        &msg.session_id,
                        &msg.account,
                        &msg.nonce,
                        msg.seq,
                        &msg.action,
                        &msg.frame_hash,
                        &msg.risk,
                    );
                    if !verify_hmac(&key, &mac_bytes, &msg.mac) {
                        // Damaged or tampered copy of an old request;
                        // BadMac keeps an honest retransmit retryable.
                        return Err(self.reject(Reject::BadMac));
                    }
                    let freshness = if cache.request_mac == msg.mac {
                        Freshness::Resent
                    } else {
                        Freshness::Resync
                    };
                    return Ok((cache.reply.clone(), freshness));
                }
            }
            // No cache entry: classify below as a replay.
        }
        if msg.seq != expected_seq {
            let reason = if msg.seq < expected_seq {
                Reject::Replay
            } else {
                Reject::UnknownNonce
            };
            return Err(self.reject(reason));
        }
        if msg.nonce != pending_nonce {
            // Either a replayed old nonce or a forged one.
            let reason = if self.replay.consume(msg.nonce) == NonceCheck::Replayed {
                Reject::Replay
            } else {
                Reject::UnknownNonce
            };
            return Err(self.reject(reason));
        }
        let mac_bytes = InteractionRequest::mac_bytes(
            &msg.session_id,
            &msg.account,
            &msg.nonce,
            msg.seq,
            &msg.action,
            &msg.frame_hash,
            &msg.risk,
        );
        if !verify_hmac(&key, &mac_bytes, &msg.mac) {
            return Err(self.reject(Reject::BadMac));
        }
        self.consume_nonce(msg.nonce)?;

        // Risk policy.
        let stepups = self.sessions[&msg.session_id].stepups;
        let decision = self.policy.evaluate(&msg.risk, stepups);
        if decision == RiskDecision::Terminate {
            self.sessions
                .get_mut(&msg.session_id)
                .expect("session")
                .terminated = true;
            return Err(self.reject(Reject::RiskTerminated));
        }

        // Audit what the user saw when they acted.
        let expected_path = self.sessions[&msg.session_id].current_path.clone();
        self.audit_log.push(AuditEntry {
            account: msg.account.clone(),
            expected_path,
            frame_hash: msg.frame_hash,
            action: msg.action.clone(),
            risk: msg.risk,
        });

        // Serve the requested page (unknown actions bounce to home).
        let page = self
            .pages
            .get(&msg.action)
            .or_else(|| self.pages.get("/home"))
            .expect("home page")
            .clone();
        let nonce = self.fresh_nonce();
        let next_seq = msg.seq + 1;
        let mac_bytes =
            ContentPage::mac_bytes(&msg.session_id, &msg.account, &nonce, next_seq, &page);
        let mac = hmac_sha256(&key, &mac_bytes);
        let reply = ContentPage {
            session_id: msg.session_id.clone(),
            account: msg.account.clone(),
            nonce,
            seq: next_seq,
            page,
            mac,
        };
        let session = self.sessions.get_mut(&msg.session_id).expect("session");
        session.pending_nonce = nonce;
        session.expected_seq = next_seq;
        session.cache = Some(CachedInteraction {
            seq: msg.seq,
            request_mac: msg.mac,
            reply: reply.clone(),
        });
        session.current_path = reply.page.path.clone();
        session.interactions += 1;
        session.stepups = match decision {
            RiskDecision::StepUp => session.stepups + 1,
            _ => 0,
        };
        Ok((reply, Freshness::Fresh))
    }

    /// Identity reset after device loss: the fallback password removes the
    /// old key binding so the user can re-register from a new device
    /// (paper §IV, "Identity Reset").
    ///
    /// # Errors
    ///
    /// Rejects on unknown account or wrong credential.
    pub fn reset_identity(&mut self, account: &str, password: &str) -> Result<(), Reject> {
        let Some(record) = self.accounts.get(account) else {
            return Err(self.reject(Reject::UnknownAccount));
        };
        if record.reset_password != password {
            return Err(self.reject(Reject::BadResetCredential));
        }
        self.accounts.remove(account);
        // Kill any live sessions for the account.
        for s in self.sessions.values_mut() {
            if s.account == account {
                s.terminated = true;
            }
        }
        Ok(())
    }

    /// Interactions served in a session (testing/metrics).
    pub fn session_interactions(&self, session_id: &str) -> Option<u64> {
        self.sessions.get(session_id).map(|s| s.interactions)
    }

    /// Whether the session has been terminated.
    pub fn session_terminated(&self, session_id: &str) -> Option<bool> {
        self.sessions.get(session_id).map(|s| s.terminated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use btd_sim::trace::Severity;

    fn setup() -> (WebServer, TrustAuthority, SimRng) {
        let mut rng = SimRng::seed_from(11);
        let mut ca = TrustAuthority::new(DhGroup::test_512(), &mut rng);
        let server = WebServer::new("www.xyz.com", DhGroup::test_512(), &mut ca, &mut rng);
        (server, ca, rng)
    }

    #[test]
    fn hello_is_signed_and_fresh() {
        let (mut server, ca, _) = setup();
        let h1 = server.hello("/register");
        let h2 = server.hello("/register");
        assert_ne!(h1.nonce, h2.nonce, "nonces must be fresh");
        assert!(h1.server_cert.verify(ca.public_key()));
        let bytes = ServerHello::signed_bytes(&h1.domain, &h1.page, &h1.nonce);
        assert!(server.public_key().verify(&bytes, &h1.signature));
    }

    #[test]
    #[should_panic(expected = "no page")]
    fn hello_for_missing_page_panics() {
        let (mut server, _, _) = setup();
        let _ = server.hello("/nope");
    }

    #[test]
    fn reset_requires_correct_password() {
        let (mut server, _, _) = setup();
        // No account yet.
        assert_eq!(
            server.reset_identity("alice", "pw"),
            Err(Reject::UnknownAccount)
        );
        // Insert an account directly for this unit test.
        let key = server.public_key().clone();
        server.accounts.insert(
            "alice".into(),
            AccountRecord {
                public_key: key,
                reset_password: "correct".into(),
            },
        );
        assert_eq!(
            server.reset_identity("alice", "wrong"),
            Err(Reject::BadResetCredential)
        );
        assert!(server.reset_identity("alice", "correct").is_ok());
        assert!(!server.has_account("alice"));
    }

    #[test]
    fn reject_counters_accumulate() {
        let (mut server, _, _) = setup();
        let _ = server.reset_identity("ghost", "pw");
        let _ = server.reset_identity("ghost", "pw");
        assert_eq!(server.reject_counts()[&Reject::UnknownAccount], 2);
        // The security trace mirrors the counters.
        assert_eq!(server.trace().count_severity(Severity::Security), 2);
        assert_eq!(server.trace().matching("unknown account").count(), 2);
    }

    #[test]
    fn pages_can_be_added() {
        let (mut server, _, _) = setup();
        assert!(server.page("/promo").is_none());
        server.put_page(Page::new("/promo", b"sale".to_vec()));
        assert!(server.page("/promo").is_some());
    }
}
