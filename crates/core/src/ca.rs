//! The certificate authority of Figure 8.
//!
//! "The public key of the CA is stored on the FLock. We assume that each
//! Web Server and each FLock module of a mobile device have a public key
//! certificate signed by the CA." [`TrustAuthority`] issues those
//! certificates and provisions devices.

use btd_crypto::cert::{Certificate, CertificateAuthority, Role};
use btd_crypto::entropy::ChaChaEntropy;
use btd_crypto::group::DhGroup;
use btd_crypto::schnorr::PublicKey;
use btd_flock::module::FlockModule;
use btd_sim::rng::SimRng;

/// The CA server of the TRUST deployment.
#[derive(Debug)]
pub struct TrustAuthority {
    inner: CertificateAuthority,
    entropy: ChaChaEntropy,
}

impl TrustAuthority {
    /// Creates a CA over `group`.
    pub fn new(group: &'static DhGroup, rng: &mut SimRng) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut entropy = ChaChaEntropy::from_seed(seed);
        let inner = CertificateAuthority::new(group, &mut entropy);
        TrustAuthority { inner, entropy }
    }

    /// The CA root public key.
    pub fn public_key(&self) -> &PublicKey {
        self.inner.public_key()
    }

    /// Issues a web-server certificate.
    pub fn issue_server_cert(&mut self, domain: &str, key: &PublicKey) -> Certificate {
        self.inner
            .issue(domain, Role::WebServer, key, &mut self.entropy)
    }

    /// Issues a FLock-module certificate.
    pub fn issue_device_cert(&mut self, device_id: &str, key: &PublicKey) -> Certificate {
        self.inner
            .issue(device_id, Role::FlockModule, key, &mut self.entropy)
    }

    /// Factory provisioning: stores the CA root key in a FLock module and
    /// installs the module's own certificate.
    pub fn provision_device(&mut self, flock: &mut FlockModule) {
        flock.provision_ca(self.public_key().clone());
        let cert = self.issue_device_cert(flock.device_id(), &flock.device_public_key().clone());
        flock.install_certificate(cert);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_flock::module::FlockConfig;

    #[test]
    fn provisioned_device_trusts_ca_issued_certs() {
        let mut rng = SimRng::seed_from(1);
        let mut ca = TrustAuthority::new(DhGroup::test_512(), &mut rng);
        let mut flock = FlockModule::new("phone-1", FlockConfig::fast_test(), &mut rng);
        ca.provision_device(&mut flock);
        assert!(flock.certificate().is_some());
        // The device's own cert verifies under its provisioned root.
        let own = flock.certificate().unwrap().clone();
        assert!(flock.verify_certificate(&own));
    }

    #[test]
    fn server_and_device_roles_are_distinct() {
        let mut rng = SimRng::seed_from(2);
        let mut ca = TrustAuthority::new(DhGroup::test_512(), &mut rng);
        let mut flock = FlockModule::new("phone-1", FlockConfig::fast_test(), &mut rng);
        let key = flock.device_public_key().clone();
        let server_cert = ca.issue_server_cert("www.xyz.com", &key);
        let device_cert = ca.issue_device_cert("phone-1", &key);
        assert_ne!(server_cert.role(), device_cert.role());
        ca.provision_device(&mut flock);
        assert!(flock.verify_certificate(&server_cert));
        assert!(flock.verify_certificate(&device_cert));
    }
}
