#![warn(missing_docs)]

//! TRUST — Trust Reinforcement based on the Unified Structural
//! Touch-display.
//!
//! This crate is the paper's primary contribution: continuous local and
//! remote mobile identity management on top of the FLock biometric
//! touch-display module. It implements both TRUST scenarios end-to-end
//! against simulated adversaries:
//!
//! * **Local identity management** (paper §IV-A) — device unlock and
//!   continuous opportunistic fingerprint authentication live in
//!   [`btd_flock`]; this crate adds the device abstraction and scenario
//!   harnesses around them.
//! * **Remote identity management** (paper §IV-B) — device-to-web-server
//!   registration (Fig. 9), continuous per-interaction authentication over
//!   an untrusted network and host stack (Fig. 10), frame-hash auditing,
//!   identity reset, and identity transfer.
//!
//! Module map:
//!
//! * [`wire`] — canonical byte encoding shared by all signed/MACed
//!   messages.
//! * [`messages`] — the cookie-extension protocol messages of Figs. 9/10.
//! * [`ca`] — the certificate authority of Fig. 8.
//! * [`pages`] — hyper-text pages and their finite set of rendered views.
//! * [`server`] — the web server: account binding, sessions, replay
//!   protection, risk policy, audit log.
//! * [`server::journal`] — the server's crash-fault-tolerance layer: a
//!   CRC-framed write-ahead log with snapshot compaction, plus
//!   deterministic crash-point injection.
//! * [`device`] — the mobile device: untrusted host stack in front of a
//!   [`btd_flock::FlockModule`].
//! * [`channel`] — the untrusted network: a seedable fault-injection
//!   harness with replay, loss, jitter, reordering, and corruption
//!   adversaries.
//! * [`metrics`] — protocol robustness accounting (sends, retries,
//!   duplicate classification, latency histograms) and the retry policy.
//! * [`risk_policy`] — the "Risk: x out of the n touches authenticated"
//!   report and the server-side policy on it.
//! * [`registration`] — the Fig. 9 binding flow, end to end.
//! * [`auth`] — the Fig. 10 continuous-authentication flow.
//! * [`audit`] — offline frame-hash verification against the finite view
//!   set.
//! * [`reset`] — identity reset after device loss, over the wire.
//! * [`transfer`] — identity transfer to a new device over the faulty
//!   local link.
//! * [`chaos`] — the crash/loss chaos harness: the full lifecycle driven
//!   through seeded server crashes, journal recoveries, and session
//!   resumption.
//! * [`trace`] — deterministic protocol tracing: typed spans and point
//!   events across every layer, with JSONL export, queries, trace diff,
//!   and metrics derivation.
//! * [`timeline`] — a discrete-event replay of a session with true
//!   timestamps (touches at workload time, messages after latency).
//! * [`scenario`] — turnkey harnesses used by the examples, integration
//!   tests, and benches.
//! * [`parallel`] — the deterministic shard-parallel runtime: shard
//!   workers on OS threads outside the sim core, merged by logical time
//!   into byte-identical same-seed output at any worker count.
//! * [`telemetry`] — deterministic fleet observability over the trace:
//!   per-shard time series sampled on the logical clock, declarative
//!   SLO health verdicts, and a span profiler with folded-stack export.
//!
//! # Example
//!
//! ```
//! use trust_core::scenario::World;
//! use btd_sim::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from(1);
//! let mut world = World::new(&mut rng);
//! world.add_server("www.xyz.com", &mut rng);
//! let device = world.add_device("phone-1", 42, &mut rng);
//! let report = world.register(device, "www.xyz.com", "alice", &mut rng);
//! assert!(report.is_ok());
//! ```

pub mod audit;
pub mod auth;
pub mod ca;
pub mod channel;
pub mod chaos;
pub mod device;
pub mod engine;
pub mod messages;
pub mod metrics;
pub mod pages;
pub mod parallel;
pub mod registration;
pub mod reset;
pub mod risk_policy;
pub mod scenario;
pub mod server;
pub mod telemetry;
pub mod timeline;
pub mod trace;
pub mod transfer;
pub mod wire;

pub use device::MobileDevice;
pub use scenario::World;
pub use server::WebServer;
