//! Discrete-event session timeline.
//!
//! The flow functions in [`crate::auth`] run request/response pairs
//! back-to-back; this module replays a session on a *timeline* instead:
//! touches fire at their workload timestamps, network messages arrive one
//! channel latency later, and everything interleaves through a
//! deterministic event queue. The result is an event-ordered trace with
//! true timestamps — what you need to measure, e.g., how long a hijacker
//! holds a session in wall-clock terms, or how request pipelining behaves
//! when the user taps faster than the network round-trip.

use btd_sim::event::EventQueue;
use btd_sim::rng::SimRng;
use btd_workload::session::TouchSample;

use crate::device::MobileDevice;
use crate::messages::{ContentPage, InteractionRequest, Reject};
use crate::server::WebServer;

/// An event on the session timeline.
#[derive(Debug)]
enum Event {
    /// The user touches the panel (and requests `action`).
    Touch(TouchSample, &'static str),
    /// A device request reaches the server.
    RequestArrives(InteractionRequest),
    /// A server response reaches the device.
    ResponseArrives(ContentPage),
}

/// One entry of the resulting trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEntry {
    /// A request left the device at this time.
    Sent {
        /// Send time.
        at_ms: u64,
        /// Requested action.
        action: String,
    },
    /// The server served a page at this time.
    Served {
        /// Serve time.
        at_ms: u64,
        /// Served path.
        path: String,
    },
    /// The server rejected a request at this time.
    Rejected {
        /// Rejection time.
        at_ms: u64,
        /// Why.
        reason: Reject,
    },
    /// The device accepted and displayed a response at this time.
    Displayed {
        /// Display time.
        at_ms: u64,
    },
}

/// Replays `touches` as a timed session between `device` and `server`,
/// with one-way network latency `latency`. Returns the event-ordered
/// trace.
///
/// The device issues at most one in-flight request at a time (like a
/// browser navigation): touches that land while a request is outstanding
/// still run through the continuous-auth pipeline (they are touches!), but
/// do not issue a second request.
///
/// # Panics
///
/// Panics if the device has no live session for `domain`.
pub fn replay_session(
    device: &mut MobileDevice,
    server: &mut WebServer,
    domain: &str,
    actions: &[&'static str],
    touches: &[TouchSample],
    latency: btd_sim::time::SimDuration,
    rng: &mut SimRng,
) -> Vec<TraceEntry> {
    assert!(
        device.session_id(domain).is_some(),
        "device must be logged in before replay_session"
    );
    let mut queue: EventQueue<Event> = EventQueue::new();
    for (i, t) in touches.iter().enumerate() {
        queue.schedule(t.at, Event::Touch(*t, actions[i % actions.len()]));
    }

    let mut trace = Vec::new();
    let mut in_flight = false;
    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Touch(touch, action) => {
                if in_flight {
                    // The page hasn't come back yet; the touch is still
                    // continuous authentication, just not a navigation.
                    let _ = device.flock_mut().process_touch(&touch, rng);
                    continue;
                }
                match device.interact(domain, action, &touch, rng) {
                    Ok(request) => {
                        in_flight = true;
                        trace.push(TraceEntry::Sent {
                            at_ms: now.as_millis(),
                            action: action.to_owned(),
                        });
                        queue.schedule(now + latency, Event::RequestArrives(request));
                    }
                    Err(_) => continue,
                }
            }
            Event::RequestArrives(request) => {
                let arrival = now;
                match server.handle_interaction(&request) {
                    Ok((content, _freshness)) => {
                        trace.push(TraceEntry::Served {
                            at_ms: arrival.as_millis(),
                            path: content.page.path.clone(),
                        });
                        queue.schedule(arrival + latency, Event::ResponseArrives(content));
                    }
                    Err(reason) => {
                        in_flight = false;
                        trace.push(TraceEntry::Rejected {
                            at_ms: arrival.as_millis(),
                            reason,
                        });
                    }
                }
            }
            Event::ResponseArrives(content) => {
                in_flight = false;
                if device.accept_content(domain, &content).is_ok() {
                    trace.push(TraceEntry::Displayed {
                        at_ms: now.as_millis(),
                    });
                }
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::World;

    fn logged_in_world(seed: u64) -> (World, usize, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let mut world = World::new(&mut rng);
        world.add_server("www.xyz.com", &mut rng);
        let d = world.add_device("phone", 42, &mut rng);
        world.register(d, "www.xyz.com", "alice", &mut rng).unwrap();
        world.login(d, "www.xyz.com", &mut rng).unwrap();
        (world, d, rng)
    }

    #[test]
    fn trace_is_time_ordered_and_causal() {
        let (mut world, d, mut rng) = logged_in_world(60);
        let touches = world.touches_for_holder(d, 20, &mut rng);
        let trace = world.replay_session(d, "www.xyz.com", &touches, &mut rng);
        assert!(!trace.is_empty());
        // Monotone timestamps.
        let times: Vec<u64> = trace
            .iter()
            .map(|e| match e {
                TraceEntry::Sent { at_ms, .. }
                | TraceEntry::Served { at_ms, .. }
                | TraceEntry::Rejected { at_ms, .. }
                | TraceEntry::Displayed { at_ms } => *at_ms,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        // Causality: sends ≥ serves ≥ displays, and every serve follows a
        // send by exactly one latency.
        let sends = trace
            .iter()
            .filter(|e| matches!(e, TraceEntry::Sent { .. }))
            .count();
        let serves = trace
            .iter()
            .filter(|e| matches!(e, TraceEntry::Served { .. }))
            .count();
        let displays = trace
            .iter()
            .filter(|e| matches!(e, TraceEntry::Displayed { .. }))
            .count();
        assert!(sends >= serves);
        assert_eq!(serves, displays, "every served page reaches the screen");
        assert!(serves > 0, "session made no progress");
    }

    #[test]
    fn fast_tapping_is_throttled_by_in_flight_navigation() {
        let (mut world, d, mut rng) = logged_in_world(61);
        // 30 touches crammed into a fraction of the round-trip time.
        let mut touches = world.touches_for_holder(d, 30, &mut rng);
        for (i, t) in touches.iter_mut().enumerate() {
            t.at = btd_sim::time::SimTime::from_nanos(1_000_000 * (i as u64 + 1));
            // 1 ms apart
        }
        let trace = world.replay_session(d, "www.xyz.com", &touches, &mut rng);
        let sends = trace
            .iter()
            .filter(|e| matches!(e, TraceEntry::Sent { .. }))
            .count();
        assert_eq!(sends, 1, "only one navigation can be in flight");
    }
}
