//! Event-driven pipelined protocol engine.
//!
//! The stop-and-wait flows in [`crate::auth`] drive one exchange at a time:
//! the device blocks on each reply, so a lossy link serializes every
//! timeout into the session's critical path. This module replaces that
//! loop with a discrete-event runner on top of
//! [`btd_sim::event::EventQueue`]: device sends, server arrivals, reply
//! deliveries, per-slot retransmission timers, and crash recoveries are
//! all scheduled events on one deterministic timeline, and interactions
//! flow through a sliding window of pipelined sequence numbers
//! ([`MobileDevice::windowed_request`] /
//! [`MobileDevice::accept_windowed_content`] on the device, the
//! reply-window idempotency cache on the server).
//!
//! Selective retransmission: each in-flight slot owns its own timer; only
//! the slot whose reply is missing is retransmitted
//! ([`crate::trace::EventKind::SelectiveRetransmit`]), while replies for
//! later slots are buffered device-side and reconciled when the base slot
//! lands (cumulative ack, surfaced as
//! [`crate::trace::EventKind::WindowAdvance`]). Exactly-once per slot is
//! the server's reply-window membership test, so `replays_accepted` stays
//! zero under loss, duplication, and reordering — same as the lock-step
//! protocol, but without its serial round trips.
//!
//! Metrics parity: every counter bump pairs with the same trace event the
//! lock-step [`crate::auth::exchange`] loop would record, so
//! [`crate::trace::derive_metrics`] over the event stream reproduces the
//! live [`ProtocolMetrics`] exactly (pinned by `tests/prop_window.rs`).
//! With `window == 1` the engine degenerates to stop-and-wait on the event
//! timeline, which is the baseline row of the goodput ablation.

use std::collections::{BTreeMap, HashMap};

use btd_sim::event::EventQueue;
use btd_sim::rng::SimRng;
use btd_sim::time::{SimDuration, SimTime};
use btd_workload::session::TouchSample;

use crate::auth::login_collect;
use crate::channel::Channel;
use crate::device::{DeviceError, MobileDevice, WindowAccept};
use crate::messages::{ContentPage, Freshness, InteractionRequest, Reject};
use crate::metrics::{Phase, ProtocolMetrics, RetryPolicy};
use crate::registration::{register_collect, FlowError};
use crate::server::journal::{CrashProfile, CrashSchedule};
use crate::server::WebServer;
use crate::trace::{derive_metrics, DuplicateVerdict, EventKind, Tracer};

/// How many full retry cycles (each `max_attempts` transmissions) a slot
/// is re-armed after a give-up before the run is declared stuck. Mirrors
/// the chaos harness's stage bound.
const MAX_ROUNDS: u32 = 32;

/// How long after a crash is first observed the operator restart fires.
const RECOVERY_DELAY: SimDuration = SimDuration::from_millis(200);

/// Spacing between initial fleet spawns, so 100k lifecycles do not all
/// collide on the same instant.
const SPAWN_STAGGER: SimDuration = SimDuration::from_millis(1);

/// How long after a risk-policy termination the owner re-authenticates
/// (fleet mode): the re-login prompt is a user-visible interruption, not
/// an instant retry.
const REAUTH_DELAY: SimDuration = SimDuration::from_millis(150);

/// Rejects worth retrying with the undamaged original (transit damage);
/// mirrors the lock-step exchange's classification.
fn transit_retryable(reject: Reject) -> bool {
    matches!(reject, Reject::BadMac | Reject::UnknownNonce)
}

/// Flow outcomes a blocking stage (register / login / re-login) survives
/// by running the flow again. Losses burn the round as before; a
/// biometric false rejection or a risk-policy bounce is answered the way
/// a real owner answers it — touch the sensor again and retry, which
/// feeds fresh genuine evidence through the k-of-n window. At fleet scale
/// these tails are guaranteed to appear (FRR is small but not zero), so
/// treating them as conclusive would fail lifecycles for behaving exactly
/// as the paper's continuous-auth model says they should.
fn transient_flow(err: &FlowError) -> bool {
    matches!(
        err,
        FlowError::NetworkDropped
            | FlowError::Device(DeviceError::BiometricRejected)
            | FlowError::Server(Reject::RiskTerminated)
    )
}

/// Everything scheduled on the engine's timeline.
///
/// The `epoch` carried by in-session events is the session generation the
/// event was scheduled under; a risk-policy re-authentication bumps the
/// run's epoch, stranding every in-flight send, arrival, and timer of the
/// terminated session (they drain as no-ops, exactly as if the wire had
/// eaten them).
enum Ev {
    /// Bring lifecycle `dev` up (fleet mode): provision, register, login.
    Spawn { dev: u64 },
    /// The device transmits (or retransmits) the request for `slot`.
    Send {
        dev: u64,
        slot: u64,
        attempt: u32,
        epoch: u32,
    },
    /// One copy of a request reaches the server.
    ServerRx {
        dev: u64,
        req: Box<InteractionRequest>,
        slot: u64,
        attempt: u32,
        sent_at: SimTime,
        dup: bool,
        epoch: u32,
    },
    /// One copy of a reply reaches the device.
    DeviceRx {
        dev: u64,
        reply: Box<ContentPage>,
        slot: u64,
        attempt: u32,
        sent_at: SimTime,
        epoch: u32,
    },
    /// Slot `slot`'s per-attempt retransmission timer fires.
    Timer {
        dev: u64,
        slot: u64,
        attempt: u32,
        epoch: u32,
    },
    /// The operator restarts the crashed server from its journals.
    Recover,
    /// The owner re-authenticates after a risk-policy termination (fleet
    /// mode): a fresh login opens a new session and the unserved slots
    /// ride again under it.
    Reauth { dev: u64 },
}

/// Per-slot device-side protocol state.
#[derive(Clone, Copy, Default)]
struct SlotState {
    /// The slot's touch has been observed (exactly once).
    observed: bool,
    /// An authentic reply for this slot has been accepted (possibly still
    /// buffered out of order); retransmission stops here.
    acked: bool,
    /// The slot is settled: applied to the session, or conclusively dead.
    done: bool,
    /// Current attempt number (stale timers and sends are ignored).
    attempt: u32,
    /// Give-up re-arm cycles consumed.
    round: u32,
}

/// One device's windowed browsing session as the engine tracks it.
struct SessionRun {
    /// Absolute sequence number of slot index 0.
    base0: u64,
    slots: Vec<SlotState>,
    /// Each slot's request, pinned at first build: selective retransmits
    /// resend the *same bytes* (same frame hash, same MAC), so the server
    /// answers them as [`Freshness::Resent`] and the offline audit sees
    /// one committed frame per slot.
    requests: Vec<Option<InteractionRequest>>,
    /// Slots whose first `Send` has been scheduled.
    scheduled: usize,
    touches: Vec<TouchSample>,
    /// Account driving the session (fleet close + audit).
    account: Option<String>,
    attempted: u64,
    served: u64,
    /// Interactions this lifecycle owes in total; survives the slot
    /// rebuild a re-authentication performs.
    total: u64,
    rejects: Vec<Reject>,
    terminated: bool,
    failure: Option<FlowError>,
    /// Session generation: bumped on re-authentication so events from the
    /// terminated session are recognizably stale.
    epoch: u32,
    /// Risk-policy terminations this lifecycle absorbed by logging in
    /// again (bounded by [`MAX_ROUNDS`]).
    terminations: u64,
    /// Owner user id, needed to drive the re-login flow (fleet mode).
    owner: u64,
    /// Whether a risk termination triggers re-authentication (fleet mode)
    /// instead of ending the run (single-session mode).
    reauth: bool,
}

impl SessionRun {
    fn new(base0: u64, touches: Vec<TouchSample>, account: Option<String>) -> Self {
        let total = touches.len() as u64;
        SessionRun {
            base0,
            slots: vec![SlotState::default(); touches.len()],
            requests: vec![None; touches.len()],
            scheduled: 0,
            touches,
            account,
            attempted: 0,
            served: 0,
            total,
            rejects: Vec::new(),
            terminated: false,
            failure: None,
            epoch: 0,
            terminations: 0,
            owner: 0,
            reauth: false,
        }
    }

    fn idx(&self, slot: u64) -> usize {
        (slot - self.base0) as usize
    }

    /// Every slot applied or conclusively dead.
    fn settled(&self) -> bool {
        self.slots.iter().all(|s| s.done)
    }

    /// The run can make no further progress on its own.
    fn finished(&self) -> bool {
        self.terminated || self.failure.is_some() || self.settled()
    }
}

/// Shared engine state: the server, the channel, the clock, the queue,
/// and the run-wide accounting.
struct Core<'a> {
    server: &'a mut WebServer,
    channel: &'a mut Channel,
    policy: &'a RetryPolicy,
    tracer: Tracer,
    domain: String,
    actions: Vec<String>,
    window: u64,
    queue: EventQueue<Ev>,
    now: SimTime,
    metrics: ProtocolMetrics,
    profile: Option<CrashProfile>,
    recover_pending: bool,
    crashes: u64,
    records_skipped: u64,
}

impl Core<'_> {
    /// Schedules the first `Send` for every slot the window now covers.
    fn fill_window(&mut self, dev: u64, run: &mut SessionRun, base: u64) {
        while run.scheduled < run.slots.len()
            && run.base0 + (run.scheduled as u64) < base.saturating_add(self.window)
        {
            let slot = run.base0 + run.scheduled as u64;
            self.queue.schedule(
                self.now,
                Ev::Send {
                    dev,
                    slot,
                    attempt: 0,
                    epoch: run.epoch,
                },
            );
            run.scheduled += 1;
        }
        // Telemetry probe (no-op unless sampling is installed): slots
        // currently in flight — scheduled but not yet settled.
        let open = run
            .slots
            .iter()
            .take(run.scheduled)
            .filter(|s| !s.done)
            .count() as u64;
        self.server
            .telemetry()
            .set_gauge_by_name("window_occupancy", open);
    }

    /// Transmits (or retransmits) `slot`'s request and arms its timer.
    #[allow(clippy::too_many_arguments)]
    fn on_send(
        &mut self,
        dev: u64,
        device: &mut MobileDevice,
        run: &mut SessionRun,
        slot: u64,
        attempt: u32,
        epoch: u32,
        rng: &mut SimRng,
    ) {
        if epoch != run.epoch || run.finished() {
            return;
        }
        let i = run.idx(slot);
        if run.slots[i].done || run.slots[i].acked || run.slots[i].attempt != attempt {
            return;
        }
        if !run.slots[i].observed {
            // The touch is biometric evidence: fed exactly once, however
            // many times the request it produced is retransmitted.
            device.observe_touch(&run.touches[i], rng);
            run.slots[i].observed = true;
            run.attempted += 1;
        }
        self.metrics.sends += 1;
        if attempt > 0 {
            self.metrics.retries += 1;
        }
        self.tracer.record(EventKind::Send { attempt });
        if attempt > 0 || run.slots[i].round > 0 {
            self.tracer
                .record(EventKind::SelectiveRetransmit { seq: slot, attempt });
        }
        if run.requests[i].is_none() {
            let action = self.actions[i % self.actions.len()].clone();
            match device.windowed_request(&self.domain, &action, slot) {
                Ok(request) => run.requests[i] = Some(request),
                Err(err) => {
                    run.slots[i].done = true;
                    run.failure = Some(err.into());
                    return;
                }
            }
        }
        let request = run.requests[i].clone().expect("request pinned above");
        let sent_at = self.now;
        for (copy, arrival) in self.channel.transmit(request).into_iter().enumerate() {
            self.queue.schedule(
                self.now + arrival.delay,
                Ev::ServerRx {
                    dev,
                    req: Box::new(arrival.msg),
                    slot,
                    attempt,
                    sent_at,
                    dup: copy > 0,
                    epoch: run.epoch,
                },
            );
        }
        self.queue.schedule(
            self.now + self.policy.timeout,
            Ev::Timer {
                dev,
                slot,
                attempt,
                epoch: run.epoch,
            },
        );
    }

    /// A request copy reaches the server: serve it, classify duplicates,
    /// and put the reply (if any) on the wire.
    #[allow(clippy::too_many_arguments)]
    fn on_server_rx(
        &mut self,
        dev: u64,
        run: &mut SessionRun,
        req: &InteractionRequest,
        slot: u64,
        attempt: u32,
        sent_at: SimTime,
        dup: bool,
        epoch: u32,
    ) {
        if epoch != run.epoch {
            // A copy from the terminated session still in flight: the
            // re-login already replaced that session, so the request is
            // dead on arrival (as if the wire had eaten it).
            return;
        }
        let result = self.server.handle_interaction(req);
        if dup {
            // Adversary-injected duplicate: the server's verdict on it is
            // the replay-defense scoreboard, exactly as in the lock-step
            // exchange. Its reply (if any) is not transmitted.
            match result {
                Ok((_, Freshness::Fresh)) => {
                    self.metrics.replays_accepted += 1;
                    self.tracer.record(EventKind::Duplicate {
                        verdict: DuplicateVerdict::AcceptedFresh,
                    });
                }
                Ok((_, Freshness::Resent | Freshness::Resync)) => {
                    self.metrics.duplicates_resent += 1;
                    self.tracer.record(EventKind::Duplicate {
                        verdict: DuplicateVerdict::Resent,
                    });
                }
                // A dead server renders no verdict.
                Err(Reject::ServerCrashed) => {}
                Err(_) => {
                    self.metrics.replays_rejected += 1;
                    self.tracer.record(EventKind::Duplicate {
                        verdict: DuplicateVerdict::Rejected,
                    });
                }
            }
            return;
        }
        match result {
            Ok((reply, freshness)) => {
                if freshness != Freshness::Fresh {
                    self.metrics.resyncs += 1;
                    self.tracer.record(EventKind::Resync);
                }
                let mut arrivals = self.channel.transmit(reply).into_iter();
                if let Some(first) = arrivals.next() {
                    self.queue.schedule(
                        self.now + first.delay,
                        Ev::DeviceRx {
                            dev,
                            reply: Box::new(first.msg),
                            slot,
                            attempt,
                            sent_at,
                            epoch: run.epoch,
                        },
                    );
                    let stale = arrivals.count() as u64;
                    if stale > 0 {
                        self.metrics.stale_content_ignored += stale;
                        self.tracer
                            .record(EventKind::StaleContent { copies: stale });
                    }
                }
                // Every reply copy destroyed: the slot's timer drives the
                // retransmit, answered from the server's reply window.
            }
            Err(Reject::ServerCrashed) => {
                // No reply will ever come; the attempt burns via its
                // timer. One operator restart is scheduled per outage.
                if !self.recover_pending {
                    self.recover_pending = true;
                    self.queue.schedule(self.now + RECOVERY_DELAY, Ev::Recover);
                }
            }
            Err(reject) if transit_retryable(reject) => {
                self.metrics.corrupt_rejected += 1;
                self.tracer.record(EventKind::CorruptReject {
                    attempt,
                    reason: reject,
                    backoff_ms: self.policy.backoff(attempt).as_millis(),
                });
                let delay = self.channel.latency + self.policy.backoff(attempt);
                self.burn(dev, run, slot, attempt, delay);
            }
            Err(reject) => {
                if reject == Reject::RiskTerminated
                    && run.reauth
                    && run.terminations < u64::from(MAX_ROUNDS)
                {
                    // The continuous-auth layer pulled the plug on this
                    // session — the honest-user false-rejection tail, which
                    // a fleet-sized run is guaranteed to sample. The owner
                    // answers it the way the paper prescribes: explicit
                    // re-authentication. Strand the dead session's traffic
                    // and schedule a fresh login; unserved slots ride again
                    // under the new session.
                    run.terminations += 1;
                    run.epoch += 1;
                    self.queue
                        .schedule(self.now + REAUTH_DELAY, Ev::Reauth { dev });
                    return;
                }
                let i = run.idx(slot);
                run.slots[i].done = true;
                run.rejects.push(reject);
                if reject == Reject::RiskTerminated {
                    run.terminated = true;
                }
            }
        }
    }

    /// A reply copy reaches the device: reconcile it into the window.
    #[allow(clippy::too_many_arguments)]
    fn on_device_rx(
        &mut self,
        dev: u64,
        device: &mut MobileDevice,
        run: &mut SessionRun,
        reply: &ContentPage,
        slot: u64,
        attempt: u32,
        sent_at: SimTime,
        epoch: u32,
    ) {
        if epoch != run.epoch || run.finished() {
            return;
        }
        match device.accept_windowed_content(&self.domain, reply) {
            Err(_) => {
                // Damaged in transit; the undamaged original is worth
                // resending after the backoff.
                self.metrics.corrupt_rejected += 1;
                self.tracer.record(EventKind::ReplyRejected { attempt });
                let delay = self.policy.backoff(attempt);
                self.burn(dev, run, slot, attempt, delay);
            }
            Ok(WindowAccept::Stale) => {
                self.metrics.stale_content_ignored += 1;
                self.tracer.record(EventKind::StaleContent { copies: 1 });
            }
            Ok(WindowAccept::Buffered) => {
                // Out-of-order but in-window: the slot is served; only the
                // base slot's reply is still owed.
                self.ack(run, slot, sent_at);
            }
            Ok(WindowAccept::Applied { .. }) => {
                self.ack(run, slot, sent_at);
                let base = device.session_seq(&self.domain).unwrap_or(run.base0);
                for (i, state) in run.slots.iter_mut().enumerate() {
                    if run.base0 + i as u64 <= base.saturating_sub(1) {
                        state.done = true;
                    }
                }
                // The cumulative ack moved the base: new slots have credit.
                self.fill_window(dev, run, base);
            }
        }
    }

    /// Counts a slot as served exactly once and records its RTT.
    fn ack(&mut self, run: &mut SessionRun, slot: u64, sent_at: SimTime) {
        let i = run.idx(slot);
        if run.slots[i].acked || run.slots[i].done {
            return;
        }
        run.slots[i].acked = true;
        run.served += 1;
        let rtt = self.now.saturating_duration_since(sent_at);
        self.metrics.record_latency(Phase::Interaction, rtt);
        self.tracer.record(EventKind::Served {
            phase: Phase::Interaction,
            rtt_nanos: rtt.as_nanos(),
        });
    }

    /// Slot `slot`'s timer fired with no acceptable reply: a timeout.
    fn on_timer(&mut self, dev: u64, run: &mut SessionRun, slot: u64, attempt: u32, epoch: u32) {
        if epoch != run.epoch || run.finished() {
            return;
        }
        let i = run.idx(slot);
        if run.slots[i].done || run.slots[i].acked || run.slots[i].attempt != attempt {
            return;
        }
        self.metrics.timeouts += 1;
        self.tracer.record(EventKind::Timeout {
            attempt,
            backoff_ms: self.policy.backoff(attempt).as_millis(),
        });
        let delay = self.policy.backoff(attempt);
        self.burn(dev, run, slot, attempt, delay);
    }

    /// Burns `attempt` on `slot` and schedules the next transmission after
    /// `delay` — or gives up and re-arms the slot, bounded by
    /// [`MAX_ROUNDS`].
    fn burn(
        &mut self,
        dev: u64,
        run: &mut SessionRun,
        slot: u64,
        attempt: u32,
        delay: SimDuration,
    ) {
        let i = run.idx(slot);
        let state = &mut run.slots[i];
        if state.done || state.acked || state.attempt != attempt {
            return;
        }
        let next = attempt + 1;
        if next >= self.policy.max_attempts {
            self.metrics.giveups += 1;
            self.tracer.record(EventKind::GiveUp);
            state.round += 1;
            if state.round >= MAX_ROUNDS {
                state.done = true;
                run.failure = Some(FlowError::NetworkDropped);
            } else {
                state.attempt = 0;
                self.queue.schedule(
                    self.now + delay,
                    Ev::Send {
                        dev,
                        slot,
                        attempt: 0,
                        epoch: run.epoch,
                    },
                );
            }
        } else {
            state.attempt = next;
            self.queue.schedule(
                self.now + delay,
                Ev::Send {
                    dev,
                    slot,
                    attempt: next,
                    epoch: run.epoch,
                },
            );
        }
    }

    /// The operator restart: recover the server from its journals and
    /// re-arm the crash schedule.
    fn on_recover(&mut self, rng: &mut SimRng) {
        self.recover_pending = false;
        if self.server.is_crashed() {
            self.crashes += 1;
            let rec = self.server.recover_in_place(rng);
            self.records_skipped += rec.records_skipped() as u64;
            if let Some(profile) = self.profile {
                self.server
                    .arm_crash_schedule(CrashSchedule::seeded(profile, rng.next_u64()));
            }
        }
    }
}

/// Outcome of one pipelined windowed session.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WindowedReport {
    /// Interactions the device attempted.
    pub attempted: u64,
    /// Interactions the server served (each exactly once).
    pub served: u64,
    /// Conclusive server rejections, by reason.
    pub rejects: Vec<Reject>,
    /// Whether the server terminated the session on risk.
    pub terminated: bool,
    /// Whether every interaction was served and applied.
    pub completed: bool,
    /// Simulated wall-clock time from first send to last settled event —
    /// the goodput denominator. Pipelining shrinks this, not the per-slot
    /// RTTs.
    pub elapsed: SimDuration,
    /// Server crashes recovered during the run.
    pub crashes: u64,
    /// Journal records lost across those recoveries.
    pub records_skipped: u64,
    /// Audit-log entries from this session whose frame hash matched no
    /// legitimate view of the served page.
    pub audit_mismatches: u64,
    /// Network/retry accounting (every bump paired with a trace event, so
    /// [`derive_metrics`] reproduces it).
    pub metrics: ProtocolMetrics,
}

impl WindowedReport {
    /// Served interactions per simulated second.
    pub fn goodput(&self) -> f64 {
        let secs = self.elapsed.as_nanos() as f64 / 1e9;
        if secs <= 0.0 {
            0.0
        } else {
            self.served as f64 / secs
        }
    }
}

/// Runs `touches.len()` post-login interactions through the pipelined
/// event engine with up to `window` slots in flight.
///
/// The server must have advertised the same window when the session was
/// opened (set [`WebServer::set_interaction_window`] before login, or use
/// [`crate::World::login_windowed`]). With `window == 1` this is
/// stop-and-wait on the event timeline — the ablation baseline. Pass a
/// `profile` to compose seeded server crashes with the channel's faults;
/// recovery is a scheduled event, and the derived per-slot nonces make the
/// restart transparent (no resume round is needed in windowed mode).
///
/// # Errors
///
/// Fails on setup problems (no session), device refusals, or a slot stuck
/// past the re-arm bound; per-interaction rejections are in the report.
#[allow(clippy::too_many_arguments)]
pub fn run_windowed_session(
    device: &mut MobileDevice,
    server: &mut WebServer,
    channel: &mut Channel,
    domain: &str,
    actions: &[&str],
    touches: &[TouchSample],
    policy: &RetryPolicy,
    window: u64,
    profile: Option<CrashProfile>,
    rng: &mut SimRng,
) -> Result<WindowedReport, FlowError> {
    assert!(!actions.is_empty(), "need at least one action");
    assert!(window >= 1, "window must be at least 1");
    device.enable_window(domain, window)?;
    let base0 = device
        .session_seq(domain)
        .ok_or(FlowError::Device(DeviceError::NoSession))?;
    let account = device.account_for(domain).map(str::to_owned);
    let audit_start = account
        .as_deref()
        .map(|a| server.audit_log_for(a).len())
        .unwrap_or(0);
    if let Some(p) = profile {
        server.arm_crash_schedule(CrashSchedule::seeded(p, rng.next_u64()));
    }
    let tracer = server.tracer().clone();
    let mut core = Core {
        server,
        channel,
        policy,
        tracer,
        domain: domain.to_owned(),
        actions: actions.iter().map(|a| (*a).to_owned()).collect(),
        window,
        queue: EventQueue::new(),
        now: SimTime::ZERO,
        metrics: ProtocolMetrics::default(),
        profile,
        recover_pending: false,
        crashes: 0,
        records_skipped: 0,
    };
    let mut run = SessionRun::new(base0, touches.to_vec(), account.clone());
    core.fill_window(0, &mut run, base0);

    while let Some((at, ev)) = core.queue.pop() {
        core.now = at;
        match ev {
            Ev::Send {
                slot,
                attempt,
                epoch,
                ..
            } => core.on_send(0, device, &mut run, slot, attempt, epoch, rng),
            Ev::ServerRx {
                req,
                slot,
                attempt,
                sent_at,
                dup,
                epoch,
                ..
            } => core.on_server_rx(0, &mut run, &req, slot, attempt, sent_at, dup, epoch),
            Ev::DeviceRx {
                reply,
                slot,
                attempt,
                sent_at,
                epoch,
                ..
            } => core.on_device_rx(0, device, &mut run, &reply, slot, attempt, sent_at, epoch),
            Ev::Timer {
                slot,
                attempt,
                epoch,
                ..
            } => core.on_timer(0, &mut run, slot, attempt, epoch),
            Ev::Recover => core.on_recover(rng),
            // Single-session mode never arms re-authentication, so these
            // spawn/re-login events cannot appear on its queue.
            Ev::Spawn { .. } | Ev::Reauth { .. } => {}
        }
        if run.finished() && !core.recover_pending {
            break;
        }
    }

    if let Some(failure) = run.failure {
        return Err(failure);
    }
    let completed = !run.terminated && run.settled() && run.served == run.slots.len() as u64;
    let report = WindowedReport {
        attempted: run.attempted,
        served: run.served,
        rejects: run.rejects,
        terminated: run.terminated,
        completed,
        elapsed: core.now.saturating_duration_since(SimTime::ZERO),
        crashes: core.crashes,
        records_skipped: core.records_skipped,
        audit_mismatches: account
            .as_deref()
            .map(|a| {
                crate::audit::audit_account_from(core.server, a, audit_start)
                    .findings
                    .len() as u64
            })
            .unwrap_or(0),
        metrics: core.metrics,
    };
    Ok(report)
}

/// Configuration for a windowed fleet run.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Total device lifecycles to drive.
    pub lifecycles: usize,
    /// Interactions per lifecycle.
    pub touches: usize,
    /// Pipeline window per session.
    pub window: u64,
    /// Maximum lifecycles live at once (spawn throttle).
    pub max_live: usize,
    /// Seeded crash-fault profile, if any.
    pub profile: Option<CrashProfile>,
}

/// Aggregate outcome of a windowed fleet run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FleetReport {
    /// Lifecycles driven.
    pub lifecycles: u64,
    /// Lifecycles whose every interaction was served and applied.
    pub completed: u64,
    /// Lifecycles whose session was closed (server state evicted).
    pub closed: u64,
    /// Lifecycles that died on a conclusive failure or stuck stage.
    pub failed: u64,
    /// Conclusive failures by kind (`bring-up:` spawn-stage errors,
    /// `session:` mid-run errors) — the postmortem for `failed`.
    pub failures: BTreeMap<String, u64>,
    /// Risk-policy session terminations absorbed mid-run: each forced the
    /// owner through a fresh login, and the lifecycle continued under the
    /// new session.
    pub terminated: u64,
    /// Interactions attempted across the fleet.
    pub attempted: u64,
    /// Interactions served, each exactly once.
    pub served: u64,
    /// Server crashes recovered.
    pub crashes: u64,
    /// Journal records lost across recoveries.
    pub records_skipped: u64,
    /// Simulated time from first spawn to fleet drain.
    pub elapsed: SimDuration,
    /// Fleet-wide network/retry accounting.
    pub metrics: ProtocolMetrics,
    /// [`derive_metrics`] folded chunk-wise over the drained trace while
    /// the run progressed (`Some` only when tracing is enabled); must
    /// equal `metrics`.
    pub derived: Option<ProtocolMetrics>,
}

/// Drives `cfg.lifecycles` full device lifecycles (provision → register →
/// login → windowed interactions → close) through one deterministic event
/// queue against a single server.
///
/// At most `cfg.max_live` devices exist at a time: each completed
/// lifecycle is closed, aggregated, and dropped before the next spawns,
/// so a 100k-lifecycle run holds hundreds — not hundreds of thousands —
/// of device states. Register/login/close are coarse blocking stages at
/// their scheduled instant (their retries still run the full lock-step
/// policy and share the fleet's metrics and trace); interactions are
/// message-granular events. When tracing is enabled the trace buffer is
/// drained after every completed lifecycle and folded through
/// [`derive_metrics`], keeping memory bounded while still proving
/// live-counter parity at fleet scale.
///
/// `spawn` builds each lifecycle's device: it returns the provisioned
/// device, its owner, the account name, and the touch workload.
#[allow(clippy::too_many_arguments)]
pub fn run_windowed_fleet<F>(
    server: &mut WebServer,
    channel: &mut Channel,
    policy: &RetryPolicy,
    domain: &str,
    actions: &[&str],
    cfg: &FleetConfig,
    spawn: &mut F,
    rng: &mut SimRng,
) -> FleetReport
where
    F: FnMut(usize, &mut SimRng) -> (MobileDevice, u64, String, Vec<TouchSample>),
{
    assert!(!actions.is_empty(), "need at least one action");
    assert!(cfg.window >= 1, "window must be at least 1");
    assert!(cfg.max_live >= 1, "need at least one live lifecycle");
    server.set_interaction_window(cfg.window);
    if let Some(p) = cfg.profile {
        server.arm_crash_schedule(CrashSchedule::seeded(p, rng.next_u64()));
    }
    let tracer = server.tracer().clone();
    let mut derived = tracer.is_enabled().then(ProtocolMetrics::default);
    // Drop anything already buffered so the fold starts from zero.
    if derived.is_some() {
        let _ = tracer.drain();
    }
    let mut core = Core {
        server,
        channel,
        policy,
        tracer,
        domain: domain.to_owned(),
        actions: actions.iter().map(|a| (*a).to_owned()).collect(),
        window: cfg.window,
        queue: EventQueue::new(),
        now: SimTime::ZERO,
        metrics: ProtocolMetrics::default(),
        profile: cfg.profile,
        recover_pending: false,
        crashes: 0,
        records_skipped: 0,
    };
    let mut report = FleetReport {
        lifecycles: cfg.lifecycles as u64,
        ..FleetReport::default()
    };
    let mut live: HashMap<u64, (MobileDevice, SessionRun)> = HashMap::new();
    let initial = cfg.max_live.min(cfg.lifecycles);
    for dev in 0..initial {
        core.queue.schedule(
            SimTime::ZERO + SPAWN_STAGGER * dev as u64,
            Ev::Spawn { dev: dev as u64 },
        );
    }
    let mut next_spawn = initial;

    while let Some((at, ev)) = core.queue.pop() {
        core.now = at;
        let touched = match ev {
            Ev::Spawn { dev } => {
                let (mut device, owner, account, touches) = spawn(dev as usize, rng);
                device.set_tracer(core.tracer.clone());
                match bring_up(&mut core, &mut device, owner, &account, rng) {
                    Ok(base0) => {
                        let mut run = SessionRun::new(base0, touches, Some(account));
                        run.owner = owner;
                        run.reauth = true;
                        core.fill_window(dev, &mut run, base0);
                        live.insert(dev, (device, run));
                        Some(dev)
                    }
                    Err(err) => {
                        report.failed += 1;
                        *report
                            .failures
                            .entry(format!("bring-up: {err}"))
                            .or_default() += 1;
                        if next_spawn < cfg.lifecycles {
                            core.queue.schedule(
                                core.now,
                                Ev::Spawn {
                                    dev: next_spawn as u64,
                                },
                            );
                            next_spawn += 1;
                        }
                        None
                    }
                }
            }
            Ev::Send {
                dev,
                slot,
                attempt,
                epoch,
            } => {
                if let Some((device, run)) = live.get_mut(&dev) {
                    core.on_send(dev, device, run, slot, attempt, epoch, rng);
                    Some(dev)
                } else {
                    None
                }
            }
            Ev::ServerRx {
                dev,
                req,
                slot,
                attempt,
                sent_at,
                dup,
                epoch,
            } => {
                if let Some((_, run)) = live.get_mut(&dev) {
                    core.on_server_rx(dev, run, &req, slot, attempt, sent_at, dup, epoch);
                    Some(dev)
                } else {
                    None
                }
            }
            Ev::DeviceRx {
                dev,
                reply,
                slot,
                attempt,
                sent_at,
                epoch,
            } => {
                if let Some((device, run)) = live.get_mut(&dev) {
                    core.on_device_rx(dev, device, run, &reply, slot, attempt, sent_at, epoch);
                    Some(dev)
                } else {
                    None
                }
            }
            Ev::Timer {
                dev,
                slot,
                attempt,
                epoch,
            } => {
                if let Some((_, run)) = live.get_mut(&dev) {
                    core.on_timer(dev, run, slot, attempt, epoch);
                    Some(dev)
                } else {
                    None
                }
            }
            Ev::Recover => {
                core.on_recover(rng);
                None
            }
            Ev::Reauth { dev } => {
                if let Some((device, run)) = live.get_mut(&dev) {
                    match reauth(&mut core, device, run, rng) {
                        Ok(base0) => core.fill_window(dev, run, base0),
                        Err(err) => run.failure = Some(err),
                    }
                    Some(dev)
                } else {
                    None
                }
            }
        };
        if let Some(dev) = touched {
            let finished = live.get(&dev).is_some_and(|(_, run)| run.finished());
            if finished {
                let (mut device, run) = live.remove(&dev).expect("finished lifecycle is live");
                retire(&mut core, &mut device, run, &mut report, rng);
                if let Some(folded) = derived.as_mut() {
                    folded.absorb(&derive_metrics(&core.tracer.drain()));
                }
                if next_spawn < cfg.lifecycles {
                    core.queue.schedule(
                        core.now,
                        Ev::Spawn {
                            dev: next_spawn as u64,
                        },
                    );
                    next_spawn += 1;
                }
            }
        }
    }

    if let Some(folded) = derived.as_mut() {
        folded.absorb(&derive_metrics(&core.tracer.drain()));
    }
    report.elapsed = core.now.saturating_duration_since(SimTime::ZERO);
    report.crashes = core.crashes;
    report.records_skipped = core.records_skipped;
    report.metrics = core.metrics;
    report.derived = derived;
    report
}

/// Blocking spawn stage: register (if needed) and log in, retrying
/// through crashes and losses like the chaos harness, then arm the
/// device's window. Returns the session's base slot.
fn bring_up(
    core: &mut Core<'_>,
    device: &mut MobileDevice,
    owner: u64,
    account: &str,
    rng: &mut SimRng,
) -> Result<u64, FlowError> {
    // Serial protocol latency inside a blocking stage does not advance the
    // fleet clock; the event timeline is the fleet's notion of time.
    let mut scratch = SimDuration::ZERO;
    let mut rounds = 0;
    while !core.server.has_account(account) {
        match register_collect(
            device,
            owner,
            core.server,
            core.channel,
            account,
            core.policy,
            rng,
            &mut core.metrics,
            &mut scratch,
        ) {
            Ok(()) => break,
            Err(err) if transient_flow(&err) => {
                if core.server.is_crashed() {
                    core.on_recover(rng);
                }
                rounds += 1;
                if rounds > MAX_ROUNDS {
                    return Err(err);
                }
            }
            Err(err) => return Err(err),
        }
    }
    relogin(core, device, owner, rng)
}

/// Blocking login stage shared by spawn bring-up and mid-run
/// re-authentication: drive the lock-step login flow until it lands —
/// retrying through losses, crashes (recovering the server first),
/// biometric false rejections, and risk-policy bounces, bounded by
/// [`MAX_ROUNDS`] — then arm the device's window and return the new
/// session's base slot.
fn relogin(
    core: &mut Core<'_>,
    device: &mut MobileDevice,
    owner: u64,
    rng: &mut SimRng,
) -> Result<u64, FlowError> {
    let mut scratch = SimDuration::ZERO;
    let mut rounds = 0;
    loop {
        match login_collect(
            device,
            owner,
            core.server,
            core.channel,
            core.policy,
            rng,
            &mut core.metrics,
            &mut scratch,
        ) {
            Ok(_) => break,
            Err(err) if transient_flow(&err) => {
                if core.server.is_crashed() {
                    core.on_recover(rng);
                }
                rounds += 1;
                if rounds > MAX_ROUNDS {
                    return Err(err);
                }
            }
            Err(err) => return Err(err),
        }
    }
    device.enable_window(&core.domain, core.window)?;
    device
        .session_seq(&core.domain)
        .ok_or(FlowError::Device(DeviceError::NoSession))
}

/// Blocking re-authentication after a risk-policy termination: a fresh
/// login opens a new session, and the run is rebuilt around it — served
/// slots keep their credit, unserved touches become the new session's
/// slots (the owner repeats those gestures), and the epoch bump has
/// already stranded the dead session's in-flight traffic.
fn reauth(
    core: &mut Core<'_>,
    device: &mut MobileDevice,
    run: &mut SessionRun,
    rng: &mut SimRng,
) -> Result<u64, FlowError> {
    let base0 = relogin(core, device, run.owner, rng)?;
    let remaining: Vec<TouchSample> = run
        .slots
        .iter()
        .zip(run.touches.iter())
        .filter(|(state, _)| !state.acked)
        .map(|(_, touch)| *touch)
        .collect();
    run.base0 = base0;
    run.slots = vec![SlotState::default(); remaining.len()];
    run.requests = vec![None; remaining.len()];
    run.scheduled = 0;
    run.touches = remaining;
    Ok(base0)
}

/// Blocking close stage: evict the finished lifecycle's server state and
/// fold its run into the fleet report. The device is dropped by the
/// caller, keeping the live set bounded.
fn retire(
    core: &mut Core<'_>,
    device: &mut MobileDevice,
    run: SessionRun,
    report: &mut FleetReport,
    rng: &mut SimRng,
) {
    report.attempted += run.attempted;
    report.served += run.served;
    report.terminated += run.terminations;
    if let Some(err) = &run.failure {
        report.failed += 1;
        *report
            .failures
            .entry(format!("session: {err}"))
            .or_default() += 1;
    } else if run.served == run.total {
        report.completed += 1;
    } else {
        // Settled with conclusive per-slot rejects (or a re-auth budget
        // exhausted): the lifecycle is over but its work is not done.
        report.failed += 1;
        let why = run
            .rejects
            .first()
            .map(|r| format!("session: rejected: {r:?}"))
            .unwrap_or_else(|| "session: unserved slots".to_owned());
        *report.failures.entry(why).or_default() += 1;
    }
    let session_id = device.session_id(&core.domain).map(str::to_owned);
    if let (Some(account), Some(session_id)) = (run.account.as_deref(), session_id) {
        for _ in 0..MAX_ROUNDS {
            match core.server.close_session(account, &session_id) {
                Ok(_) => {
                    device.end_session(&core.domain);
                    report.closed += 1;
                    break;
                }
                Err(Reject::ServerCrashed) => core.on_recover(rng),
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Adversary;
    use crate::World;

    const DOMAIN: &str = "www.xyz.com";

    fn windowed_world(
        adversary: Adversary,
        window: u64,
        seed: u64,
    ) -> (World, usize, usize, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let mut world = World::with_adversary(adversary, &mut rng);
        let sidx = world.add_server(DOMAIN, &mut rng);
        let didx = world.add_device("phone-1", 7, &mut rng);
        world
            .register(didx, DOMAIN, "alice", &mut rng)
            .expect("register");
        world
            .login_windowed(didx, DOMAIN, window, &mut rng)
            .expect("login");
        (world, sidx, didx, rng)
    }

    #[test]
    fn honest_windowed_session_serves_everything_exactly_once() {
        let (mut world, sidx, didx, mut rng) = windowed_world(Adversary::None, 4, 11);
        let report = world
            .run_windowed_session(didx, DOMAIN, 12, 4, &mut rng)
            .expect("windowed session");
        assert!(report.completed, "rejects: {:?}", report.rejects);
        assert_eq!(report.attempted, 12);
        assert_eq!(report.served, 12);
        assert_eq!(report.metrics.replays_accepted, 0);
        assert_eq!(report.metrics.retries, 0);
        assert_eq!(report.audit_mismatches, 0);
        // The device's window base advanced past every slot: the login
        // reply carries seq 0, so 12 interactions land the base on 12.
        assert_eq!(world.device(didx).session_seq(DOMAIN), Some(12));
        let digest = world.server(sidx).state_digest();
        let report2 = world.server_mut(sidx).recover_in_place(&mut rng);
        assert_eq!(report2.records_skipped(), 0);
        assert_eq!(
            world.server(sidx).state_digest(),
            digest,
            "windowed records replay to the same durable state"
        );
    }

    #[test]
    fn pipelining_beats_stop_and_wait_on_elapsed_time() {
        let (mut world, _, didx, mut rng) = windowed_world(Adversary::None, 8, 13);
        let wide = world
            .run_windowed_session(didx, DOMAIN, 16, 8, &mut rng)
            .expect("windowed");
        let (mut world, _, didx, mut rng) = windowed_world(Adversary::None, 1, 13);
        let narrow = world
            .run_windowed_session(didx, DOMAIN, 16, 1, &mut rng)
            .expect("stop-and-wait");
        assert!(wide.completed && narrow.completed);
        assert!(
            wide.elapsed.as_nanos() * 4 <= narrow.elapsed.as_nanos(),
            "window 8 should cut elapsed time at least 4x on an honest \
             channel ({:?} vs {:?})",
            wide.elapsed,
            narrow.elapsed
        );
    }

    #[test]
    fn lossy_windowed_session_retransmits_selectively_and_stays_exactly_once() {
        let (mut world, _, didx, mut rng) =
            windowed_world(Adversary::RandomLoss { loss: 0.15 }, 4, 17);
        let report = world
            .run_windowed_session(didx, DOMAIN, 24, 4, &mut rng)
            .expect("windowed session");
        assert!(report.completed, "rejects: {:?}", report.rejects);
        assert_eq!(report.served, 24);
        assert_eq!(report.metrics.replays_accepted, 0);
        assert!(
            report.metrics.retries > 0,
            "15% loss must force at least one selective retransmit"
        );
    }

    #[test]
    fn replayer_duplicates_are_all_detected_in_window() {
        let (mut world, _, didx, mut rng) = windowed_world(Adversary::Replayer, 4, 19);
        let report = world
            .run_windowed_session(didx, DOMAIN, 10, 4, &mut rng)
            .expect("windowed session");
        assert!(report.completed);
        assert_eq!(report.metrics.replays_accepted, 0);
        assert!(
            report.metrics.duplicates_resent + report.metrics.stale_content_ignored > 0,
            "the replayer's copies must surface as cache hits, not fresh serves"
        );
    }

    #[test]
    fn windowed_session_survives_crashes_without_resume_rounds() {
        use crate::server::journal::CrashProfile;
        let mut rng = SimRng::seed_from(23);
        let mut world = World::with_adversary(Adversary::RandomLoss { loss: 0.05 }, &mut rng);
        let _ = world.add_server(DOMAIN, &mut rng);
        let didx = world.add_device("phone-1", 7, &mut rng);
        world
            .register(didx, DOMAIN, "alice", &mut rng)
            .expect("register");
        world
            .login_windowed(didx, DOMAIN, 4, &mut rng)
            .expect("login");
        let mut crashes = 0;
        for round in 0..8u64 {
            let report = world
                .run_windowed_chaos_session(
                    didx,
                    DOMAIN,
                    8,
                    4,
                    CrashProfile::uniform(0.10),
                    &mut rng,
                )
                .expect("windowed session under crashes");
            assert!(report.completed, "round {round}: {:?}", report.rejects);
            assert_eq!(report.served, 8);
            assert_eq!(report.metrics.replays_accepted, 0);
            assert_eq!(report.records_skipped, 0, "clean crashes tear nothing");
            crashes += report.crashes;
        }
        assert!(crashes > 0, "the profile must actually fire");
    }

    #[test]
    fn fleet_smoke_run_is_exactly_once_with_derive_parity() {
        use crate::server::journal::CrashProfile;
        let mut rng = SimRng::seed_from(29);
        let mut world = World::with_adversary(Adversary::RandomLoss { loss: 0.05 }, &mut rng);
        world.enable_tracing();
        let _ = world.add_server_with_shards(DOMAIN, 8, &mut rng);
        let cfg = FleetConfig {
            lifecycles: 12,
            touches: 5,
            window: 4,
            max_live: 4,
            profile: Some(CrashProfile::uniform(0.02)),
        };
        let report = world.run_windowed_fleet(DOMAIN, &cfg, &mut rng);
        assert_eq!(report.lifecycles, 12);
        assert_eq!(report.completed, 12, "failed: {}", report.failed);
        assert_eq!(report.closed, 12);
        assert_eq!(report.served, 12 * 5);
        assert_eq!(report.metrics.replays_accepted, 0);
        let derived = report.derived.as_ref().expect("tracing was on");
        assert_eq!(
            derived, &report.metrics,
            "chunk-folded derive_metrics must equal the live counters"
        );
    }

    #[test]
    fn transient_flow_retries_false_rejections_not_forgeries() {
        assert!(transient_flow(&FlowError::NetworkDropped));
        assert!(transient_flow(&FlowError::Device(
            DeviceError::BiometricRejected
        )));
        assert!(transient_flow(&FlowError::Server(Reject::RiskTerminated)));
        assert!(!transient_flow(&FlowError::Server(Reject::BadSignature)));
        assert!(!transient_flow(&FlowError::Server(Reject::Replay)));
        assert!(!transient_flow(&FlowError::Device(DeviceError::NoSession)));
    }

    #[test]
    fn fleet_lifecycles_survive_risk_terminations_by_reauthenticating() {
        use crate::risk_policy::ServerRiskPolicy;
        let mut rng = SimRng::seed_from(31);
        let mut world = World::with_adversary(Adversary::RandomLoss { loss: 0.02 }, &mut rng);
        world.enable_tracing();
        let sidx = world.add_server_with_shards(DOMAIN, 4, &mut rng);
        // Every request under-verifies, and the fifth consecutive step-up
        // terminates. A session can serve at most four interactions (one
        // window) before the risk policy pulls the plug, and each lifecycle
        // owes six — so every lifecycle is forced through at least one
        // mid-run re-authentication to finish.
        world.server_mut(sidx).set_risk_policy(ServerRiskPolicy {
            max_mismatches: u32::MAX,
            min_verified: u32::MAX,
            max_consecutive_stepups: 5,
        });
        let cfg = FleetConfig {
            lifecycles: 8,
            touches: 6,
            window: 4,
            max_live: 4,
            profile: None,
        };
        let report = world.run_windowed_fleet(DOMAIN, &cfg, &mut rng);
        assert!(
            report.terminated >= report.lifecycles,
            "the aggressive policy must terminate sessions mid-run (got {})",
            report.terminated
        );
        assert_eq!(report.completed, 8, "failures: {:?}", report.failures);
        assert_eq!(report.failed, 0, "failures: {:?}", report.failures);
        assert_eq!(
            report.served,
            8 * 6,
            "every touch served exactly once across re-auths"
        );
        assert_eq!(report.metrics.replays_accepted, 0);
        let derived = report.derived.as_ref().expect("tracing was on");
        assert_eq!(
            derived, &report.metrics,
            "re-auth epochs must not break trace/metrics parity"
        );
    }
}
