//! Deterministic protocol tracing: typed spans and point events across
//! every layer of the remote-identity stack.
//!
//! Aggregate [`ProtocolMetrics`](crate::metrics::ProtocolMetrics) counters
//! say *how often* the network hurt a flow; they cannot say *which*
//! interaction gave up, which crash point it hit, or which resume healed
//! it. [`Tracer`] closes that gap with a causal event journal:
//!
//! * **Deterministic** — events carry only sim-derived data (sequence
//!   numbers, backoff values, simulated round-trip times) plus a
//!   monotonically assigned event id. No wall clock, no host randomness:
//!   two runs from the same seed export byte-identical JSONL.
//! * **Zero-cost when off** — a disabled tracer (the default) is a `None`
//!   behind an `Option`; every record call is a single branch and no
//!   event data is allocated.
//! * **Shared by every layer** — one `Rc<RefCell<…>>` buffer is cloned
//!   into the channel, the server, the devices, and the chaos lifecycles
//!   ([`World::enable_tracing`](crate::scenario::World::enable_tracing)),
//!   so channel faults, retries, journal appends, crash injections, and
//!   recoveries interleave in one causally ordered stream.
//!
//! Spans ([`SpanKind`]) bracket protocol flows and carry a context
//! ([`TraceCtx`]: account, session, shard, sequence number) that every
//! point event recorded inside them inherits. The protocol is lock-step:
//! each exchange completes within one call frame, so the context stack
//! nests strictly even when a round-robin driver interleaves many
//! device lifecycles over one channel.
//!
//! On top of the raw stream:
//!
//! * [`Tracer::export_jsonl`] — one JSON object per line, hand-rolled
//!   (zero dependencies), byte-stable across same-seed runs.
//! * [`TraceQuery`] — filter by account/session/span, pull the causal
//!   chain of one interaction, render a per-account timeline.
//! * [`derive_metrics`] — rebuild [`ProtocolMetrics`] from the event
//!   stream alone; a consistency test pins it equal to the live
//!   counters, so events and counters can never disagree.
//! * [`first_divergence`] — explain where two runs' traces part ways
//!   (mirroring [`audit::first_divergence`](crate::audit)), with the
//!   shared causal prefix as context.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

use btd_sim::time::SimDuration;

use crate::messages::Reject;
use crate::metrics::{Phase, ProtocolMetrics};
use crate::server::journal::CrashPoint;

/// Context attached to every event: which account/session/shard/sequence
/// number the protocol was working for when the event fired. Fields are
/// optional because layers know different amounts (a channel fault during
/// a hello fetch has no session yet; a journal append knows its shard).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceCtx {
    /// Account the flow serves, when known.
    pub account: Option<String>,
    /// Live session id, when one exists.
    pub session: Option<String>,
    /// Shard the event touched (journal/recovery events).
    pub shard: Option<usize>,
    /// Interaction sequence number, when inside an interaction.
    pub seq: Option<u64>,
}

/// Borrowed context arguments: call sites hand these to [`Tracer::open`]
/// / [`Tracer::record_with`] so a *disabled* tracer never allocates the
/// owned strings.
#[derive(Clone, Copy, Debug, Default)]
pub struct CtxArgs<'a> {
    /// Account the flow serves, when known.
    pub account: Option<&'a str>,
    /// Live session id, when one exists.
    pub session: Option<&'a str>,
    /// Shard the event touched.
    pub shard: Option<usize>,
    /// Interaction sequence number.
    pub seq: Option<u64>,
}

impl<'a> CtxArgs<'a> {
    /// Context naming just an account.
    pub fn account(account: &'a str) -> Self {
        CtxArgs {
            account: Some(account),
            ..CtxArgs::default()
        }
    }

    /// Context naming just a shard.
    pub fn shard(shard: usize) -> Self {
        CtxArgs {
            shard: Some(shard),
            ..CtxArgs::default()
        }
    }

    fn to_owned_ctx(self) -> TraceCtx {
        TraceCtx {
            account: self.account.map(str::to_owned),
            session: self.session.map(str::to_owned),
            shard: self.shard,
            seq: self.seq,
        }
    }
}

/// A bracketed protocol flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// One device's whole register → login → browse → close lifecycle.
    Lifecycle,
    /// The Fig. 9 registration flow.
    Register,
    /// The Fig. 10 login (session establishment) flow.
    SessionEstablish,
    /// One post-login interaction, by protocol sequence number.
    Interact(u64),
    /// One session-resumption handshake after a server restart.
    Resume,
    /// Recovery of one journal shard after a crash.
    Recover(usize),
    /// Closing the session (evicting server-resident state).
    Close,
}

impl SpanKind {
    /// The span's stable wire name (the `span` field in JSONL exports
    /// and the frame name in folded-stack profiles).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Lifecycle => "lifecycle",
            SpanKind::Register => "register",
            SpanKind::SessionEstablish => "session_establish",
            SpanKind::Interact(_) => "interact",
            SpanKind::Resume => "resume",
            SpanKind::Recover(_) => "recover",
            SpanKind::Close => "close",
        }
    }
}

/// How a span concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The flow completed.
    Success,
    /// The server conclusively rejected it.
    Rejected(Reject),
    /// Every retry attempt was exhausted.
    GaveUp,
    /// The device refused to proceed.
    DeviceRefused,
    /// The exchange healed device state through the idempotency cache;
    /// the flow will be re-driven against the healed state.
    Resynced,
}

/// Which channel fault the adversary injected on one message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The replayer injected a duplicate copy.
    ReplayDuplicate,
    /// The periodic dropper destroyed the message.
    DropperDrop,
    /// Independent random loss destroyed the message.
    RandomLossDrop,
    /// A loss burst destroyed the message.
    BurstLossDrop,
    /// Congestion jitter delayed the message.
    JitterDelay {
        /// Extra one-way delay, in milliseconds.
        extra_ms: u64,
    },
    /// The reorderer delivered the message late.
    ReorderDelay {
        /// Extra one-way delay, in milliseconds.
        extra_ms: u64,
    },
    /// Bits were flipped in transit.
    Corruption,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::ReplayDuplicate => "replay_duplicate",
            FaultKind::DropperDrop => "dropper_drop",
            FaultKind::RandomLossDrop => "random_loss_drop",
            FaultKind::BurstLossDrop => "burst_loss_drop",
            FaultKind::JitterDelay { .. } => "jitter_delay",
            FaultKind::ReorderDelay { .. } => "reorder_delay",
            FaultKind::Corruption => "corruption",
        }
    }
}

/// The server's verdict on an adversary-injected duplicate delivery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DuplicateVerdict {
    /// Accepted as fresh — a replay-defense failure (must never happen).
    AcceptedFresh,
    /// Answered from the idempotency cache; no state advanced.
    Resent,
    /// Rejected outright.
    Rejected,
}

/// Which bounded cache evicted entries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheKind {
    /// Registration idempotency cache (LRU watermark).
    Registration,
    /// Reset idempotency cache (LRU watermark).
    Reset,
    /// Session-scoped caches evicted by a session close.
    Session,
}

impl CacheKind {
    fn name(self) -> &'static str {
        match self {
            CacheKind::Registration => "registration",
            CacheKind::Reset => "reset",
            CacheKind::Session => "session",
        }
    }
}

/// A typed trace event.
#[derive(Clone, PartialEq, Debug)]
pub enum EventKind {
    /// A span opened.
    SpanOpen {
        /// The flow being bracketed.
        span: SpanKind,
    },
    /// A span closed.
    SpanClose {
        /// The flow being bracketed.
        span: SpanKind,
        /// How it concluded.
        outcome: Outcome,
    },
    /// The channel's adversary injected a fault.
    Fault {
        /// Which fault.
        fault: FaultKind,
    },
    /// The device transmitted a request (attempt 0 is the original;
    /// higher attempts are retries).
    Send {
        /// 0-based attempt number.
        attempt: u32,
    },
    /// An attempt expired with no acceptable reply.
    Timeout {
        /// 0-based attempt number.
        attempt: u32,
        /// Backoff applied before the next attempt, in milliseconds.
        backoff_ms: u64,
    },
    /// The server bounced a request damaged in transit (retryable).
    CorruptReject {
        /// 0-based attempt number.
        attempt: u32,
        /// The server's reject reason.
        reason: Reject,
        /// Backoff applied before the next attempt, in milliseconds.
        backoff_ms: u64,
    },
    /// The device discarded a reply that failed validation (retryable).
    ReplyRejected {
        /// 0-based attempt number.
        attempt: u32,
    },
    /// The server's verdict on an adversary-injected duplicate.
    Duplicate {
        /// The verdict.
        verdict: DuplicateVerdict,
    },
    /// The exchange healed through the idempotency cache after a lost
    /// reply desynchronized device and server.
    Resync,
    /// The exchange was abandoned after exhausting every attempt.
    GiveUp,
    /// The device ignored stale extra copies of a reply.
    StaleContent {
        /// How many extra copies arrived.
        copies: u64,
    },
    /// A round trip was served.
    Served {
        /// Protocol phase of the round trip.
        phase: Phase,
        /// Round-trip time in simulated nanoseconds (exact, so latency
        /// histograms rebuild losslessly from the trace).
        rtt_nanos: u64,
    },
    /// The server rejected a request (the reject-counter mirror).
    ServerReject {
        /// Why.
        reason: Reject,
    },
    /// A record was appended to a shard's journal segment.
    JournalAppend {
        /// Shard index.
        shard: usize,
        /// Framed bytes written (header + payload).
        bytes: usize,
    },
    /// A shard folded its pending records into a fresh snapshot.
    Compaction {
        /// Shard index.
        shard: usize,
        /// Snapshot size in bytes.
        bytes: usize,
    },
    /// A bounded cache evicted entries.
    CacheEviction {
        /// Which cache.
        cache: CacheKind,
        /// Entries evicted.
        evicted: u64,
    },
    /// A crash point fired; the server is dead until recovered.
    CrashInjected {
        /// Which crash point.
        point: CrashPoint,
    },
    /// One shard finished recovery.
    Recovered {
        /// Shard index.
        shard: usize,
        /// Whether a snapshot was restored.
        snapshot_restored: bool,
        /// Records replayed on top of the snapshot.
        replayed: usize,
        /// Records lost to torn writes or corruption.
        skipped: usize,
    },
    /// The device accepted and applied a content page.
    ContentAccepted {
        /// The page's sequence number.
        seq: u64,
    },
    /// The device accepted a resume ack (re-joined its session).
    ResumeAccepted {
        /// Whether the ack carried the reply the device had missed.
        healed_reply: bool,
    },
    /// The device's cumulative-ack base advanced past contiguously applied
    /// windowed replies (pipelined mode only). Purely observational —
    /// [`derive_metrics`] ignores it, so trace/metrics parity is unchanged.
    WindowAdvance {
        /// The new base: the lowest slot whose reply is still outstanding.
        base: u64,
        /// Slots applied by this advance (the head plus any buffered
        /// out-of-order replies it unlocked).
        applied: u64,
    },
    /// A per-slot retransmission timer fired and exactly that slot was
    /// resent (pipelined mode only). Also ignored by [`derive_metrics`]:
    /// the accompanying `Send` event carries the retry accounting.
    SelectiveRetransmit {
        /// The slot being retransmitted.
        seq: u64,
        /// 1-based attempt number of the retransmission.
        attempt: u32,
    },
    /// A journal log segment was sealed: rotated out and CRC-certified at
    /// a sync barrier. Storage observability only — [`derive_metrics`]
    /// ignores it, so trace/metrics parity is unchanged.
    SegmentSealed {
        /// The shard whose journal sealed the segment.
        shard: usize,
        /// The sealed segment's file id.
        segment: u64,
        /// Segment size at seal time.
        bytes: usize,
    },
    /// Recovery found a sealed segment whose certificate no longer
    /// verifies; the owning shard quarantines. Ignored by
    /// [`derive_metrics`] (the per-frame skips are accounted through
    /// `Recovered`), so trace/metrics parity is unchanged.
    SegmentCorrupt {
        /// The quarantined shard.
        shard: usize,
        /// The corrupt segment's file id.
        segment: u64,
        /// Frames inside it that failed to salvage.
        skipped: usize,
    },
    /// A journal sync failed transiently and was retried under the sync
    /// policy. Ignored by [`derive_metrics`] (protocol-level retries stay
    /// the `Send`/`Timeout` events), so trace/metrics parity is unchanged.
    SyncRetried {
        /// The shard whose barrier blocked.
        shard: usize,
        /// 1-based retry attempt.
        attempt: u64,
    },
    /// The server entered (or left) degraded mode: shedding new
    /// registrations under storage pressure while existing sessions keep
    /// being served. Ignored by [`derive_metrics`], so trace/metrics
    /// parity is unchanged.
    DegradedMode {
        /// The shard whose barrier tripped the transition.
        shard: usize,
        /// True on entry, false on exit.
        entered: bool,
    },
    /// A telemetry SLO rule evaluated false over the sampled series
    /// ([`crate::telemetry::HealthReport::record_alerts`]). Emitted by
    /// the health engine after a run, never from inside protocol flows,
    /// and ignored by [`derive_metrics`] — trace/metrics parity is
    /// unchanged by alerting.
    SloAlert {
        /// The violated rule's stable name.
        rule: &'static str,
        /// The shard the verdict scoped to (`None` = fleet-wide).
        alert_shard: Option<usize>,
    },
}

/// One recorded event: a monotonically assigned id, the context it fired
/// under, and the typed payload.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEvent {
    /// Monotonic id (0-based, assigned at record time).
    pub id: u64,
    /// Context inherited from the enclosing span (or explicit).
    pub ctx: TraceCtx,
    /// The typed payload.
    pub kind: EventKind,
}

#[derive(Debug, Default)]
struct TraceBuf {
    events: VecDeque<TraceEvent>,
    ctx_stack: Vec<TraceCtx>,
    next_id: u64,
    /// Ring-buffer bound: at `Some(cap)` the buffer keeps only the most
    /// recent `cap` events, evicting the oldest on overflow. `None` (the
    /// default) grows without bound.
    capacity: Option<usize>,
    /// Events evicted by the ring bound since the buffer was created.
    dropped: u64,
}

impl TraceBuf {
    fn push(&mut self, ctx: TraceCtx, kind: EventKind) {
        let id = self.next_id;
        self.next_id += 1;
        if let Some(cap) = self.capacity {
            while self.events.len() >= cap.max(1) {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(TraceEvent { id, ctx, kind });
    }

    fn current_ctx(&self) -> TraceCtx {
        self.ctx_stack.last().cloned().unwrap_or_default()
    }
}

/// A cheap, cloneable handle to a shared trace buffer. Disabled by
/// default ([`Tracer::default`]); every layer holds a clone and records
/// through it. Cloning an *enabled* tracer shares the same buffer.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceBuf>>>,
}

impl Tracer {
    /// A disabled tracer: every record call is a no-op branch.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A fresh enabled tracer with an empty buffer.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuf::default()))),
        }
    }

    /// A fresh enabled tracer whose buffer is a ring of at most
    /// `capacity` events: the oldest event is evicted on overflow and
    /// counted in [`Tracer::dropped`]. Built for fleet-scale runs that
    /// keep a tracer attached for postmortems without unbounded resident
    /// memory. Event ids keep climbing across evictions, and a bounded
    /// run that never overflows exports byte-identically to an unbounded
    /// one — determinism is unperturbed, only retention changes.
    pub fn enabled_bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be at least 1 event");
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuf {
                capacity: Some(capacity),
                ..TraceBuf::default()
            }))),
        }
    }

    /// Events evicted by the ring bound so far (always 0 for unbounded
    /// or disabled tracers). A fleet harness asserting `dropped() == 0`
    /// has proven its capacity was never the binding constraint.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map(|i| i.borrow().dropped).unwrap_or(0)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records `kind` under the context of the innermost open span.
    pub fn record(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.borrow_mut();
            let ctx = buf.current_ctx();
            buf.push(ctx, kind);
        }
    }

    /// Records `kind` under an explicit context, without touching the
    /// span stack (e.g. lifecycle-level markers from a round-robin
    /// driver, whose spans would not nest).
    pub fn record_with(&self, ctx: CtxArgs<'_>, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().push(ctx.to_owned_ctx(), kind);
        }
    }

    /// Opens a span: records [`EventKind::SpanOpen`] and pushes its
    /// context, which subsequent [`Tracer::record`] calls inherit. Must
    /// be paired with [`Tracer::close`] in the same call frame — the
    /// protocol is lock-step, so spans nest strictly.
    pub fn open(&self, span: SpanKind, ctx: CtxArgs<'_>) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.borrow_mut();
            let owned = ctx.to_owned_ctx();
            buf.push(owned.clone(), EventKind::SpanOpen { span });
            buf.ctx_stack.push(owned);
        }
    }

    /// Closes the innermost span: records [`EventKind::SpanClose`] under
    /// the span's context, then pops it.
    pub fn close(&self, span: SpanKind, outcome: Outcome) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.borrow_mut();
            let ctx = buf.current_ctx();
            buf.push(ctx, EventKind::SpanClose { span, outcome });
            buf.ctx_stack.pop();
        }
    }

    /// A snapshot of every retained event, in order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|i| i.borrow().events.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.borrow().events.len())
            .unwrap_or(0)
    }

    /// Whether no events have been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every recorded event (the buffer stays enabled and the id
    /// counter keeps climbing, so ids stay unique across clears).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().events.clear();
        }
    }

    /// Takes every recorded event out of the buffer, leaving it empty
    /// (ids keep climbing, so a later drain never repeats one). This is
    /// the memory-bounded way to consume a huge trace incrementally:
    /// [`derive_metrics`] is additive over any partition of the event
    /// stream, so folding drained chunks with
    /// [`ProtocolMetrics::absorb`](crate::metrics::ProtocolMetrics::absorb)
    /// reproduces the whole-trace derivation without ever holding the
    /// whole trace — the fleet-scale runs depend on it.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|i| {
                std::mem::take(&mut i.borrow_mut().events)
                    .into_iter()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Exports the trace as JSON Lines: one event object per line, keys
    /// in fixed order, values all sim-deterministic — two same-seed runs
    /// export byte-identical strings.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(inner) = &self.inner {
            for ev in &inner.borrow().events {
                write_event_json(&mut out, ev);
                out.push('\n');
            }
        }
        out
    }
}

// --- JSON export (hand-rolled, zero dependencies) -------------------------

/// The single-line JSON object for one event — byte-for-byte the form
/// [`Tracer::export_jsonl`] emits (without the trailing newline). Public
/// so the shard-parallel merge ([`crate::parallel`]) can wrap stamped
/// events in its own envelope while keeping the inner serialization
/// identical across worker counts.
pub fn event_json(ev: &TraceEvent) -> String {
    let mut out = String::new();
    write_event_json(&mut out, ev);
    out
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ",\"{key}\":\"");
    json_escape(out, value);
    out.push('"');
}

fn phase_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Hello => "hello",
        Phase::Submit => "submit",
        Phase::Interaction => "interaction",
        Phase::Lifecycle => "lifecycle",
    }
}

fn crash_point_name(point: CrashPoint) -> &'static str {
    match point {
        CrashPoint::BeforeAppend => "before_append",
        CrashPoint::AfterAppend => "after_append",
        CrashPoint::BeforeReply => "before_reply",
    }
}

fn outcome_json(out: &mut String, outcome: Outcome) {
    match outcome {
        Outcome::Success => json_str_field(out, "outcome", "success"),
        Outcome::Rejected(r) => {
            json_str_field(out, "outcome", "rejected");
            json_str_field(out, "reason", &r.to_string());
        }
        Outcome::GaveUp => json_str_field(out, "outcome", "gave_up"),
        Outcome::DeviceRefused => json_str_field(out, "outcome", "device_refused"),
        Outcome::Resynced => json_str_field(out, "outcome", "resynced"),
    }
}

fn span_json(out: &mut String, span: SpanKind) {
    json_str_field(out, "span", span.name());
    match span {
        SpanKind::Interact(seq) => {
            let _ = write!(out, ",\"span_seq\":{seq}");
        }
        SpanKind::Recover(shard) => {
            let _ = write!(out, ",\"span_shard\":{shard}");
        }
        _ => {}
    }
}

fn write_event_json(out: &mut String, ev: &TraceEvent) {
    let _ = write!(out, "{{\"id\":{}", ev.id);
    if let Some(a) = &ev.ctx.account {
        json_str_field(out, "account", a);
    }
    if let Some(s) = &ev.ctx.session {
        json_str_field(out, "session", s);
    }
    if let Some(sh) = ev.ctx.shard {
        let _ = write!(out, ",\"shard\":{sh}");
    }
    if let Some(seq) = ev.ctx.seq {
        let _ = write!(out, ",\"seq\":{seq}");
    }
    match &ev.kind {
        EventKind::SpanOpen { span } => {
            json_str_field(out, "type", "span_open");
            span_json(out, *span);
        }
        EventKind::SpanClose { span, outcome } => {
            json_str_field(out, "type", "span_close");
            span_json(out, *span);
            outcome_json(out, *outcome);
        }
        EventKind::Fault { fault } => {
            json_str_field(out, "type", "fault");
            json_str_field(out, "fault", fault.name());
            if let FaultKind::JitterDelay { extra_ms } | FaultKind::ReorderDelay { extra_ms } =
                fault
            {
                let _ = write!(out, ",\"extra_ms\":{extra_ms}");
            }
        }
        EventKind::Send { attempt } => {
            json_str_field(out, "type", "send");
            let _ = write!(out, ",\"attempt\":{attempt}");
        }
        EventKind::Timeout {
            attempt,
            backoff_ms,
        } => {
            json_str_field(out, "type", "timeout");
            let _ = write!(out, ",\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}");
        }
        EventKind::CorruptReject {
            attempt,
            reason,
            backoff_ms,
        } => {
            json_str_field(out, "type", "corrupt_reject");
            json_str_field(out, "reason", &reason.to_string());
            let _ = write!(out, ",\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}");
        }
        EventKind::ReplyRejected { attempt } => {
            json_str_field(out, "type", "reply_rejected");
            let _ = write!(out, ",\"attempt\":{attempt}");
        }
        EventKind::Duplicate { verdict } => {
            json_str_field(out, "type", "duplicate");
            let v = match verdict {
                DuplicateVerdict::AcceptedFresh => "accepted_fresh",
                DuplicateVerdict::Resent => "resent",
                DuplicateVerdict::Rejected => "rejected",
            };
            json_str_field(out, "verdict", v);
        }
        EventKind::Resync => json_str_field(out, "type", "resync"),
        EventKind::GiveUp => json_str_field(out, "type", "give_up"),
        EventKind::StaleContent { copies } => {
            json_str_field(out, "type", "stale_content");
            let _ = write!(out, ",\"copies\":{copies}");
        }
        EventKind::Served { phase, rtt_nanos } => {
            json_str_field(out, "type", "served");
            json_str_field(out, "phase", phase_name(*phase));
            let _ = write!(out, ",\"rtt_nanos\":{rtt_nanos}");
        }
        EventKind::ServerReject { reason } => {
            json_str_field(out, "type", "server_reject");
            json_str_field(out, "reason", &reason.to_string());
        }
        EventKind::JournalAppend { shard, bytes } => {
            json_str_field(out, "type", "journal_append");
            let _ = write!(out, ",\"append_shard\":{shard},\"bytes\":{bytes}");
        }
        EventKind::Compaction { shard, bytes } => {
            json_str_field(out, "type", "compaction");
            let _ = write!(out, ",\"compact_shard\":{shard},\"bytes\":{bytes}");
        }
        EventKind::CacheEviction { cache, evicted } => {
            json_str_field(out, "type", "cache_eviction");
            json_str_field(out, "cache", cache.name());
            let _ = write!(out, ",\"evicted\":{evicted}");
        }
        EventKind::CrashInjected { point } => {
            json_str_field(out, "type", "crash_injected");
            json_str_field(out, "point", crash_point_name(*point));
        }
        EventKind::Recovered {
            shard,
            snapshot_restored,
            replayed,
            skipped,
        } => {
            json_str_field(out, "type", "recovered");
            let _ = write!(
                out,
                ",\"recovered_shard\":{shard},\"snapshot\":{snapshot_restored},\"replayed\":{replayed},\"skipped\":{skipped}"
            );
        }
        EventKind::ContentAccepted { seq } => {
            json_str_field(out, "type", "content_accepted");
            let _ = write!(out, ",\"content_seq\":{seq}");
        }
        EventKind::ResumeAccepted { healed_reply } => {
            json_str_field(out, "type", "resume_accepted");
            let _ = write!(out, ",\"healed_reply\":{healed_reply}");
        }
        EventKind::WindowAdvance { base, applied } => {
            json_str_field(out, "type", "window_advance");
            let _ = write!(out, ",\"base\":{base},\"applied\":{applied}");
        }
        EventKind::SelectiveRetransmit { seq, attempt } => {
            json_str_field(out, "type", "selective_retransmit");
            let _ = write!(out, ",\"seq\":{seq},\"attempt\":{attempt}");
        }
        EventKind::SegmentSealed {
            shard,
            segment,
            bytes,
        } => {
            json_str_field(out, "type", "segment_sealed");
            let _ = write!(
                out,
                ",\"seal_shard\":{shard},\"segment\":{segment},\"bytes\":{bytes}"
            );
        }
        EventKind::SegmentCorrupt {
            shard,
            segment,
            skipped,
        } => {
            json_str_field(out, "type", "segment_corrupt");
            let _ = write!(
                out,
                ",\"corrupt_shard\":{shard},\"segment\":{segment},\"skipped\":{skipped}"
            );
        }
        EventKind::SyncRetried { shard, attempt } => {
            json_str_field(out, "type", "sync_retried");
            let _ = write!(out, ",\"sync_shard\":{shard},\"attempt\":{attempt}");
        }
        EventKind::DegradedMode { shard, entered } => {
            json_str_field(out, "type", "degraded_mode");
            let _ = write!(out, ",\"degraded_shard\":{shard},\"entered\":{entered}");
        }
        EventKind::SloAlert { rule, alert_shard } => {
            json_str_field(out, "type", "slo_alert");
            json_str_field(out, "rule", rule);
            if let Some(sh) = alert_shard {
                let _ = write!(out, ",\"alert_shard\":{sh}");
            }
        }
    }
    out.push('}');
}

// --- Derived metrics -------------------------------------------------------

/// Rebuilds [`ProtocolMetrics`] from a trace alone. Every counter-bump
/// site in the exchange loops emits exactly one event, and `Served`
/// events carry exact nanosecond round trips, so the reconstruction is
/// lossless: for any traced run, `derive_metrics(events)` equals the sum
/// of the live per-flow metrics.
pub fn derive_metrics(events: &[TraceEvent]) -> ProtocolMetrics {
    let mut m = ProtocolMetrics::default();
    for ev in events {
        match &ev.kind {
            EventKind::Send { attempt } => {
                m.sends += 1;
                if *attempt > 0 {
                    m.retries += 1;
                }
            }
            EventKind::Timeout { .. } => m.timeouts += 1,
            EventKind::CorruptReject { .. } | EventKind::ReplyRejected { .. } => {
                m.corrupt_rejected += 1;
            }
            EventKind::Duplicate { verdict } => match verdict {
                DuplicateVerdict::AcceptedFresh => m.replays_accepted += 1,
                DuplicateVerdict::Resent => m.duplicates_resent += 1,
                DuplicateVerdict::Rejected => m.replays_rejected += 1,
            },
            EventKind::Resync => m.resyncs += 1,
            EventKind::GiveUp => m.giveups += 1,
            EventKind::StaleContent { copies } => m.stale_content_ignored += copies,
            EventKind::Served { phase, rtt_nanos } => {
                m.record_latency(*phase, SimDuration::from_nanos(*rtt_nanos));
            }
            _ => {}
        }
    }
    m
}

// --- Trace diff ------------------------------------------------------------

/// Where two traces first part ways.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceDivergence {
    /// Index of the first event that differs (== length of the shared
    /// prefix).
    pub index: usize,
    /// The left run's event at that index (`None` if it ended first).
    pub left: Option<TraceEvent>,
    /// The right run's event at that index (`None` if it ended first).
    pub right: Option<TraceEvent>,
    /// The tail of the shared causal prefix (up to the last 5 common
    /// events), so the report shows what both runs agreed on last.
    pub context: Vec<TraceEvent>,
}

impl std::fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "traces diverge at event {}:", self.index)?;
        for ev in &self.context {
            writeln!(f, "  both: {}", describe(ev))?;
        }
        match &self.left {
            Some(ev) => writeln!(f, "  left:  {}", describe(ev))?,
            None => writeln!(f, "  left:  <trace ended>")?,
        }
        match &self.right {
            Some(ev) => write!(f, "  right: {}", describe(ev)),
            None => write!(f, "  right: <trace ended>"),
        }
    }
}

/// Finds the first index where two traces disagree (ignoring ids, which
/// are positional anyway): `None` means the traces are identical. Mirrors
/// [`crate::audit::AuditReport::first_divergence`] for protocol runs.
pub fn first_divergence(left: &[TraceEvent], right: &[TraceEvent]) -> Option<TraceDivergence> {
    let common = left
        .iter()
        .zip(right.iter())
        .take_while(|(l, r)| l.ctx == r.ctx && l.kind == r.kind)
        .count();
    if common == left.len() && common == right.len() {
        return None;
    }
    Some(TraceDivergence {
        index: common,
        left: left.get(common).cloned(),
        right: right.get(common).cloned(),
        context: left[common.saturating_sub(5)..common].to_vec(),
    })
}

// --- Query + timeline ------------------------------------------------------

/// Read-only queries over a recorded trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceQuery<'a> {
    events: &'a [TraceEvent],
}

impl<'a> TraceQuery<'a> {
    /// Wraps a slice of events (e.g. [`Tracer::events`] output).
    pub fn new(events: &'a [TraceEvent]) -> Self {
        TraceQuery { events }
    }

    /// Every event, in order.
    pub fn all(&self) -> &'a [TraceEvent] {
        self.events
    }

    /// Events recorded under `account`'s context.
    pub fn by_account(&self, account: &str) -> Vec<&'a TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.ctx.account.as_deref() == Some(account))
            .collect()
    }

    /// Events recorded under session `session`'s context.
    pub fn by_session(&self, session: &str) -> Vec<&'a TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.ctx.session.as_deref() == Some(session))
            .collect()
    }

    /// Open events of spans of `kind` (matching on the span name, so
    /// `Interact(_)` matches every interaction).
    pub fn spans(&self, kind: SpanKind) -> Vec<&'a TraceEvent> {
        self.events
            .iter()
            .filter(|e| match &e.kind {
                EventKind::SpanOpen { span } => span.name() == kind.name(),
                _ => false,
            })
            .collect()
    }

    /// The causal chain of one interaction: every event recorded while
    /// `account`'s interaction with protocol sequence number `seq` was
    /// in flight (its sends, faults, timeouts, journal appends, crash
    /// and recovery events).
    pub fn causal_chain(&self, account: &str, seq: u64) -> Vec<&'a TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.ctx.account.as_deref() == Some(account) && e.ctx.seq == Some(seq))
            .collect()
    }

    /// Accounts that appear in the trace, sorted and deduplicated.
    pub fn accounts(&self) -> Vec<&'a str> {
        let mut names: Vec<&str> = self
            .events
            .iter()
            .filter_map(|e| e.ctx.account.as_deref())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Renders `account`'s timeline: one line per event, indented by
    /// span depth, in causal order — the postmortem view `trace_explain`
    /// prints.
    pub fn render_timeline(&self, account: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "timeline for {account}:");
        let mut depth: usize = 0;
        for ev in self.by_account(account) {
            if matches!(ev.kind, EventKind::SpanClose { .. }) {
                depth = depth.saturating_sub(1);
            }
            let _ = writeln!(
                out,
                "  {:>5}  {}{}",
                ev.id,
                "  ".repeat(depth),
                describe(ev)
            );
            if matches!(ev.kind, EventKind::SpanOpen { .. }) {
                depth += 1;
            }
        }
        out
    }
}

/// One-line human description of an event (timeline + divergence output).
pub fn describe(ev: &TraceEvent) -> String {
    let mut s = match &ev.kind {
        EventKind::SpanOpen { span } => match span {
            SpanKind::Interact(seq) => format!("open {} seq={seq}", span.name()),
            SpanKind::Recover(shard) => format!("open {} shard={shard}", span.name()),
            _ => format!("open {}", span.name()),
        },
        EventKind::SpanClose { span, outcome } => {
            let o = match outcome {
                Outcome::Success => "success".to_owned(),
                Outcome::Rejected(r) => format!("rejected ({r})"),
                Outcome::GaveUp => "gave up".to_owned(),
                Outcome::DeviceRefused => "device refused".to_owned(),
                Outcome::Resynced => "resynced".to_owned(),
            };
            format!("close {} -> {o}", span.name())
        }
        EventKind::Fault { fault } => match fault {
            FaultKind::JitterDelay { extra_ms } | FaultKind::ReorderDelay { extra_ms } => {
                format!("fault {} +{extra_ms}ms", fault.name())
            }
            _ => format!("fault {}", fault.name()),
        },
        EventKind::Send { attempt } => format!("send attempt={attempt}"),
        EventKind::Timeout {
            attempt,
            backoff_ms,
        } => format!("timeout attempt={attempt} backoff={backoff_ms}ms"),
        EventKind::CorruptReject {
            attempt,
            reason,
            backoff_ms,
        } => format!("corrupt reject ({reason}) attempt={attempt} backoff={backoff_ms}ms"),
        EventKind::ReplyRejected { attempt } => format!("reply rejected attempt={attempt}"),
        EventKind::Duplicate { verdict } => match verdict {
            DuplicateVerdict::AcceptedFresh => "duplicate ACCEPTED FRESH (replay!)".to_owned(),
            DuplicateVerdict::Resent => "duplicate answered from cache".to_owned(),
            DuplicateVerdict::Rejected => "duplicate rejected".to_owned(),
        },
        EventKind::Resync => "resync (healed through cache)".to_owned(),
        EventKind::GiveUp => "GAVE UP (retries exhausted)".to_owned(),
        EventKind::StaleContent { copies } => format!("ignored {copies} stale reply copies"),
        EventKind::Served { phase, rtt_nanos } => format!(
            "served {} rtt={}ms",
            phase_name(*phase),
            rtt_nanos / 1_000_000
        ),
        EventKind::ServerReject { reason } => format!("server reject: {reason}"),
        EventKind::JournalAppend { shard, bytes } => {
            format!("journal append shard={shard} {bytes}B")
        }
        EventKind::Compaction { shard, bytes } => {
            format!("compaction shard={shard} snapshot={bytes}B")
        }
        EventKind::CacheEviction { cache, evicted } => {
            format!("evicted {evicted} {} cache entries", cache.name())
        }
        EventKind::CrashInjected { point } => {
            format!("CRASH injected at {}", crash_point_name(*point))
        }
        EventKind::Recovered {
            shard,
            snapshot_restored,
            replayed,
            skipped,
        } => format!(
            "recovered shard={shard} snapshot={snapshot_restored} replayed={replayed} skipped={skipped}"
        ),
        EventKind::ContentAccepted { seq } => format!("device accepted content seq={seq}"),
        EventKind::ResumeAccepted { healed_reply } => {
            format!("device re-joined session (healed_reply={healed_reply})")
        }
        EventKind::WindowAdvance { base, applied } => {
            format!("window advanced to base={base} (applied {applied})")
        }
        EventKind::SelectiveRetransmit { seq, attempt } => {
            format!("selective retransmit slot={seq} attempt={attempt}")
        }
        EventKind::SegmentSealed {
            shard,
            segment,
            bytes,
        } => format!("sealed segment {segment} shard={shard} {bytes}B"),
        EventKind::SegmentCorrupt {
            shard,
            segment,
            skipped,
        } => format!("CORRUPT segment {segment} shard={shard} (skipped {skipped}): quarantined"),
        EventKind::SyncRetried { shard, attempt } => {
            format!("sync would block shard={shard} retry attempt={attempt}")
        }
        EventKind::DegradedMode { shard, entered } => {
            if *entered {
                format!("DEGRADED: shedding registrations (shard {shard} under storage pressure)")
            } else {
                format!("degraded mode lifted (shard {shard} pressure cleared)")
            }
        }
        EventKind::SloAlert { rule, alert_shard } => match alert_shard {
            Some(sh) => format!("SLO ALERT {rule} (shard {sh})"),
            None => format!("SLO ALERT {rule} (fleet)"),
        },
    };
    if let Some(seq) = ev.ctx.seq {
        let _ = write!(s, " [seq {seq}]");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(EventKind::Resync);
        t.open(SpanKind::Register, CtxArgs::account("alice"));
        t.close(SpanKind::Register, Outcome::Success);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.export_jsonl(), "");
    }

    #[test]
    fn events_inherit_span_context() {
        let t = Tracer::enabled();
        t.open(
            SpanKind::Interact(3),
            CtxArgs {
                account: Some("alice"),
                session: Some("sess-1"),
                shard: None,
                seq: Some(3),
            },
        );
        t.record(EventKind::Send { attempt: 0 });
        t.close(SpanKind::Interact(3), Outcome::Success);
        t.record(EventKind::Resync);
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[1].ctx.account.as_deref(), Some("alice"));
        assert_eq!(events[1].ctx.seq, Some(3));
        // After the close, the context is popped.
        assert_eq!(events[3].ctx, TraceCtx::default());
        // Ids are monotonic.
        assert_eq!(
            events.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let u = t.clone();
        u.record(EventKind::GiveUp);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn jsonl_is_one_valid_looking_object_per_line() {
        let t = Tracer::enabled();
        t.open(SpanKind::Register, CtxArgs::account("alice"));
        t.record(EventKind::Send { attempt: 0 });
        t.close(SpanKind::Register, Outcome::Rejected(Reject::BadMac));
        let jsonl = t.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"type\":\"span_open\""));
        assert!(lines[2].contains("\"reason\":\"bad mac\""));
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut s = String::new();
        json_escape(&mut s, "a\"b\\c\n\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\n\\u0001");
    }

    #[test]
    fn derive_metrics_counts_every_site() {
        let t = Tracer::enabled();
        t.record(EventKind::Send { attempt: 0 });
        t.record(EventKind::Send { attempt: 1 });
        t.record(EventKind::Timeout {
            attempt: 0,
            backoff_ms: 50,
        });
        t.record(EventKind::Duplicate {
            verdict: DuplicateVerdict::Resent,
        });
        t.record(EventKind::Resync);
        t.record(EventKind::StaleContent { copies: 2 });
        t.record(EventKind::Served {
            phase: Phase::Interaction,
            rtt_nanos: 120_000_000,
        });
        t.record(EventKind::GiveUp);
        let m = derive_metrics(&t.events());
        assert_eq!(m.sends, 2);
        assert_eq!(m.retries, 1);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.duplicates_resent, 1);
        assert_eq!(m.resyncs, 1);
        assert_eq!(m.stale_content_ignored, 2);
        assert_eq!(m.giveups, 1);
        assert_eq!(m.interaction.samples, 1);
        assert_eq!(m.interaction.total, SimDuration::from_millis(120));
    }

    #[test]
    fn first_divergence_reports_index_and_context() {
        let t = Tracer::enabled();
        for i in 0..6 {
            t.record(EventKind::Send { attempt: i });
        }
        let a = t.events();
        let mut b = a.clone();
        b[4].kind = EventKind::GiveUp;
        let div = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(div.index, 4);
        assert_eq!(div.context.len(), 4);
        assert!(matches!(
            div.left.as_ref().unwrap().kind,
            EventKind::Send { attempt: 4 }
        ));
        assert!(matches!(
            div.right.as_ref().unwrap().kind,
            EventKind::GiveUp
        ));
        assert!(first_divergence(&a, &a.clone()).is_none());
        // Prefix case: one trace is a strict prefix of the other.
        let short = &a[..3];
        let div = first_divergence(short, &a).expect("length mismatch diverges");
        assert_eq!(div.index, 3);
        assert!(div.left.is_none());
    }

    #[test]
    fn query_filters_and_chains() {
        let t = Tracer::enabled();
        t.open(
            SpanKind::Interact(0),
            CtxArgs {
                account: Some("alice"),
                session: Some("s1"),
                shard: None,
                seq: Some(0),
            },
        );
        t.record(EventKind::Send { attempt: 0 });
        t.close(SpanKind::Interact(0), Outcome::Success);
        t.open(
            SpanKind::Interact(0),
            CtxArgs {
                account: Some("bob"),
                session: Some("s2"),
                shard: None,
                seq: Some(0),
            },
        );
        t.record(EventKind::GiveUp);
        t.close(SpanKind::Interact(0), Outcome::GaveUp);
        let events = t.events();
        let q = TraceQuery::new(&events);
        assert_eq!(q.by_account("alice").len(), 3);
        assert_eq!(q.by_session("s2").len(), 3);
        assert_eq!(q.accounts(), vec!["alice", "bob"]);
        assert_eq!(q.causal_chain("bob", 0).len(), 3);
        assert!(q.causal_chain("bob", 7).is_empty());
        assert_eq!(q.spans(SpanKind::Interact(99)).len(), 2);
        let timeline = q.render_timeline("bob");
        assert!(timeline.contains("GAVE UP"));
    }
}
