//! The end-to-end continuous-authentication flow (Figure 10).
//!
//! Every request/response exchange runs through a retry/timeout/backoff
//! loop ([`RetryPolicy`]) against the fault-injecting
//! [`Channel`](crate::channel::Channel): dropped, delayed, or corrupted
//! messages are retransmitted, the server answers retransmits from its
//! idempotency cache, and [`ProtocolMetrics`] records exactly what
//! happened — including the one count that must never move,
//! `replays_accepted`.

use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;
use btd_workload::session::TouchSample;

use crate::channel::{Channel, NetMessage};
use crate::device::MobileDevice;
use crate::messages::{ContentPage, Freshness, Reject, ServerHello};
use crate::metrics::{Phase, ProtocolMetrics, RetryPolicy};
use crate::registration::FlowError;
use crate::server::WebServer;
use crate::trace::{CtxArgs, DuplicateVerdict, EventKind, Outcome, SpanKind};

/// Why a retried exchange ultimately did not get its reply applied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ExchangeFailure {
    /// The server conclusively rejected the request.
    Rejected(Reject),
    /// Every attempt timed out or bounced; the exchange was abandoned.
    GaveUp,
}

impl From<ExchangeFailure> for FlowError {
    fn from(f: ExchangeFailure) -> Self {
        match f {
            ExchangeFailure::Rejected(r) => FlowError::Server(r),
            ExchangeFailure::GaveUp => FlowError::NetworkDropped,
        }
    }
}

/// How a successful exchange concluded.
pub(crate) enum Exchanged<R> {
    /// The request was served (possibly via a cached resend of *this*
    /// request) and the accepted reply is attached.
    Served(R),
    /// The server answered with the cached reply to the *previous*
    /// request ([`Freshness::Resync`]): the device state is healed but
    /// this request still needs rebuilding against the new nonce.
    Resynced,
}

/// Rejects that an honest exchange can produce when a message was damaged
/// in transit — worth retrying with the undamaged original. A corrupted
/// nonce surfaces as `UnknownNonce`, a corrupted MAC as `BadMac`.
/// `BadSignature` is *not* here: transit damage never lands there in this
/// model, so it means a key mismatch, which no retry heals.
fn retryable(reject: Reject) -> bool {
    matches!(reject, Reject::BadMac | Reject::UnknownNonce)
}

/// Drives one request/response exchange under the retry policy.
///
/// Per attempt: transmit the request, let the server process every copy
/// the adversary delivers (classifying duplicates), transmit the reply,
/// and accept the first copy that arrives in time and validates. Timeouts,
/// drops, and transit corruption burn an attempt and back off; a
/// conclusive server reject returns immediately.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exchange<Req, Resp, S, A>(
    channel: &mut Channel,
    policy: &RetryPolicy,
    metrics: &mut ProtocolMetrics,
    latency: &mut SimDuration,
    phase: Phase,
    request: &Req,
    mut serve: S,
    mut accept: A,
) -> Result<Exchanged<Resp>, ExchangeFailure>
where
    Req: NetMessage,
    Resp: NetMessage,
    S: FnMut(&Req) -> Result<(Resp, Freshness), Reject>,
    A: FnMut(&Resp) -> bool,
{
    let tracer = channel.tracer().clone();
    for attempt in 0..policy.max_attempts {
        metrics.sends += 1;
        if attempt > 0 {
            metrics.retries += 1;
        }
        tracer.record(EventKind::Send { attempt });

        let mut primary = None;
        for (i, arrival) in channel.transmit(request.clone()).into_iter().enumerate() {
            if i == 0 {
                primary = Some((arrival.delay, serve(&arrival.msg)));
            } else {
                // Adversary-injected duplicate: the server's verdict on it
                // is the replay-defense scoreboard.
                match serve(&arrival.msg) {
                    Ok((_, Freshness::Fresh)) => {
                        metrics.replays_accepted += 1;
                        tracer.record(EventKind::Duplicate {
                            verdict: DuplicateVerdict::AcceptedFresh,
                        });
                    }
                    Ok((_, Freshness::Resent | Freshness::Resync)) => {
                        metrics.duplicates_resent += 1;
                        tracer.record(EventKind::Duplicate {
                            verdict: DuplicateVerdict::Resent,
                        });
                    }
                    // A dead server renders no verdict; the duplicate was
                    // neither accepted nor rejected.
                    Err(Reject::ServerCrashed) => {}
                    Err(_) => {
                        metrics.replays_rejected += 1;
                        tracer.record(EventKind::Duplicate {
                            verdict: DuplicateVerdict::Rejected,
                        });
                    }
                }
            }
        }

        let Some((request_delay, result)) = primary else {
            // Every copy of the request was destroyed in transit.
            metrics.timeouts += 1;
            tracer.record(EventKind::Timeout {
                attempt,
                backoff_ms: policy.backoff(attempt).as_millis(),
            });
            *latency += policy.timeout + policy.backoff(attempt);
            continue;
        };

        let (reply, freshness) = match result {
            Ok(served) => served,
            Err(Reject::ServerCrashed) => {
                // The server died mid-exchange: no reply will ever arrive.
                // From the device's clock this is indistinguishable from
                // loss, so it burns the attempt as a timeout.
                metrics.timeouts += 1;
                tracer.record(EventKind::Timeout {
                    attempt,
                    backoff_ms: policy.backoff(attempt).as_millis(),
                });
                *latency += policy.timeout + policy.backoff(attempt);
                continue;
            }
            Err(reject) if retryable(reject) => {
                // In an honest flow this is a message damaged in transit;
                // the undamaged original is worth resending. (A genuine
                // forgery also lands here, and simply bounces again.)
                metrics.corrupt_rejected += 1;
                tracer.record(EventKind::CorruptReject {
                    attempt,
                    reason: reject,
                    backoff_ms: policy.backoff(attempt).as_millis(),
                });
                *latency += request_delay + channel.latency + policy.backoff(attempt);
                continue;
            }
            Err(reject) => {
                *latency += request_delay + channel.latency;
                return Err(ExchangeFailure::Rejected(reject));
            }
        };
        if freshness != Freshness::Fresh {
            metrics.resyncs += 1;
            tracer.record(EventKind::Resync);
        }

        let mut arrivals = channel.transmit(reply).into_iter();
        let Some(first) = arrivals.next() else {
            // The reply was destroyed; the server has already advanced, so
            // the retransmit will be answered from the idempotency cache.
            metrics.timeouts += 1;
            tracer.record(EventKind::Timeout {
                attempt,
                backoff_ms: policy.backoff(attempt).as_millis(),
            });
            *latency += policy.timeout + policy.backoff(attempt);
            continue;
        };
        let stale = arrivals.count() as u64;
        metrics.stale_content_ignored += stale;
        if stale > 0 {
            tracer.record(EventKind::StaleContent { copies: stale });
        }

        let rtt = request_delay + first.delay;
        if rtt > policy.timeout {
            // The reply exists but arrived after the device stopped
            // waiting — indistinguishable from loss on this attempt.
            metrics.timeouts += 1;
            tracer.record(EventKind::Timeout {
                attempt,
                backoff_ms: policy.backoff(attempt).as_millis(),
            });
            *latency += policy.timeout + policy.backoff(attempt);
            continue;
        }
        if !accept(&first.msg) {
            metrics.corrupt_rejected += 1;
            tracer.record(EventKind::ReplyRejected { attempt });
            *latency += rtt + policy.backoff(attempt);
            continue;
        }
        *latency += rtt;
        metrics.record_latency(phase, rtt);
        tracer.record(EventKind::Served {
            phase,
            rtt_nanos: rtt.as_nanos(),
        });
        return Ok(match freshness {
            Freshness::Resync => Exchanged::Resynced,
            _ => Exchanged::Served(first.msg),
        });
    }
    metrics.giveups += 1;
    tracer.record(EventKind::GiveUp);
    Err(ExchangeFailure::GaveUp)
}

/// Fetches and validates a server hello under the retry policy. Each
/// retry requests a *fresh* hello (nonces are cheap; only consumption is
/// guarded), and a hello damaged in transit is detected by the FLock
/// certificate/signature check and refetched.
pub(crate) fn fetch_hello(
    device: &mut MobileDevice,
    server: &mut WebServer,
    channel: &mut Channel,
    policy: &RetryPolicy,
    metrics: &mut ProtocolMetrics,
    latency: &mut SimDuration,
    path: &str,
) -> Result<ServerHello, ExchangeFailure> {
    let tracer = channel.tracer().clone();
    for attempt in 0..policy.max_attempts {
        metrics.sends += 1;
        if attempt > 0 {
            metrics.retries += 1;
        }
        tracer.record(EventKind::Send { attempt });
        if server.is_crashed() {
            // A dead server answers nothing; the fetch simply times out.
            metrics.timeouts += 1;
            tracer.record(EventKind::Timeout {
                attempt,
                backoff_ms: policy.backoff(attempt).as_millis(),
            });
            *latency += policy.timeout + policy.backoff(attempt);
            continue;
        }
        let hello = server.hello(path);
        let mut arrivals = channel.transmit(hello).into_iter();
        let Some(first) = arrivals.next() else {
            metrics.timeouts += 1;
            tracer.record(EventKind::Timeout {
                attempt,
                backoff_ms: policy.backoff(attempt).as_millis(),
            });
            *latency += policy.timeout + policy.backoff(attempt);
            continue;
        };
        // Duplicate copies of a public page carry no state; ignore them.
        let rtt = channel.latency + first.delay;
        if rtt > policy.timeout {
            metrics.timeouts += 1;
            tracer.record(EventKind::Timeout {
                attempt,
                backoff_ms: policy.backoff(attempt).as_millis(),
            });
            *latency += policy.timeout + policy.backoff(attempt);
            continue;
        }
        if device.check_hello(&first.msg).is_err() {
            metrics.corrupt_rejected += 1;
            tracer.record(EventKind::ReplyRejected { attempt });
            *latency += rtt + policy.backoff(attempt);
            continue;
        }
        *latency += rtt;
        metrics.record_latency(Phase::Hello, rtt);
        tracer.record(EventKind::Served {
            phase: Phase::Hello,
            rtt_nanos: rtt.as_nanos(),
        });
        return Ok(first.msg);
    }
    metrics.giveups += 1;
    tracer.record(EventKind::GiveUp);
    Err(ExchangeFailure::GaveUp)
}

/// What happened during a login run.
#[derive(Clone, Debug)]
pub struct LoginOutcome {
    /// The session id the server opened.
    pub session_id: String,
    /// End-to-end latency, including retry timeouts and backoff.
    pub latency: SimDuration,
    /// Network/retry accounting for the whole login flow.
    pub metrics: ProtocolMetrics,
}

/// Runs the Fig. 10 login (steps 1–3) under the retry policy.
///
/// # Errors
///
/// Propagates device refusals, conclusive server rejections, or exhausted
/// retries ([`FlowError::NetworkDropped`]).
pub fn login(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    policy: &RetryPolicy,
    rng: &mut SimRng,
) -> Result<LoginOutcome, FlowError> {
    let mut metrics = ProtocolMetrics::default();
    let mut latency = SimDuration::ZERO;
    let session_id = login_collect(
        device,
        owner_user,
        server,
        channel,
        policy,
        rng,
        &mut metrics,
        &mut latency,
    )?;
    Ok(LoginOutcome {
        session_id,
        latency,
        metrics,
    })
}

/// [`login`], but accumulating metrics and latency into the caller's
/// counters so a failed attempt's accounting is not lost with the error.
/// Returns the opened session id.
#[allow(clippy::too_many_arguments)]
pub(crate) fn login_collect(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    policy: &RetryPolicy,
    rng: &mut SimRng,
    metrics: &mut ProtocolMetrics,
    latency: &mut SimDuration,
) -> Result<String, FlowError> {
    let tracer = channel.tracer().clone();
    tracer.open(
        SpanKind::SessionEstablish,
        CtxArgs {
            account: device.account_for(server.domain()),
            ..CtxArgs::default()
        },
    );
    let result = login_inner(
        device, owner_user, server, channel, policy, rng, metrics, latency,
    );
    tracer.close(
        SpanKind::SessionEstablish,
        match &result {
            Ok(_) => Outcome::Success,
            Err(FlowError::Server(r)) => Outcome::Rejected(*r),
            Err(FlowError::NetworkDropped) => Outcome::GaveUp,
            Err(FlowError::Device(_)) => Outcome::DeviceRefused,
        },
    );
    result
}

#[allow(clippy::too_many_arguments)]
fn login_inner(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    policy: &RetryPolicy,
    rng: &mut SimRng,
    metrics: &mut ProtocolMetrics,
    latency: &mut SimDuration,
) -> Result<String, FlowError> {
    let hello = fetch_hello(device, server, channel, policy, metrics, latency, "/login")
        .map_err(FlowError::from)?;
    let domain = hello.domain.clone();

    let submit = device.begin_login(&hello, owner_user, rng)?;
    exchange(
        channel,
        policy,
        metrics,
        latency,
        Phase::Submit,
        &submit,
        |m| server.handle_login(m),
        |content: &ContentPage| device.accept_content(&domain, content).is_ok(),
    )
    .map_err(FlowError::from)?;

    Ok(device
        .session_id(&domain)
        .expect("session established")
        .to_owned())
}

/// Aggregate outcome of a post-login browsing session.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Interactions the device attempted.
    pub attempted: u64,
    /// Interactions the server served (each exactly once).
    pub served: u64,
    /// Conclusive server rejections, by reason.
    pub rejects: Vec<Reject>,
    /// Whether the server terminated the session on risk.
    pub terminated: bool,
    /// Total protocol latency, including retry timeouts and backoff.
    pub latency: SimDuration,
    /// Audit-log entries written during this session whose frame hash
    /// matched no legitimate view of the served page (offline audit).
    pub audit_mismatches: u64,
    /// Network/retry accounting for the whole session.
    pub metrics: ProtocolMetrics,
}

/// Runs `touches.len()` post-login interactions (Fig. 10, step 4),
/// cycling through `actions`, under the retry policy. Dropped requests
/// and replies are retransmitted until served or the policy gives up; a
/// give-up leaves the device one reply behind, which the next interaction
/// heals through the server's resync path.
///
/// # Errors
///
/// Fails only on setup problems (no session); per-interaction rejections
/// are recorded in the report.
#[allow(clippy::too_many_arguments)]
pub fn run_session(
    device: &mut MobileDevice,
    server: &mut WebServer,
    channel: &mut Channel,
    domain: &str,
    actions: &[&str],
    touches: &[TouchSample],
    policy: &RetryPolicy,
    rng: &mut SimRng,
) -> Result<SessionReport, FlowError> {
    assert!(!actions.is_empty(), "need at least one action");
    let mut report = SessionReport::default();
    let tracer = channel.tracer().clone();
    let account = device.account_for(domain).map(str::to_owned);
    let audit_start = account
        .as_deref()
        .map(|a| server.audit_log_for(a).len())
        .unwrap_or(0);

    'touches: for (i, touch) in touches.iter().enumerate() {
        let action = actions[i % actions.len()];
        device.observe_touch(touch, rng);
        report.attempted += 1;

        let pre_seq = device.session_seq(domain).unwrap_or(0);
        tracer.open(
            SpanKind::Interact(pre_seq),
            CtxArgs {
                account: account.as_deref(),
                session: device.session_id(domain),
                shard: None,
                seq: Some(pre_seq),
            },
        );

        // One resync round: if the exchange reports the device was a
        // reply behind, the request is rebuilt against the healed state
        // and sent once more.
        let mut outcome = Outcome::GaveUp;
        for _round in 0..2 {
            let request = match device.build_interaction(domain, action) {
                Ok(request) => request,
                Err(err) => {
                    tracer.close(SpanKind::Interact(pre_seq), Outcome::DeviceRefused);
                    return Err(err.into());
                }
            };
            match exchange(
                channel,
                policy,
                &mut report.metrics,
                &mut report.latency,
                Phase::Interaction,
                &request,
                |m| server.handle_interaction(m),
                |content: &ContentPage| device.accept_content(domain, content).is_ok(),
            ) {
                Ok(Exchanged::Served(_)) => {
                    report.served += 1;
                    outcome = Outcome::Success;
                    break;
                }
                Ok(Exchanged::Resynced) => continue,
                Err(ExchangeFailure::Rejected(reject)) => {
                    report.rejects.push(reject);
                    outcome = Outcome::Rejected(reject);
                    if reject == Reject::RiskTerminated {
                        report.terminated = true;
                        tracer.close(SpanKind::Interact(pre_seq), outcome);
                        break 'touches;
                    }
                    break;
                }
                Err(ExchangeFailure::GaveUp) => break,
            }
        }
        tracer.close(SpanKind::Interact(pre_seq), outcome);
    }
    report.audit_mismatches = account
        .as_deref()
        .map(|a| {
            crate::audit::audit_account_from(server, a, audit_start)
                .findings
                .len() as u64
        })
        .unwrap_or(0);
    Ok(report)
}
