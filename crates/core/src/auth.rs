//! The end-to-end continuous-authentication flow (Figure 10).

use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;
use btd_workload::session::TouchSample;

use crate::channel::Channel;
use crate::device::MobileDevice;
use crate::messages::Reject;
use crate::registration::FlowError;
use crate::server::WebServer;

/// What happened during a login run.
#[derive(Clone, Debug)]
pub struct LoginOutcome {
    /// The session id the server opened.
    pub session_id: String,
    /// Adversarial duplicate deliveries the server rejected.
    pub replays_rejected: u64,
    /// End-to-end latency.
    pub latency: SimDuration,
}

/// Runs the Fig. 10 login (steps 1–3).
///
/// # Errors
///
/// Propagates device refusals, server rejections, or drops.
pub fn login(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    rng: &mut SimRng,
) -> Result<LoginOutcome, FlowError> {
    let mut latency = SimDuration::ZERO;

    let hello = server.hello("/login");
    latency += channel.round_trip();
    let hello = channel
        .deliver(hello)
        .into_iter()
        .next()
        .ok_or(FlowError::NetworkDropped)?;
    let domain = hello.domain.clone();

    let submit = device.begin_login(&hello, owner_user, rng)?;
    latency += channel.latency;

    let copies = channel.deliver(submit);
    if copies.is_empty() {
        return Err(FlowError::NetworkDropped);
    }
    let mut replays_rejected = 0;
    let mut first: Option<Result<crate::messages::ContentPage, Reject>> = None;
    for (i, copy) in copies.into_iter().enumerate() {
        let result = server.handle_login(&copy);
        if i == 0 {
            first = Some(result);
        } else if result.is_err() {
            replays_rejected += 1;
        }
    }
    let content = first.expect("at least one delivery")?;
    latency += channel.latency;

    let content = channel
        .deliver(content)
        .into_iter()
        .next()
        .ok_or(FlowError::NetworkDropped)?;
    device.accept_content(&domain, &content)?;
    let session_id = device
        .session_id(&domain)
        .expect("session established")
        .to_owned();
    Ok(LoginOutcome {
        session_id,
        replays_rejected,
        latency,
    })
}

/// Aggregate outcome of a post-login browsing session.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Interactions the device attempted.
    pub attempted: u64,
    /// Interactions the server served.
    pub served: u64,
    /// Server rejections, by reason.
    pub rejects: Vec<Reject>,
    /// Adversarial duplicate deliveries the server rejected.
    pub replays_rejected: u64,
    /// Whether the server terminated the session on risk.
    pub terminated: bool,
    /// Total protocol latency.
    pub latency: SimDuration,
}

/// Runs `touches.len()` post-login interactions (Fig. 10, step 4),
/// cycling through `actions`.
///
/// # Errors
///
/// Fails only on setup problems (no session); per-interaction rejections
/// are recorded in the report.
pub fn run_session(
    device: &mut MobileDevice,
    server: &mut WebServer,
    channel: &mut Channel,
    domain: &str,
    actions: &[&str],
    touches: &[TouchSample],
    rng: &mut SimRng,
) -> Result<SessionReport, FlowError> {
    assert!(!actions.is_empty(), "need at least one action");
    let mut report = SessionReport::default();

    for (i, touch) in touches.iter().enumerate() {
        let action = actions[i % actions.len()];
        let request = device.interact(domain, action, touch, rng)?;
        report.attempted += 1;
        report.latency += channel.latency;

        let copies = channel.deliver(request);
        if copies.is_empty() {
            continue; // dropped request; device will retry next touch
        }
        let mut first = None;
        for (j, copy) in copies.into_iter().enumerate() {
            let result = server.handle_interaction(&copy);
            if j == 0 {
                first = Some(result);
            } else if result.is_err() {
                report.replays_rejected += 1;
            }
        }
        match first.expect("at least one delivery") {
            Ok(content) => {
                report.latency += channel.latency;
                if let Some(content) = channel.deliver(content).into_iter().next() {
                    device.accept_content(domain, &content)?;
                    report.served += 1;
                }
            }
            Err(reject) => {
                report.rejects.push(reject);
                if reject == Reject::RiskTerminated {
                    report.terminated = true;
                    break;
                }
            }
        }
    }
    Ok(report)
}
