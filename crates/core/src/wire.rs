//! Canonical byte encoding for signed and MACed protocol fields.
//!
//! Every message in Figs. 9/10 carries a MAC "computed over these values";
//! for that to be meaningful the values need one unambiguous byte
//! representation. [`FieldWriter`] length-prefixes every field, so two
//! different field sequences can never encode to the same bytes.

/// Serializes a sequence of length-prefixed fields.
#[derive(Debug, Default)]
pub struct FieldWriter {
    buf: Vec<u8>,
}

impl FieldWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        FieldWriter::default()
    }

    /// Appends a byte-string field.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.buf
            .extend_from_slice(&(data.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(data);
        self
    }

    /// Appends a UTF-8 string field.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Appends a `u64` field.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_be_bytes())
    }

    /// Appends a `u32` field.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_be_bytes())
    }

    /// Appends an `f64` field (IEEE-754 big-endian bits).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.bytes(&v.to_be_bytes())
    }

    /// Finishes, returning the canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Convenience: encodes fields with a domain-separation label first.
///
/// # Example
///
/// ```
/// use trust_core::wire::signing_bytes;
///
/// let a = signing_bytes("registration-v1", |w| {
///     w.str("www.xyz.com").str("alice");
/// });
/// let b = signing_bytes("registration-v1", |w| {
///     w.str("www.xyz.co").str("malice");
/// });
/// assert_ne!(a, b);
/// ```
pub fn signing_bytes(label: &str, fill: impl FnOnce(&mut FieldWriter)) -> Vec<u8> {
    let mut w = FieldWriter::new();
    w.str(label);
    fill(&mut w);
    w.finish()
}

/// Reads back a sequence of length-prefixed fields written by
/// [`FieldWriter`].
///
/// Every accessor returns `None` on truncated or malformed input instead
/// of panicking, so journal recovery can treat a torn record as "not a
/// record" rather than a crash.
#[derive(Debug)]
pub struct FieldReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FieldReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        FieldReader { buf, pos: 0 }
    }

    /// Reads the next byte-string field.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len_end = self.pos.checked_add(4)?;
        let len_bytes = self.buf.get(self.pos..len_end)?;
        let len = u32::from_be_bytes(len_bytes.try_into().ok()?) as usize;
        let end = len_end.checked_add(len)?;
        let data = self.buf.get(len_end..end)?;
        self.pos = end;
        Some(data)
    }

    /// Reads the next field as a UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }

    /// Reads the next field as a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.bytes()?;
        Some(u64::from_be_bytes(b.try_into().ok()?))
    }

    /// Reads the next field as an `f64`.
    pub fn f64(&mut self) -> Option<f64> {
        let b = self.bytes()?;
        Some(f64::from_be_bytes(b.try_into().ok()?))
    }

    /// Reads the next field as a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let b = self.bytes()?;
        Some(u32::from_be_bytes(b.try_into().ok()?))
    }

    /// Reads a fixed-size byte array field.
    pub fn array<const N: usize>(&mut self) -> Option<[u8; N]> {
        self.bytes()?.try_into().ok()
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Two different field sequences never encode to the same bytes
        /// (framing is unambiguous).
        #[test]
        fn field_framing_is_injective(
            a in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..6),
            b in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..6),
        ) {
            let enc = |fields: &Vec<Vec<u8>>| {
                let mut w = FieldWriter::new();
                for f in fields {
                    w.bytes(f);
                }
                w.finish()
            };
            if a != b {
                prop_assert_ne!(enc(&a), enc(&b));
            } else {
                prop_assert_eq!(enc(&a), enc(&b));
            }
        }

        /// The encoding length is exactly the sum of field lengths plus
        /// 4 bytes of framing per field.
        #[test]
        fn encoding_length_is_predictable(
            fields in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..8),
        ) {
            let mut w = FieldWriter::new();
            for f in &fields {
                w.bytes(f);
            }
            let expected: usize = fields.iter().map(|f| f.len() + 4).sum();
            prop_assert_eq!(w.finish().len(), expected);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_boundaries_are_unambiguous() {
        let a = signing_bytes("l", |w| {
            w.str("ab").str("c");
        });
        let b = signing_bytes("l", |w| {
            w.str("a").str("bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn labels_domain_separate() {
        let a = signing_bytes("login", |w| {
            w.u64(1);
        });
        let b = signing_bytes("logout", |w| {
            w.u64(1);
        });
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            signing_bytes("x", |w| {
                w.u64(7).f64(0.25).bytes(&[1, 2, 3]);
            })
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn u32_round_trips_and_differs_from_u64() {
        let mut w = FieldWriter::new();
        w.u32(0xDEAD_BEEF).u64(0xDEAD_BEEF);
        let bytes = w.finish();
        let mut r = FieldReader::new(&bytes);
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(0xDEAD_BEEF));
        assert!(r.is_empty());
        // A u32 field cannot be misread as a u64 field (length framing).
        let mut r = FieldReader::new(&bytes);
        assert_eq!(r.u64(), None);
    }

    #[test]
    fn empty_fields_are_still_framed() {
        let a = signing_bytes("l", |w| {
            w.str("").str("");
        });
        let b = signing_bytes("l", |w| {
            w.str("");
        });
        assert_ne!(a, b);
    }
}
