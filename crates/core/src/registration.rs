//! The end-to-end registration flow (Figure 9).

use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;

use crate::auth::{exchange, fetch_hello};
use crate::channel::Channel;
use crate::device::{DeviceError, MobileDevice};
use crate::messages::{RegistrationAck, Reject};
use crate::metrics::{Phase, ProtocolMetrics, RetryPolicy};
use crate::server::WebServer;

/// Why an end-to-end flow failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowError {
    /// The device refused to proceed.
    Device(DeviceError),
    /// The server rejected the message.
    Server(Reject),
    /// The network dropped a required message.
    NetworkDropped,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Device(e) => write!(f, "device: {e}"),
            FlowError::Server(e) => write!(f, "server: {e}"),
            FlowError::NetworkDropped => f.write_str("network dropped the message"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<DeviceError> for FlowError {
    fn from(e: DeviceError) -> Self {
        FlowError::Device(e)
    }
}

impl From<Reject> for FlowError {
    fn from(e: Reject) -> Self {
        FlowError::Server(e)
    }
}

/// What happened during a registration run.
#[derive(Clone, Debug)]
pub struct RegistrationReport {
    /// End-to-end latency (network + device work), including retry
    /// timeouts and backoff.
    pub latency: SimDuration,
    /// Network/retry accounting for the whole flow.
    pub metrics: ProtocolMetrics,
}

/// Runs the full Fig. 9 flow under the retry policy: hello → device
/// submission → server binding → ack. A lost submission or ack is
/// retransmitted; the server re-acks an already-bound retransmit from its
/// idempotency cache instead of failing on `AccountExists`.
///
/// # Errors
///
/// Propagates device refusals, conclusive server rejections, or exhausted
/// retries ([`FlowError::NetworkDropped`]).
pub fn register(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    account: &str,
    policy: &RetryPolicy,
    rng: &mut SimRng,
) -> Result<RegistrationReport, FlowError> {
    let mut metrics = ProtocolMetrics::default();
    let mut latency = SimDuration::ZERO;

    // Step 1: request + serve the registration page.
    let hello = fetch_hello(
        device,
        server,
        channel,
        policy,
        &mut metrics,
        &mut latency,
        "/register",
    )
    .map_err(FlowError::from)?;

    // Steps 2–4: device-side validation, display, touch, key generation.
    let submit = device.begin_registration(&hello, account, owner_user, rng)?;

    // Step 5: server verification and binding, acked back to the device.
    let expected_nonce = submit.nonce;
    let expected_account = submit.account.clone();
    exchange(
        channel,
        policy,
        &mut metrics,
        &mut latency,
        Phase::Submit,
        &submit,
        |m| server.handle_registration(m),
        |ack: &RegistrationAck| ack.nonce == expected_nonce && ack.account == expected_account,
    )
    .map_err(FlowError::from)?;

    Ok(RegistrationReport { latency, metrics })
}
