//! The end-to-end registration flow (Figure 9).

use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;

use crate::channel::Channel;
use crate::device::{DeviceError, MobileDevice};
use crate::messages::Reject;
use crate::server::WebServer;

/// Why an end-to-end flow failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowError {
    /// The device refused to proceed.
    Device(DeviceError),
    /// The server rejected the message.
    Server(Reject),
    /// The network dropped a required message.
    NetworkDropped,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Device(e) => write!(f, "device: {e}"),
            FlowError::Server(e) => write!(f, "server: {e}"),
            FlowError::NetworkDropped => f.write_str("network dropped the message"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<DeviceError> for FlowError {
    fn from(e: DeviceError) -> Self {
        FlowError::Device(e)
    }
}

impl From<Reject> for FlowError {
    fn from(e: Reject) -> Self {
        FlowError::Server(e)
    }
}

/// What happened during a registration run.
#[derive(Clone, Copy, Debug)]
pub struct RegistrationReport {
    /// Adversarial duplicate deliveries the server rejected.
    pub replays_rejected: u64,
    /// End-to-end latency (network + device work).
    pub latency: SimDuration,
}

/// Runs the full Fig. 9 flow: hello → device submission → server binding.
///
/// # Errors
///
/// Propagates device refusals, server rejections, or a dropped message.
pub fn register(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    account: &str,
    rng: &mut SimRng,
) -> Result<RegistrationReport, FlowError> {
    let mut latency = SimDuration::ZERO;

    // Step 1: request + serve the registration page.
    let hello = server.hello("/register");
    latency += channel.round_trip();
    let hello = channel
        .deliver(hello)
        .into_iter()
        .next()
        .ok_or(FlowError::NetworkDropped)?;

    // Steps 2–4: device-side validation, display, touch, key generation.
    let submit = device.begin_registration(&hello, account, owner_user, rng)?;
    latency += channel.latency;

    // Step 5: server verification and binding (adversary may replay).
    let copies = channel.deliver(submit);
    if copies.is_empty() {
        return Err(FlowError::NetworkDropped);
    }
    let mut replays_rejected = 0;
    let mut outcome: Option<Result<(), Reject>> = None;
    for (i, copy) in copies.into_iter().enumerate() {
        let result = server.handle_registration(&copy);
        if i == 0 {
            outcome = Some(result);
        } else if result.is_err() {
            replays_rejected += 1;
        }
    }
    outcome.expect("at least one delivery")?;
    Ok(RegistrationReport {
        replays_rejected,
        latency,
    })
}
