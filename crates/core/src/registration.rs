//! The end-to-end registration flow (Figure 9).

use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;

use crate::auth::{exchange, fetch_hello};
use crate::channel::Channel;
use crate::device::{DeviceError, MobileDevice};
use crate::messages::{RegistrationAck, Reject};
use crate::metrics::{Phase, ProtocolMetrics, RetryPolicy};
use crate::server::WebServer;
use crate::trace::{CtxArgs, Outcome, SpanKind};

/// Why an end-to-end flow failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowError {
    /// The device refused to proceed.
    Device(DeviceError),
    /// The server rejected the message.
    Server(Reject),
    /// The network dropped a required message.
    NetworkDropped,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Device(e) => write!(f, "device: {e}"),
            FlowError::Server(e) => write!(f, "server: {e}"),
            FlowError::NetworkDropped => f.write_str("network dropped the message"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<DeviceError> for FlowError {
    fn from(e: DeviceError) -> Self {
        FlowError::Device(e)
    }
}

impl From<Reject> for FlowError {
    fn from(e: Reject) -> Self {
        FlowError::Server(e)
    }
}

/// What happened during a registration run.
#[derive(Clone, Debug)]
pub struct RegistrationReport {
    /// End-to-end latency (network + device work), including retry
    /// timeouts and backoff.
    pub latency: SimDuration,
    /// Network/retry accounting for the whole flow.
    pub metrics: ProtocolMetrics,
}

/// Runs the full Fig. 9 flow under the retry policy: hello → device
/// submission → server binding → ack. A lost submission or ack is
/// retransmitted; the server re-acks an already-bound retransmit from its
/// idempotency cache instead of failing on `AccountExists`.
///
/// # Errors
///
/// Propagates device refusals, conclusive server rejections, or exhausted
/// retries ([`FlowError::NetworkDropped`]).
pub fn register(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    account: &str,
    policy: &RetryPolicy,
    rng: &mut SimRng,
) -> Result<RegistrationReport, FlowError> {
    let mut metrics = ProtocolMetrics::default();
    let mut latency = SimDuration::ZERO;
    register_collect(
        device,
        owner_user,
        server,
        channel,
        account,
        policy,
        rng,
        &mut metrics,
        &mut latency,
    )?;
    Ok(RegistrationReport { latency, metrics })
}

/// [`register`], but accumulating metrics and latency into the caller's
/// counters so a failed attempt's accounting is not lost with the error.
/// The chaos harness uses this to keep the live counters consistent with
/// the trace even when a flow gives up mid-way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn register_collect(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    account: &str,
    policy: &RetryPolicy,
    rng: &mut SimRng,
    metrics: &mut ProtocolMetrics,
    latency: &mut SimDuration,
) -> Result<(), FlowError> {
    let tracer = channel.tracer().clone();
    tracer.open(SpanKind::Register, CtxArgs::account(account));
    let result = register_inner(
        device, owner_user, server, channel, account, policy, rng, metrics, latency,
    );
    tracer.close(
        SpanKind::Register,
        match &result {
            Ok(_) => Outcome::Success,
            Err(FlowError::Server(r)) => Outcome::Rejected(*r),
            Err(FlowError::NetworkDropped) => Outcome::GaveUp,
            Err(FlowError::Device(_)) => Outcome::DeviceRefused,
        },
    );
    result
}

#[allow(clippy::too_many_arguments)]
fn register_inner(
    device: &mut MobileDevice,
    owner_user: u64,
    server: &mut WebServer,
    channel: &mut Channel,
    account: &str,
    policy: &RetryPolicy,
    rng: &mut SimRng,
    metrics: &mut ProtocolMetrics,
    latency: &mut SimDuration,
) -> Result<(), FlowError> {
    // Step 1: request + serve the registration page.
    let hello = fetch_hello(
        device,
        server,
        channel,
        policy,
        metrics,
        latency,
        "/register",
    )
    .map_err(FlowError::from)?;

    // Steps 2–4: device-side validation, display, touch, key generation.
    let submit = device.begin_registration(&hello, account, owner_user, rng)?;

    // Step 5: server verification and binding, acked back to the device.
    let expected_nonce = submit.nonce;
    let expected_account = submit.account.clone();
    exchange(
        channel,
        policy,
        metrics,
        latency,
        Phase::Submit,
        &submit,
        |m| server.handle_registration(m),
        |ack: &RegistrationAck| ack.nonce == expected_nonce && ack.account == expected_account,
    )
    .map_err(FlowError::from)?;

    Ok(())
}
