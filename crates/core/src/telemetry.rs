//! Deterministic telemetry: time-series sampling, SLO health verdicts,
//! and a span profiler — all in sim time.
//!
//! The tracer ([`crate::trace`]) answers "what happened, event by
//! event"; this module answers the operator questions layered on top of
//! it: *how is the fleet trending over time* (per-shard series sampled
//! on the logical clock), *is it healthy* (declarative SLO rules over
//! the series), and *where does sim time go* (self/cumulative cost per
//! span stack). Every output is a pure function of sim-deterministic
//! inputs, so the same seed produces byte-identical series, verdicts,
//! and profiles at any worker count — the observability surface obeys
//! the same determinism contract as the protocol itself.
//!
//! Three layers:
//!
//! * [`MetricsRegistry`] / [`Telemetry`] — named counters, gauges, and
//!   fixed-bucket histograms. Registration requires a **sampling
//!   source** string naming where the value comes from (`trace:…`,
//!   `probe:…`, `hook:…`); trust-lint's `telemetry-parity` rule keeps
//!   that honest. [`Telemetry`] is the cheap cloneable handle layers
//!   hold, mirroring [`Tracer`](crate::trace::Tracer): disabled by
//!   default, shared buffer when enabled.
//! * [`ShardSampler`] — folds a shard's drained trace events into
//!   counters (the same events [`crate::trace::derive_metrics`]
//!   consumes, so series totals reconcile *exactly* with live
//!   [`ProtocolMetrics`]), probes server gauges, and cuts a
//!   [`SeriesPoint`] every `interval` logical ticks. Per-shard points
//!   merge by `(lt, shard)` exactly like the event merge in
//!   [`crate::parallel`], which is what makes
//!   [`export_series_jsonl`] worker-count invariant.
//! * [`HealthEngine`] / [`SpanProfile`] — SLO rules evaluated over the
//!   merged series into a deterministic [`HealthReport`] (alerts are
//!   recordable as [`EventKind::SloAlert`] trace events, which
//!   `derive_metrics` ignores, so trace/metrics parity is unchanged),
//!   and span aggregation with a folded-stack (flamegraph) export.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::metrics::{Phase, ProtocolMetrics, LATENCY_BUCKET_MS};
use crate::server::WebServer;
use crate::trace::{DuplicateVerdict, EventKind, TraceEvent, Tracer};

/// Buckets for the risk-score distribution histogram: percent of the
/// rolling window's touches that verified. The overflow bucket is the
/// fully-verified (100%) case.
pub const RISK_BUCKET_PCT: [u64; 5] = [25, 50, 75, 90, 99];

/// Handle to one registered instrument.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InstrumentId(usize);

/// A sampled value: a scalar for counters/gauges, a bucket-count vector
/// for histograms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SampleValue {
    /// Counter or gauge reading.
    Int(u64),
    /// Histogram reading: `counts[i]` samples were `<= bounds[i]`, with
    /// one trailing overflow bucket (`counts.len() == bounds.len() + 1`).
    Dist {
        /// Upper bounds, ascending.
        bounds: &'static [u64],
        /// Per-bucket sample counts, including the overflow bucket.
        counts: Vec<u64>,
    },
}

/// What kind of instrument a registration created.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstrumentKind {
    /// Monotonically accumulating count.
    Counter,
    /// Last-write-wins level.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

#[derive(Clone, Debug)]
struct Instrument {
    name: &'static str,
    source: &'static str,
    kind: InstrumentKind,
    value: SampleValue,
}

/// The registry behind a [`Telemetry`] handle: instruments registered
/// with a name and a sampling source, updated by id (hot paths) or by
/// name (cold hook sites).
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    instruments: Vec<Instrument>,
}

impl MetricsRegistry {
    fn register(
        &mut self,
        name: &'static str,
        source: &'static str,
        kind: InstrumentKind,
        value: SampleValue,
    ) -> InstrumentId {
        assert!(
            self.instruments.iter().all(|i| i.name != name),
            "instrument {name:?} registered twice"
        );
        assert!(!source.is_empty(), "instrument {name:?} needs a source");
        self.instruments.push(Instrument {
            name,
            source,
            kind,
            value,
        });
        InstrumentId(self.instruments.len() - 1)
    }

    /// Registers a counter. `source` names where the increments come
    /// from (e.g. `"trace:Send"`), so a reader of the series can audit
    /// each metric back to its producer.
    pub fn register_counter(&mut self, name: &'static str, source: &'static str) -> InstrumentId {
        self.register(name, source, InstrumentKind::Counter, SampleValue::Int(0))
    }

    /// Registers a gauge (see [`MetricsRegistry::register_counter`] for
    /// the `source` contract).
    pub fn register_gauge(&mut self, name: &'static str, source: &'static str) -> InstrumentId {
        self.register(name, source, InstrumentKind::Gauge, SampleValue::Int(0))
    }

    /// Registers a fixed-bucket histogram over `bounds` (ascending upper
    /// bounds; an overflow bucket is added automatically).
    pub fn register_histogram(
        &mut self,
        name: &'static str,
        source: &'static str,
        bounds: &'static [u64],
    ) -> InstrumentId {
        let value = SampleValue::Dist {
            bounds,
            counts: vec![0; bounds.len() + 1],
        };
        self.register(name, source, InstrumentKind::Histogram, value)
    }

    /// The id registered under `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<InstrumentId> {
        self.instruments
            .iter()
            .position(|i| i.name == name)
            .map(InstrumentId)
    }

    /// `(name, source)` for every instrument, in registration order.
    pub fn sources(&self) -> Vec<(&'static str, &'static str)> {
        self.instruments
            .iter()
            .map(|i| (i.name, i.source))
            .collect()
    }

    fn add(&mut self, id: InstrumentId, delta: u64) {
        let inst = &mut self.instruments[id.0];
        debug_assert_eq!(inst.kind, InstrumentKind::Counter);
        if let SampleValue::Int(v) = &mut inst.value {
            *v = v.saturating_add(delta);
        }
    }

    fn set(&mut self, id: InstrumentId, value: u64) {
        let inst = &mut self.instruments[id.0];
        debug_assert_eq!(inst.kind, InstrumentKind::Gauge);
        if let SampleValue::Int(v) = &mut inst.value {
            *v = value;
        }
    }

    fn record(&mut self, id: InstrumentId, sample: u64) {
        let inst = &mut self.instruments[id.0];
        debug_assert_eq!(inst.kind, InstrumentKind::Histogram);
        if let SampleValue::Dist { bounds, counts } = &mut inst.value {
            let bucket = bounds
                .iter()
                .position(|bound| sample <= *bound)
                .unwrap_or(bounds.len());
            counts[bucket] += 1;
        }
    }

    /// Every instrument's current value, sorted by name — the canonical
    /// order [`SeriesPoint`]s and the JSONL export use.
    pub fn snapshot(&self) -> Vec<(&'static str, SampleValue)> {
        let mut values: Vec<(&'static str, SampleValue)> = self
            .instruments
            .iter()
            .map(|i| (i.name, i.value.clone()))
            .collect();
        values.sort_by_key(|(name, _)| *name);
        values
    }
}

/// A cheap, cloneable handle to a shared [`MetricsRegistry`], mirroring
/// [`Tracer`](crate::trace::Tracer): disabled by default so every update
/// call is a no-op branch, shared buffer when enabled. Layers that
/// cannot see the registry's ids (the server's risk hook, the engine's
/// window gauge) update by name; the sampler's hot loop updates by id.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<MetricsRegistry>>>,
}

impl Telemetry {
    /// A disabled handle: every call is a no-op.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A fresh enabled handle over an empty registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(MetricsRegistry::default()))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers a counter (see [`MetricsRegistry::register_counter`]).
    ///
    /// # Panics
    ///
    /// Panics on a disabled handle — registration is the sampler's job
    /// and always happens on an enabled one.
    pub fn register_counter(&self, name: &'static str, source: &'static str) -> InstrumentId {
        self.registry().borrow_mut().register_counter(name, source)
    }

    /// Registers a gauge (see [`MetricsRegistry::register_gauge`]).
    ///
    /// # Panics
    ///
    /// Panics on a disabled handle.
    pub fn register_gauge(&self, name: &'static str, source: &'static str) -> InstrumentId {
        self.registry().borrow_mut().register_gauge(name, source)
    }

    /// Registers a histogram (see [`MetricsRegistry::register_histogram`]).
    ///
    /// # Panics
    ///
    /// Panics on a disabled handle.
    pub fn register_histogram(
        &self,
        name: &'static str,
        source: &'static str,
        bounds: &'static [u64],
    ) -> InstrumentId {
        self.registry()
            .borrow_mut()
            .register_histogram(name, source, bounds)
    }

    fn registry(&self) -> &Rc<RefCell<MetricsRegistry>> {
        self.inner
            .as_ref()
            .expect("registering an instrument on a disabled Telemetry handle")
    }

    /// Adds `delta` to counter `id`.
    pub fn counter_add(&self, id: InstrumentId, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().add(id, delta);
        }
    }

    /// Sets gauge `id` to `value`.
    pub fn gauge_set(&self, id: InstrumentId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().set(id, value);
        }
    }

    /// Records `sample` into histogram `id`.
    pub fn histogram_record(&self, id: InstrumentId, sample: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().record(id, sample);
        }
    }

    /// Records `sample` into the histogram named `name`; a no-op when
    /// disabled or when no sampler registered that name. This is the
    /// hook-site entry point: the producer (e.g. the server's risk
    /// evaluation) does not know or care whether a sampler is attached.
    pub fn record_histogram_by_name(&self, name: &str, sample: u64) {
        if let Some(inner) = &self.inner {
            let mut reg = inner.borrow_mut();
            if let Some(id) = reg.lookup(name) {
                reg.record(id, sample);
            }
        }
    }

    /// Sets the gauge named `name`; a no-op when disabled or unknown.
    pub fn set_gauge_by_name(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut reg = inner.borrow_mut();
            if let Some(id) = reg.lookup(name) {
                reg.set(id, value);
            }
        }
    }

    /// Current values, sorted by name (empty when disabled).
    pub fn snapshot(&self) -> Vec<(&'static str, SampleValue)> {
        self.inner
            .as_ref()
            .map(|i| i.borrow().snapshot())
            .unwrap_or_default()
    }

    /// `(name, source)` pairs for every registered instrument (empty
    /// when disabled).
    pub fn sources(&self) -> Vec<(&'static str, &'static str)> {
        self.inner
            .as_ref()
            .map(|i| i.borrow().sources())
            .unwrap_or_default()
    }
}

// --- Time series -----------------------------------------------------------

/// One sample of every instrument at a logical-clock tick, for one
/// shard. `values` is sorted by metric name (the registry snapshot
/// order), so serialization is canonical.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeriesPoint {
    /// The shard's logical clock (round-robin sweep counter) at sample
    /// time.
    pub lt: u64,
    /// The shard the sample describes.
    pub shard: usize,
    /// `(metric name, value)` in metric-name order. Counters and
    /// histograms are cumulative since the start of the run.
    pub values: Vec<(&'static str, SampleValue)>,
}

impl SeriesPoint {
    /// The scalar value of `metric` at this point, if present
    /// (histograms return `None`).
    pub fn scalar(&self, metric: &str) -> Option<u64> {
        self.values.iter().find_map(|(name, v)| match v {
            SampleValue::Int(x) if *name == metric => Some(*x),
            _ => None,
        })
    }

    /// The distribution value of `metric` at this point, if present.
    pub fn dist(&self, metric: &str) -> Option<(&'static [u64], &[u64])> {
        self.values.iter().find_map(|(name, v)| match v {
            SampleValue::Dist { bounds, counts } if *name == metric => {
                Some((*bounds, counts.as_slice()))
            }
            _ => None,
        })
    }
}

/// Serializes a merged series as JSON Lines, one point per line, keys in
/// fixed order. The caller passes points already merged by `(lt, shard)`
/// ([`merge_series`]); two same-seed runs export byte-identical strings
/// at any worker count.
pub fn export_series_jsonl(points: &[SeriesPoint]) -> String {
    let mut out = String::new();
    for p in points {
        let _ = write!(
            out,
            "{{\"lt\":{},\"shard\":{},\"metrics\":{{",
            p.lt, p.shard
        );
        for (i, (name, value)) in p.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":");
            match value {
                SampleValue::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                SampleValue::Dist { bounds, counts } => {
                    out.push_str("{\"bounds\":[");
                    for (j, b) in bounds.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("],\"counts\":[");
                    for (j, c) in counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("}}\n");
    }
    out
}

/// Merges per-shard series into the global sample order: a stable sort
/// by `(lt, shard)` — the same merge key the event stream uses, and for
/// the same reason: it is a pure function of per-shard data, so any
/// worker schedule merges to the same bytes.
pub fn merge_series(per_shard: impl IntoIterator<Item = Vec<SeriesPoint>>) -> Vec<SeriesPoint> {
    let mut all: Vec<SeriesPoint> = per_shard.into_iter().flatten().collect();
    all.sort_by_key(|p| (p.lt, p.shard));
    all
}

// --- Shard sampler ---------------------------------------------------------

/// Ids of the standard per-shard instruments [`ShardSampler`] registers.
#[derive(Clone, Copy, Debug)]
struct StandardInstruments {
    sends: InstrumentId,
    retries: InstrumentId,
    timeouts: InstrumentId,
    giveups: InstrumentId,
    resyncs: InstrumentId,
    served: InstrumentId,
    replays_accepted: InstrumentId,
    server_rejects: InstrumentId,
    journal_appends: InstrumentId,
    journal_bytes: InstrumentId,
    segments_sealed: InstrumentId,
    sync_retries: InstrumentId,
    crashes: InstrumentId,
    recoveries: InstrumentId,
    records_skipped: InstrumentId,
    live_sessions: InstrumentId,
    cache_entries: InstrumentId,
    window_occupancy: InstrumentId,
    degraded_mode: InstrumentId,
    quarantined_shards: InstrumentId,
    storage_pressure_pct: InstrumentId,
    journal_resident_bytes: InstrumentId,
    interaction_rtt: InstrumentId,
}

/// Samples one shard's simulation into a fixed-interval time series.
///
/// Counters are folded from the shard's drained trace events — the same
/// stream [`crate::trace::derive_metrics`] consumes — so the series'
/// final cumulative values reconcile **exactly** with the live
/// [`ProtocolMetrics`] ([`reconcile`] checks this, and CI enforces it).
/// Gauges are probed from the shard server's public accessors at every
/// sweep. A [`SeriesPoint`] is cut every `interval` logical ticks plus
/// once at the end of the run.
#[derive(Debug)]
pub struct ShardSampler {
    shard: usize,
    interval: u64,
    telemetry: Telemetry,
    ids: StandardInstruments,
    points: Vec<SeriesPoint>,
    last_sampled: Option<u64>,
}

impl ShardSampler {
    /// Creates a sampler for `shard` cutting a point every `interval`
    /// logical ticks (`interval >= 1`).
    pub fn new(shard: usize, interval: u64) -> Self {
        assert!(interval >= 1, "sampling interval must be at least 1 tick");
        let telemetry = Telemetry::enabled();
        let ids = StandardInstruments {
            sends: telemetry.register_counter("sends_total", "trace:Send"),
            retries: telemetry.register_counter("retries_total", "trace:Send{attempt>0}"),
            timeouts: telemetry.register_counter("timeouts_total", "trace:Timeout"),
            giveups: telemetry.register_counter("giveups_total", "trace:GiveUp"),
            resyncs: telemetry.register_counter("resyncs_total", "trace:Resync"),
            served: telemetry.register_counter("served_total", "trace:Served"),
            replays_accepted: telemetry
                .register_counter("replays_accepted_total", "trace:Duplicate{AcceptedFresh}"),
            server_rejects: telemetry
                .register_counter("server_rejects_total", "trace:ServerReject"),
            journal_appends: telemetry
                .register_counter("journal_appends_total", "trace:JournalAppend"),
            journal_bytes: telemetry
                .register_counter("journal_bytes_total", "trace:JournalAppend.bytes"),
            segments_sealed: telemetry
                .register_counter("segments_sealed_total", "trace:SegmentSealed"),
            sync_retries: telemetry.register_counter("sync_retries_total", "trace:SyncRetried"),
            crashes: telemetry.register_counter("crashes_total", "trace:CrashInjected"),
            recoveries: telemetry.register_counter("recoveries_total", "trace:Recovered"),
            records_skipped: telemetry
                .register_counter("records_skipped_total", "trace:Recovered.skipped"),
            live_sessions: telemetry
                .register_gauge("live_sessions", "probe:WebServer::resident_stats.sessions"),
            cache_entries: telemetry.register_gauge(
                "cache_entries",
                "probe:WebServer::resident_stats.cache_entries",
            ),
            window_occupancy: telemetry
                .register_gauge("window_occupancy", "probe:driver.live_lifecycles"),
            degraded_mode: telemetry
                .register_gauge("degraded_mode", "probe:WebServer::is_degraded"),
            quarantined_shards: telemetry
                .register_gauge("quarantined_shards", "probe:WebServer::is_quarantined"),
            storage_pressure_pct: telemetry
                .register_gauge("storage_pressure_pct", "probe:Journal::pressure"),
            journal_resident_bytes: telemetry
                .register_gauge("journal_resident_bytes", "probe:WebServer::journal_bytes"),
            interaction_rtt: telemetry.register_histogram(
                "interaction_rtt_ms",
                "trace:Served{Interaction}.rtt_nanos",
                &LATENCY_BUCKET_MS,
            ),
        };
        telemetry.register_histogram(
            "risk_verified_pct",
            "hook:WebServer::observe_risk",
            &RISK_BUCKET_PCT,
        );
        ShardSampler {
            shard,
            interval,
            telemetry,
            ids,
            points: Vec::new(),
            last_sampled: None,
        }
    }

    /// A handle to the sampler's registry, for installing into producers
    /// (e.g. [`WebServer::set_telemetry`]) so hook-site metrics like the
    /// risk distribution land in the same series.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Folds one drained trace event into the counters. Call in drain
    /// order; the events are observed, never consumed, so tracing output
    /// is untouched.
    pub fn observe_event(&self, ev: &TraceEvent) {
        let t = &self.telemetry;
        let ids = &self.ids;
        match &ev.kind {
            EventKind::Send { attempt } => {
                t.counter_add(ids.sends, 1);
                if *attempt > 0 {
                    t.counter_add(ids.retries, 1);
                }
            }
            EventKind::Timeout { .. } => t.counter_add(ids.timeouts, 1),
            EventKind::GiveUp => t.counter_add(ids.giveups, 1),
            EventKind::Resync => t.counter_add(ids.resyncs, 1),
            EventKind::Served { phase, rtt_nanos } => {
                t.counter_add(ids.served, 1);
                if *phase == Phase::Interaction {
                    // Millisecond truncation matches
                    // `LatencyHistogram::record` exactly, so the final
                    // bucket counts reconcile with the live histogram.
                    t.histogram_record(ids.interaction_rtt, rtt_nanos / 1_000_000);
                }
            }
            EventKind::Duplicate {
                verdict: DuplicateVerdict::AcceptedFresh,
            } => t.counter_add(ids.replays_accepted, 1),
            EventKind::ServerReject { .. } => t.counter_add(ids.server_rejects, 1),
            EventKind::JournalAppend { bytes, .. } => {
                t.counter_add(ids.journal_appends, 1);
                t.counter_add(ids.journal_bytes, *bytes as u64);
            }
            EventKind::SegmentSealed { .. } => t.counter_add(ids.segments_sealed, 1),
            EventKind::SyncRetried { .. } => t.counter_add(ids.sync_retries, 1),
            EventKind::CrashInjected { .. } => t.counter_add(ids.crashes, 1),
            EventKind::Recovered { skipped, .. } => {
                t.counter_add(ids.recoveries, 1);
                t.counter_add(ids.records_skipped, *skipped as u64);
            }
            _ => {}
        }
    }

    /// Probes the shard server's gauges. `live_lifecycles` is the
    /// driver's count of still-open lifecycles (the fleet's window
    /// occupancy at lock-step grain).
    pub fn probe(&self, server: &WebServer, live_lifecycles: u64) {
        let t = &self.telemetry;
        let ids = &self.ids;
        let stats = server.resident_stats();
        t.gauge_set(ids.live_sessions, stats.sessions as u64);
        t.gauge_set(ids.cache_entries, stats.cache_entries as u64);
        t.gauge_set(ids.window_occupancy, live_lifecycles);
        t.gauge_set(ids.degraded_mode, u64::from(server.is_degraded()));
        let mut quarantined = 0u64;
        let mut pressure_pct = 0u64;
        for idx in 0..server.shard_count() {
            quarantined += u64::from(server.is_quarantined(idx));
            if let Some(p) = server.journal(idx).pressure() {
                pressure_pct = pressure_pct.max((p * 100.0).round() as u64);
            }
        }
        t.gauge_set(ids.quarantined_shards, quarantined);
        t.gauge_set(ids.storage_pressure_pct, pressure_pct);
        t.gauge_set(ids.journal_resident_bytes, server.journal_bytes() as u64);
    }

    /// Cuts a point at tick `lt` if it is on the sampling interval and
    /// was not already sampled.
    pub fn tick(&mut self, lt: u64) {
        if lt.is_multiple_of(self.interval) {
            self.cut(lt);
        }
    }

    /// Cuts a final point at `lt` unconditionally, so the series always
    /// ends with the run's cumulative totals (the values [`reconcile`]
    /// checks).
    pub fn finish(&mut self, lt: u64) {
        self.cut(lt);
    }

    fn cut(&mut self, lt: u64) {
        if self.last_sampled == Some(lt) {
            return;
        }
        self.last_sampled = Some(lt);
        self.points.push(SeriesPoint {
            lt,
            shard: self.shard,
            values: self.telemetry.snapshot(),
        });
    }

    /// Consumes the sampler, returning its series (ascending `lt`).
    pub fn into_points(self) -> Vec<SeriesPoint> {
        self.points
    }
}

/// Checks that a merged series' final cumulative values reconcile
/// exactly with live [`ProtocolMetrics`] accounting. Returns the first
/// mismatch as an error string.
///
/// This is the telemetry analogue of trace/metrics parity: the sampler
/// folds the same events `derive_metrics` consumes, so any divergence
/// means a counter was dropped or double-counted.
pub fn reconcile(points: &[SeriesPoint], live: &ProtocolMetrics) -> Result<(), String> {
    // Final point per shard: points are merged by (lt, shard), so the
    // last occurrence of each shard id carries its cumulative totals.
    let mut finals: BTreeMap<usize, &SeriesPoint> = BTreeMap::new();
    for p in points {
        finals.insert(p.shard, p);
    }
    let sum =
        |metric: &str| -> u64 { finals.values().map(|p| p.scalar(metric).unwrap_or(0)).sum() };
    let checks: [(&str, u64, u64); 7] = [
        ("sends_total", sum("sends_total"), live.sends),
        ("retries_total", sum("retries_total"), live.retries),
        ("timeouts_total", sum("timeouts_total"), live.timeouts),
        ("giveups_total", sum("giveups_total"), live.giveups),
        ("resyncs_total", sum("resyncs_total"), live.resyncs),
        (
            "replays_accepted_total",
            sum("replays_accepted_total"),
            live.replays_accepted,
        ),
        (
            "served_total",
            sum("served_total"),
            live.hello.samples
                + live.submit.samples
                + live.interaction.samples
                + live.lifecycle.samples,
        ),
    ];
    for (metric, series, expected) in checks {
        if series != expected {
            return Err(format!(
                "series {metric} = {series} but live metrics say {expected}"
            ));
        }
    }
    // The interaction latency distribution must match bucket for bucket.
    let mut counts = vec![0u64; LATENCY_BUCKET_MS.len() + 1];
    for p in finals.values() {
        if let Some((_, c)) = p.dist("interaction_rtt_ms") {
            for (acc, v) in counts.iter_mut().zip(c.iter()) {
                *acc += v;
            }
        }
    }
    if counts != live.interaction.counts {
        return Err(format!(
            "series interaction_rtt_ms counts {:?} != live {:?}",
            counts, live.interaction.counts
        ));
    }
    Ok(())
}

// --- SLO rules and health --------------------------------------------------

/// One declarative service-level rule over the sampled series.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SloRule {
    /// The counter must end the run at zero.
    CounterZero {
        /// The counter metric.
        metric: &'static str,
    },
    /// The metric's final value must be `<= max`.
    FinalAtMost {
        /// The scalar metric.
        metric: &'static str,
        /// Inclusive bound.
        max: u64,
    },
    /// The histogram metric's `q_pct`-th percentile (conservative bucket
    /// upper bound; overflow counts as `bounds.max + 1`) must be
    /// `<= max`.
    QuantileAtMost {
        /// The histogram metric.
        metric: &'static str,
        /// Percentile, 1–100.
        q_pct: u8,
        /// Inclusive bound, in the histogram's unit.
        max: u64,
    },
    /// The gauge must be nonzero in at most `max_pct` percent of the
    /// shard's samples (duty cycle at sampling resolution).
    DutyCycleAtMost {
        /// The gauge metric.
        metric: &'static str,
        /// Inclusive duty-cycle bound in percent.
        max_pct: u8,
    },
    /// Retry-storm detection by rolling-window rate of change: over the
    /// cumulative counter's per-sample deltas, no window of `window`
    /// deltas may sum to `>= min_delta` while also exceeding `factor`
    /// times the previous window's sum.
    RateSpikeBelow {
        /// The cumulative counter metric.
        metric: &'static str,
        /// Rolling window length, in samples.
        window: usize,
        /// Growth factor versus the previous window that counts as a
        /// spike.
        factor: u64,
        /// Absolute floor below which growth is never a spike (filters
        /// small-number noise).
        min_delta: u64,
    },
}

/// A named SLO and its evaluation scope.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SloSpec {
    /// Stable rule name (appears in verdicts and alert events).
    pub name: &'static str,
    /// The rule.
    pub rule: SloRule,
    /// `true`: one verdict per shard; `false`: one fleet-wide verdict
    /// over summed finals / merged distributions.
    pub per_shard: bool,
}

/// Evaluates a set of [`SloSpec`]s over a merged series.
#[derive(Clone, Debug)]
pub struct HealthEngine {
    /// The rules, in verdict order.
    pub slos: Vec<SloSpec>,
}

/// One rule's verdict: the observed value against its bound.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SloVerdict {
    /// The rule's name.
    pub slo: &'static str,
    /// The shard scoped to, or `None` for fleet-wide.
    pub shard: Option<usize>,
    /// Whether the rule held.
    pub ok: bool,
    /// The observed value (unit depends on the rule).
    pub observed: u64,
    /// The rule's bound.
    pub bound: u64,
}

/// A deterministic health evaluation: verdicts in `(rule, shard)` order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HealthReport {
    /// Every rule's verdict.
    pub verdicts: Vec<SloVerdict>,
}

impl HealthEngine {
    /// The standard fleet SLOs: exactly-once (`replays_accepted == 0`),
    /// interaction p99 within the histogram's top bucket, degraded-mode
    /// duty cycle, quarantine count, and retry-storm detection.
    pub fn standard() -> Self {
        HealthEngine {
            slos: vec![
                SloSpec {
                    name: "replays-zero",
                    rule: SloRule::CounterZero {
                        metric: "replays_accepted_total",
                    },
                    per_shard: false,
                },
                SloSpec {
                    name: "auth-p99",
                    rule: SloRule::QuantileAtMost {
                        metric: "interaction_rtt_ms",
                        q_pct: 99,
                        max: LATENCY_BUCKET_MS[LATENCY_BUCKET_MS.len() - 1],
                    },
                    per_shard: false,
                },
                SloSpec {
                    name: "degraded-duty",
                    rule: SloRule::DutyCycleAtMost {
                        metric: "degraded_mode",
                        max_pct: 50,
                    },
                    per_shard: true,
                },
                SloSpec {
                    name: "quarantine-zero",
                    rule: SloRule::FinalAtMost {
                        metric: "quarantined_shards",
                        max: 0,
                    },
                    per_shard: true,
                },
                SloSpec {
                    name: "retry-storm",
                    rule: SloRule::RateSpikeBelow {
                        metric: "retries_total",
                        window: 4,
                        factor: 8,
                        min_delta: 96,
                    },
                    per_shard: true,
                },
            ],
        }
    }

    /// Evaluates every rule over `points` (merged by `(lt, shard)`).
    /// Deterministic: verdicts come out in `(rule order, shard id)`
    /// order, and every observation is integer arithmetic over the
    /// series.
    pub fn evaluate(&self, points: &[SeriesPoint]) -> HealthReport {
        let mut shards: Vec<usize> = points.iter().map(|p| p.shard).collect();
        shards.sort_unstable();
        shards.dedup();
        let mut verdicts = Vec::new();
        for spec in &self.slos {
            if spec.per_shard {
                for &shard in &shards {
                    let shard_points: Vec<&SeriesPoint> =
                        points.iter().filter(|p| p.shard == shard).collect();
                    verdicts.push(eval_rule(spec, Some(shard), &shard_points));
                }
            } else {
                let all: Vec<&SeriesPoint> = points.iter().collect();
                verdicts.push(eval_rule(spec, None, &all));
            }
        }
        HealthReport { verdicts }
    }
}

/// Final (cumulative) value of `metric` summed over each shard's last
/// point within `points`.
fn final_sum(points: &[&SeriesPoint], metric: &str) -> u64 {
    let mut finals: BTreeMap<usize, u64> = BTreeMap::new();
    for p in points {
        if let Some(v) = p.scalar(metric) {
            finals.insert(p.shard, v);
        }
    }
    finals.values().sum()
}

fn eval_rule(spec: &SloSpec, shard: Option<usize>, points: &[&SeriesPoint]) -> SloVerdict {
    let (ok, observed, bound) = match spec.rule {
        SloRule::CounterZero { metric } => {
            let v = final_sum(points, metric);
            (v == 0, v, 0)
        }
        SloRule::FinalAtMost { metric, max } => {
            let v = final_sum(points, metric);
            (v <= max, v, max)
        }
        SloRule::QuantileAtMost { metric, q_pct, max } => {
            // Points are cumulative, so each shard's *final* point
            // carries its whole-run distribution; sum those.
            let mut bounds: &'static [u64] = &[];
            let mut finals: BTreeMap<usize, &[u64]> = BTreeMap::new();
            for p in points {
                if let Some((b, c)) = p.dist(metric) {
                    bounds = b;
                    finals.insert(p.shard, c);
                }
            }
            let mut counts = vec![0u64; bounds.len() + 1];
            for c in finals.values() {
                for (acc, v) in counts.iter_mut().zip(c.iter()) {
                    *acc += v;
                }
            }
            let total: u64 = counts.iter().sum();
            if total == 0 {
                (true, 0, max)
            } else {
                // Rank of the q-th percentile sample, conservative
                // (bucket upper bound; overflow counts as max bound + 1).
                let q = u64::from(q_pct.clamp(1, 100));
                let rank = (total * q).div_ceil(100);
                let mut seen = 0u64;
                let mut observed = bounds.last().map(|b| b + 1).unwrap_or(u64::MAX);
                for (bucket, count) in counts.iter().enumerate() {
                    seen += count;
                    if seen >= rank {
                        observed = match bounds.get(bucket) {
                            Some(b) => *b,
                            None => bounds.last().map(|b| b + 1).unwrap_or(u64::MAX),
                        };
                        break;
                    }
                }
                (observed <= max, observed, max)
            }
        }
        SloRule::DutyCycleAtMost { metric, max_pct } => {
            let samples: Vec<u64> = points.iter().filter_map(|p| p.scalar(metric)).collect();
            if samples.is_empty() {
                (true, 0, u64::from(max_pct))
            } else {
                let hot = samples.iter().filter(|v| **v != 0).count() as u64;
                let pct = hot * 100 / samples.len() as u64;
                (pct <= u64::from(max_pct), pct, u64::from(max_pct))
            }
        }
        SloRule::RateSpikeBelow {
            metric,
            window,
            factor,
            min_delta,
        } => {
            let series: Vec<u64> = points.iter().filter_map(|p| p.scalar(metric)).collect();
            let deltas: Vec<u64> = series
                .windows(2)
                .map(|w| w[1].saturating_sub(w[0]))
                .collect();
            let mut worst = 0u64;
            if deltas.len() >= window * 2 {
                for i in window..=deltas.len() - window {
                    let prev: u64 = deltas[i - window..i].iter().sum();
                    let cur: u64 = deltas[i..i + window].iter().sum();
                    if cur >= min_delta && cur > prev.saturating_mul(factor) {
                        worst = worst.max(cur);
                    }
                }
            }
            (worst == 0, worst, min_delta)
        }
    };
    SloVerdict {
        slo: spec.name,
        shard,
        ok,
        observed,
        bound,
    }
}

impl HealthReport {
    /// Whether every rule held.
    pub fn healthy(&self) -> bool {
        self.verdicts.iter().all(|v| v.ok)
    }

    /// The failed verdicts, in report order.
    pub fn alerts(&self) -> impl Iterator<Item = &SloVerdict> {
        self.verdicts.iter().filter(|v| !v.ok)
    }

    /// Records one [`EventKind::SloAlert`] per failed verdict into
    /// `tracer`, in report order. The alert events are ignored by
    /// [`crate::trace::derive_metrics`], so trace/metrics parity is
    /// unchanged by alerting.
    pub fn record_alerts(&self, tracer: &Tracer) {
        for v in self.alerts() {
            tracer.record(EventKind::SloAlert {
                rule: v.slo,
                alert_shard: v.shard,
            });
        }
    }

    /// A fixed-width verdict table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>5} {:>12} {:>12}",
            "slo", "shard", "ok", "observed", "bound"
        );
        for v in &self.verdicts {
            let shard = v
                .shard
                .map(|s| s.to_string())
                .unwrap_or_else(|| "fleet".to_owned());
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>5} {:>12} {:>12}",
                v.slo,
                shard,
                if v.ok { "ok" } else { "FAIL" },
                v.observed,
                v.bound
            );
        }
        out
    }
}

// --- Span profiler ---------------------------------------------------------

/// Aggregated cost of one span stack on one shard.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanStat {
    /// The shard the spans ran on.
    pub shard: usize,
    /// Semicolon-joined open-span names, outermost first (the
    /// folded-stack key, e.g. `lifecycle;interact`).
    pub stack: String,
    /// Spans closed under this exact stack.
    pub count: u64,
    /// Modeled sim time attributed directly to this stack (served RTTs
    /// plus retry/corrupt backoffs recorded while it was innermost).
    pub self_nanos: u64,
    /// Self time plus all nested spans' time.
    pub total_nanos: u64,
}

/// A deterministic span-cost profile: stats sorted by `(shard, stack)`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpanProfile {
    /// Per-stack aggregates, sorted by `(shard, stack)`.
    pub stats: Vec<SpanStat>,
}

#[derive(Default)]
struct OpenFrame {
    name: &'static str,
    self_nanos: u64,
    child_nanos: u64,
}

/// Builds a [`SpanProfile`] from `(shard, event)` pairs in merge order.
///
/// Stacks are rebuilt per `(shard, account)` — spans nest strictly
/// within one principal's flow, and the merged stream preserves each
/// shard's recording order, so reconstruction is exact and worker-count
/// invariant. Costs are the modeled wire times the trace already
/// carries: `Served.rtt_nanos`, plus `Timeout`/`CorruptReject` backoffs.
pub fn profile_spans<'a>(events: impl IntoIterator<Item = (usize, &'a TraceEvent)>) -> SpanProfile {
    type StackKey = (usize, Option<String>);
    let mut stacks: BTreeMap<StackKey, Vec<OpenFrame>> = BTreeMap::new();
    let mut agg: BTreeMap<(usize, String), (u64, u64, u64)> = BTreeMap::new();
    for (shard, ev) in events {
        let key: StackKey = (shard, ev.ctx.account.clone());
        match &ev.kind {
            EventKind::SpanOpen { span } => {
                stacks.entry(key).or_default().push(OpenFrame {
                    name: span.name(),
                    ..OpenFrame::default()
                });
            }
            EventKind::SpanClose { .. } => {
                let stack = stacks.entry(key).or_default();
                if let Some(frame) = stack.pop() {
                    let total = frame.self_nanos + frame.child_nanos;
                    let mut path: Vec<&str> = stack.iter().map(|f| f.name).collect();
                    path.push(frame.name);
                    if let Some(parent) = stack.last_mut() {
                        parent.child_nanos += total;
                    }
                    let entry = agg.entry((shard, path.join(";"))).or_default();
                    entry.0 += 1;
                    entry.1 += frame.self_nanos;
                    entry.2 += total;
                }
            }
            EventKind::Served { rtt_nanos, .. } => {
                if let Some(frame) = stacks.entry(key).or_default().last_mut() {
                    frame.self_nanos += rtt_nanos;
                }
            }
            EventKind::Timeout { backoff_ms, .. } | EventKind::CorruptReject { backoff_ms, .. } => {
                if let Some(frame) = stacks.entry(key).or_default().last_mut() {
                    frame.self_nanos += backoff_ms * 1_000_000;
                }
            }
            _ => {}
        }
    }
    let stats = agg
        .into_iter()
        .map(
            |((shard, stack), (count, self_nanos, total_nanos))| SpanStat {
                shard,
                stack,
                count,
                self_nanos,
                total_nanos,
            },
        )
        .collect();
    SpanProfile { stats }
}

impl SpanProfile {
    /// The profile in folded-stack (flamegraph collapsed) format: one
    /// `shard<N>;<stack> <self_nanos>` line per stack, sorted. Feed to
    /// any flamegraph renderer.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for s in &self.stats {
            let _ = writeln!(out, "shard{};{} {}", s.shard, s.stack, s.self_nanos);
        }
        out
    }

    /// The `k` hottest stacks by self time (ties broken by `(shard,
    /// stack)` so the order is total).
    pub fn top_spans(&self, k: usize) -> Vec<&SpanStat> {
        let mut sorted: Vec<&SpanStat> = self.stats.iter().collect();
        sorted.sort_by(|a, b| {
            b.self_nanos
                .cmp(&a.self_nanos)
                .then(a.shard.cmp(&b.shard))
                .then(a.stack.cmp(&b.stack))
        });
        sorted.truncate(k);
        sorted
    }

    /// A fixed-width top-`k` hot-span table (self/total in sim
    /// milliseconds).
    pub fn render_top(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:<28} {:>8} {:>12} {:>12}",
            "shard", "stack", "count", "self_ms", "total_ms"
        );
        for s in self.top_spans(k) {
            let _ = writeln!(
                out,
                "{:<6} {:<28} {:>8} {:>12} {:>12}",
                s.shard,
                s.stack,
                s.count,
                s.self_nanos / 1_000_000,
                s.total_nanos / 1_000_000
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CtxArgs, Outcome, SpanKind};

    #[test]
    fn disabled_telemetry_is_a_no_op() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.record_histogram_by_name("risk_verified_pct", 50);
        t.set_gauge_by_name("window_occupancy", 3);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn registry_snapshot_is_sorted_by_name() {
        let t = Telemetry::enabled();
        let b = t.register_counter("bbb", "trace:test");
        let a = t.register_counter("aaa", "trace:test");
        t.counter_add(b, 2);
        t.counter_add(a, 1);
        let snap = t.snapshot();
        assert_eq!(snap[0], ("aaa", SampleValue::Int(1)));
        assert_eq!(snap[1], ("bbb", SampleValue::Int(2)));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let t = Telemetry::enabled();
        t.register_counter("dup", "trace:test");
        t.register_counter("dup", "trace:test");
    }

    #[test]
    fn histogram_bucketing_matches_latency_histogram() {
        use crate::metrics::LatencyHistogram;
        use btd_sim::time::SimDuration;
        let t = Telemetry::enabled();
        let id = t.register_histogram("h", "trace:test", &LATENCY_BUCKET_MS);
        let mut live = LatencyHistogram::default();
        for nanos in [
            1u64,
            74_999_999,
            75_000_000,
            75_000_001,
            1_199_999_999,
            1_300_000_000,
        ] {
            t.histogram_record(id, nanos / 1_000_000);
            live.record(SimDuration::from_nanos(nanos));
        }
        let snap = t.snapshot();
        let SampleValue::Dist { counts, .. } = &snap[0].1 else {
            panic!("expected a distribution");
        };
        assert_eq!(counts.as_slice(), &live.counts[..]);
    }

    #[test]
    fn series_export_is_canonical() {
        let mut s = ShardSampler::new(3, 2);
        s.tick(0);
        s.tick(1); // off-interval: no point
        s.tick(2);
        let points = s.into_points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].lt, 0);
        assert_eq!(points[1].lt, 2);
        let jsonl = export_series_jsonl(&points);
        assert!(jsonl.starts_with("{\"lt\":0,\"shard\":3,\"metrics\":{"));
        assert_eq!(jsonl.lines().count(), 2);
        // Names appear in sorted order.
        let line = jsonl.lines().next().unwrap();
        let cache = line.find("\"cache_entries\"").unwrap();
        let window = line.find("\"window_occupancy\"").unwrap();
        assert!(cache < window);
    }

    #[test]
    fn merge_series_orders_by_lt_then_shard() {
        let mk = |lt, shard| SeriesPoint {
            lt,
            shard,
            values: Vec::new(),
        };
        let merged = merge_series(vec![vec![mk(0, 1), mk(2, 1)], vec![mk(0, 0), mk(1, 0)]]);
        let keys: Vec<_> = merged.iter().map(|p| (p.lt, p.shard)).collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0), (2, 1)]);
    }

    #[test]
    fn health_rules_fire_on_violations() {
        let point = |lt, shard, retries: u64, degraded: u64| SeriesPoint {
            lt,
            shard,
            values: vec![
                ("degraded_mode", SampleValue::Int(degraded)),
                ("replays_accepted_total", SampleValue::Int(0)),
                ("retries_total", SampleValue::Int(retries)),
            ],
        };
        // A retry storm: flat, then an 8x rate-of-change spike.
        let mut points = Vec::new();
        let mut total = 0u64;
        for lt in 0..16u64 {
            total += if lt >= 12 { 200 } else { 1 };
            points.push(point(lt, 0, total, u64::from(lt >= 8)));
        }
        let engine = HealthEngine::standard();
        let report = engine.evaluate(&points);
        assert!(!report.healthy());
        let storm = report
            .verdicts
            .iter()
            .find(|v| v.slo == "retry-storm")
            .unwrap();
        assert!(!storm.ok);
        let duty = report
            .verdicts
            .iter()
            .find(|v| v.slo == "degraded-duty")
            .unwrap();
        assert!(duty.ok, "50% duty bound holds at 7/16 hot samples");
        // All-quiet series is healthy.
        let quiet: Vec<SeriesPoint> = (0..16).map(|lt| point(lt, 0, 0, 0)).collect();
        assert!(engine.evaluate(&quiet).healthy());
    }

    #[test]
    fn alert_events_do_not_perturb_derived_metrics() {
        use crate::trace::derive_metrics;
        let tracer = Tracer::enabled();
        tracer.record(EventKind::Send { attempt: 0 });
        let before = derive_metrics(&tracer.events());
        let report = HealthReport {
            verdicts: vec![SloVerdict {
                slo: "retry-storm",
                shard: Some(2),
                ok: false,
                observed: 500,
                bound: 96,
            }],
        };
        report.record_alerts(&tracer);
        let events = tracer.events();
        assert_eq!(events.len(), 2, "alert was traced");
        assert_eq!(derive_metrics(&events), before, "parity unchanged");
        assert!(crate::trace::event_json(&events[1]).contains("\"type\":\"slo_alert\""));
    }

    #[test]
    fn profiler_attributes_self_and_total_time() {
        let tracer = Tracer::enabled();
        tracer.open(SpanKind::Lifecycle, CtxArgs::account("alice"));
        tracer.record(EventKind::Served {
            phase: Phase::Hello,
            rtt_nanos: 5_000_000,
        });
        tracer.open(SpanKind::Interact(0), CtxArgs::account("alice"));
        tracer.record(EventKind::Served {
            phase: Phase::Interaction,
            rtt_nanos: 40_000_000,
        });
        tracer.record(EventKind::Timeout {
            attempt: 0,
            backoff_ms: 10,
        });
        tracer.close(SpanKind::Interact(0), Outcome::Success);
        tracer.close(SpanKind::Lifecycle, Outcome::Success);
        let events = tracer.events();
        let profile = profile_spans(events.iter().map(|e| (0usize, e)));
        let interact = profile
            .stats
            .iter()
            .find(|s| s.stack == "lifecycle;interact")
            .unwrap();
        assert_eq!(interact.self_nanos, 50_000_000);
        assert_eq!(interact.total_nanos, 50_000_000);
        let lifecycle = profile
            .stats
            .iter()
            .find(|s| s.stack == "lifecycle")
            .unwrap();
        assert_eq!(lifecycle.self_nanos, 5_000_000);
        assert_eq!(lifecycle.total_nanos, 55_000_000);
        let folded = profile.folded_stacks();
        assert!(folded.contains("shard0;lifecycle;interact 50000000"));
        assert_eq!(profile.top_spans(1)[0].stack, "lifecycle;interact");
    }
}
