//! The touch event stream.
//!
//! [`TouchEvent`]s are what the touchscreen controller hands to the FLock
//! fingerprint controller: a panel position, a timestamp, and the physical
//! context (pressure, speed) the quality model needs.

use std::fmt;

use btd_sim::geom::MmPoint;
use btd_sim::time::SimTime;

/// The lifecycle phase of a touch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TouchPhase {
    /// Finger landed this frame.
    Down,
    /// Finger is moving (or stationary) on the panel.
    Move,
    /// Finger lifted this frame.
    Up,
}

impl fmt::Display for TouchPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TouchPhase::Down => "down",
            TouchPhase::Move => "move",
            TouchPhase::Up => "up",
        };
        f.write_str(s)
    }
}

/// One reported touch event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TouchEvent {
    /// Stable id for the duration of the touch.
    pub id: u64,
    /// Panel position, millimetres.
    pub pos: MmPoint,
    /// When the controller reported the event.
    pub at: SimTime,
    /// Lifecycle phase.
    pub phase: TouchPhase,
    /// Amplitude-derived pressure estimate in `[0, 1]`.
    pub pressure: f64,
    /// Finger speed estimate, mm/s (0 on `Down`).
    pub speed_mm_s: f64,
}

impl fmt::Display for TouchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "touch#{} {} at {} {} (p={:.2}, v={:.0}mm/s)",
            self.id, self.phase, self.pos, self.at, self.pressure, self.speed_mm_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TouchEvent {
            id: 3,
            pos: MmPoint::new(10.0, 20.0),
            at: SimTime::from_nanos(4_000_000),
            phase: TouchPhase::Down,
            pressure: 0.5,
            speed_mm_s: 0.0,
        };
        let s = e.to_string();
        assert!(s.contains("touch#3"));
        assert!(s.contains("down"));
    }
}
