#![warn(missing_docs)]

//! Capacitive touchscreen simulation (paper Figure 1).
//!
//! The paper's biometric touch-display starts from a standard projected-
//! capacitive panel: "two parallel ITO film layers … the top and bottom ITO
//! layers provide row and column touch sensing, respectively", with a
//! typical response time of 4 ms. The first stage of every fingerprint
//! capture is the touchscreen locating the touch point so the right TFT
//! sensor can be activated.
//!
//! * [`panel`] — panel geometry: physical size, ITO electrode pitch and
//!   counts, frame time.
//! * [`contact`] — physical finger contacts (position, radius, pressure).
//! * [`scan`] — the parallel row/column capacitance scan with sensing
//!   noise.
//! * [`detect`] — peak detection, sub-electrode interpolation, and
//!   multi-touch ghost-point disambiguation.
//! * [`event`] — the [`event::TouchEvent`] stream consumed by the FLock
//!   fingerprint controller.
//! * [`controller`] — the touchscreen controller tying scan + detect
//!   together at the panel frame rate.
//!
//! # Example
//!
//! ```
//! use btd_touch::contact::Contact;
//! use btd_touch::controller::TouchController;
//! use btd_touch::panel::PanelSpec;
//! use btd_sim::geom::MmPoint;
//! use btd_sim::rng::SimRng;
//! use btd_sim::time::SimTime;
//!
//! let mut controller = TouchController::new(PanelSpec::smartphone());
//! let mut rng = SimRng::seed_from(1);
//! let contact = Contact::new(MmPoint::new(30.0, 60.0), 4.0, 0.6);
//! let events = controller.scan_frame(SimTime::ZERO, &[contact], &mut rng);
//! assert_eq!(events.len(), 1);
//! assert!(events[0].pos.distance_to(contact.center) < 1.0);
//! ```

pub mod contact;
pub mod controller;
pub mod detect;
pub mod event;
pub mod panel;
pub mod scan;

pub use contact::Contact;
pub use controller::TouchController;
pub use event::TouchEvent;
pub use panel::PanelSpec;
