//! The touchscreen controller.
//!
//! Ties the scan and detection stages together at the panel frame rate and
//! maintains touch identity across frames (so speed can be estimated and
//! Down/Move/Up phases emitted). In the FLock architecture (Fig. 5) this is
//! the "Touchscreen Controller" block; its output feeds the fingerprint
//! controller.

use btd_sim::geom::MmPoint;
use btd_sim::rng::SimRng;
use btd_sim::time::SimTime;

use crate::contact::Contact;
use crate::detect::detect_touches;
use crate::event::{TouchEvent, TouchPhase};
use crate::panel::PanelSpec;
use crate::scan::scan;

/// Maximum distance a touch can move between frames and keep its identity.
const TRACK_RADIUS_MM: f64 = 15.0;

#[derive(Clone, Copy, Debug)]
struct ActiveTouch {
    id: u64,
    pos: MmPoint,
    at: SimTime,
}

/// The touchscreen controller.
///
/// # Example
///
/// ```
/// use btd_touch::contact::Contact;
/// use btd_touch::controller::TouchController;
/// use btd_touch::event::TouchPhase;
/// use btd_touch::panel::PanelSpec;
/// use btd_sim::geom::MmPoint;
/// use btd_sim::rng::SimRng;
/// use btd_sim::time::SimTime;
///
/// let mut tc = TouchController::new(PanelSpec::smartphone());
/// let mut rng = SimRng::seed_from(1);
/// let c = Contact::new(MmPoint::new(20.0, 40.0), 4.0, 0.5);
/// let down = tc.scan_frame(SimTime::ZERO, &[c], &mut rng);
/// assert_eq!(down[0].phase, TouchPhase::Down);
/// ```
#[derive(Debug)]
pub struct TouchController {
    panel: PanelSpec,
    active: Vec<ActiveTouch>,
    next_id: u64,
}

impl TouchController {
    /// Creates a controller for `panel`.
    pub fn new(panel: PanelSpec) -> Self {
        TouchController {
            panel,
            active: Vec::new(),
            next_id: 1,
        }
    }

    /// The panel this controller drives.
    pub fn panel(&self) -> &PanelSpec {
        &self.panel
    }

    /// Scans one frame at time `now` with the given physical contacts and
    /// returns the touch events the frame produces. Detection results are
    /// available one frame time after `now` (the paper's 4 ms); event
    /// timestamps reflect that.
    pub fn scan_frame(
        &mut self,
        now: SimTime,
        contacts: &[Contact],
        rng: &mut SimRng,
    ) -> Vec<TouchEvent> {
        let report_at = now + self.panel.frame_time;
        let frame = scan(&self.panel, contacts, rng);
        let detections = detect_touches(&self.panel, &frame);

        let mut events = Vec::new();
        let mut matched_active = vec![false; self.active.len()];
        let mut next_active: Vec<ActiveTouch> = Vec::new();

        // Amplitude → pressure: invert the nominal coupling of a 4 mm/0.5
        // pressure touch.
        let nominal = Contact::new(MmPoint::new(1.0, 1.0), 4.0, 0.5).coupling();

        for det in &detections {
            // Track: nearest unmatched active touch within the radius.
            let mut best: Option<(usize, f64)> = None;
            for (i, a) in self.active.iter().enumerate() {
                if matched_active[i] {
                    continue;
                }
                let d = a.pos.distance_to(det.pos);
                if d < TRACK_RADIUS_MM && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            let pressure = (0.5 * det.amplitude / nominal).clamp(0.0, 1.0);
            match best {
                Some((i, dist)) => {
                    matched_active[i] = true;
                    let dt = report_at
                        .saturating_duration_since(self.active[i].at)
                        .as_secs_f64();
                    let speed = if dt > 0.0 { dist / dt } else { 0.0 };
                    let id = self.active[i].id;
                    events.push(TouchEvent {
                        id,
                        pos: det.pos,
                        at: report_at,
                        phase: TouchPhase::Move,
                        pressure,
                        speed_mm_s: speed,
                    });
                    next_active.push(ActiveTouch {
                        id,
                        pos: det.pos,
                        at: report_at,
                    });
                }
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    events.push(TouchEvent {
                        id,
                        pos: det.pos,
                        at: report_at,
                        phase: TouchPhase::Down,
                        pressure,
                        speed_mm_s: 0.0,
                    });
                    next_active.push(ActiveTouch {
                        id,
                        pos: det.pos,
                        at: report_at,
                    });
                }
            }
        }

        // Unmatched previously-active touches have lifted.
        for (i, a) in self.active.iter().enumerate() {
            if !matched_active[i] {
                events.push(TouchEvent {
                    id: a.id,
                    pos: a.pos,
                    at: report_at,
                    phase: TouchPhase::Up,
                    pressure: 0.0,
                    speed_mm_s: 0.0,
                });
            }
        }

        self.active = next_active;
        events
    }

    /// Number of touches currently tracked.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_sim::time::SimDuration;

    fn c(x: f64, y: f64) -> Contact {
        Contact::new(MmPoint::new(x, y), 4.0, 0.6)
    }

    #[test]
    fn down_move_up_lifecycle() {
        let mut tc = TouchController::new(PanelSpec::smartphone());
        let mut rng = SimRng::seed_from(1);
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(4);
        let t2 = t1 + SimDuration::from_millis(4);

        let down = tc.scan_frame(t0, &[c(20.0, 40.0)], &mut rng);
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].phase, TouchPhase::Down);
        assert_eq!(tc.active_count(), 1);

        let moved = tc.scan_frame(t1, &[c(22.0, 40.0)], &mut rng);
        assert_eq!(moved[0].phase, TouchPhase::Move);
        assert_eq!(moved[0].id, down[0].id);
        assert!(moved[0].speed_mm_s > 0.0);

        let up = tc.scan_frame(t2, &[], &mut rng);
        assert_eq!(up[0].phase, TouchPhase::Up);
        assert_eq!(up[0].id, down[0].id);
        assert_eq!(tc.active_count(), 0);
    }

    #[test]
    fn events_are_stamped_one_frame_later() {
        let mut tc = TouchController::new(PanelSpec::smartphone());
        let mut rng = SimRng::seed_from(2);
        let events = tc.scan_frame(SimTime::ZERO, &[c(20.0, 40.0)], &mut rng);
        assert_eq!(events[0].at, SimTime::ZERO + SimDuration::from_millis(4));
    }

    #[test]
    fn speed_estimate_tracks_motion() {
        let mut tc = TouchController::new(PanelSpec::smartphone());
        let mut rng = SimRng::seed_from(3);
        let mut now = SimTime::ZERO;
        tc.scan_frame(now, &[c(10.0, 40.0)], &mut rng);
        // Move 2mm per 4ms frame = 500 mm/s nominal.
        let mut speeds = Vec::new();
        for i in 1..=5 {
            now += SimDuration::from_millis(4);
            let ev = tc.scan_frame(now, &[c(10.0 + 2.0 * i as f64, 40.0)], &mut rng);
            speeds.push(ev[0].speed_mm_s);
        }
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        assert!((200.0..900.0).contains(&mean), "mean speed {mean}");
    }

    #[test]
    fn distinct_touches_get_distinct_ids() {
        let mut tc = TouchController::new(PanelSpec::smartphone());
        let mut rng = SimRng::seed_from(4);
        let events = tc.scan_frame(
            SimTime::ZERO,
            &[
                Contact::new(MmPoint::new(10.0, 20.0), 4.0, 0.9),
                Contact::new(MmPoint::new(40.0, 75.0), 4.0, 0.4),
            ],
            &mut rng,
        );
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].id, events[1].id);
    }

    #[test]
    fn new_touch_after_lift_gets_new_id() {
        let mut tc = TouchController::new(PanelSpec::smartphone());
        let mut rng = SimRng::seed_from(5);
        let mut now = SimTime::ZERO;
        let first = tc.scan_frame(now, &[c(20.0, 40.0)], &mut rng);
        now += SimDuration::from_millis(4);
        tc.scan_frame(now, &[], &mut rng);
        now += SimDuration::from_millis(4);
        let second = tc.scan_frame(now, &[c(20.0, 40.0)], &mut rng);
        assert_ne!(first[0].id, second[0].id);
        assert_eq!(second[0].phase, TouchPhase::Down);
    }
}
