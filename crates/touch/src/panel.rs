//! Touch panel geometry and timing.
//!
//! A projected-capacitive panel is described by its active area and the
//! pitch of the ITO electrode grid. The paper quotes a "typical response
//! time of a capacitive touch panel \[of\] 4 ms"; [`PanelSpec::frame_time`]
//! carries that number into the capture-latency experiments.

use btd_sim::geom::{MmPoint, MmRect, MmSize};
use btd_sim::time::SimDuration;

/// Static description of a capacitive touch panel.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PanelSpec {
    /// Active area size, millimetres.
    pub size: MmSize,
    /// ITO electrode pitch, millimetres (same for rows and columns).
    pub electrode_pitch_mm: f64,
    /// Full-panel scan (frame) time.
    pub frame_time: SimDuration,
}

impl PanelSpec {
    /// A 2012-era smartphone panel: 3.7-inch class, 52 × 94 mm active
    /// area, 5 mm electrode pitch, 4 ms frame (the paper's number).
    pub fn smartphone() -> Self {
        PanelSpec {
            size: MmSize::new(52.0, 94.0),
            electrode_pitch_mm: 5.0,
            frame_time: SimDuration::from_millis(4),
        }
    }

    /// A tablet-class panel (for the scaling ablation).
    pub fn tablet() -> Self {
        PanelSpec {
            size: MmSize::new(150.0, 200.0),
            electrode_pitch_mm: 5.5,
            frame_time: SimDuration::from_millis(6),
        }
    }

    /// Creates a custom panel.
    ///
    /// # Panics
    ///
    /// Panics if the pitch is not positive or exceeds either panel
    /// dimension.
    pub fn new(size: MmSize, electrode_pitch_mm: f64, frame_time: SimDuration) -> Self {
        assert!(
            electrode_pitch_mm > 0.0
                && electrode_pitch_mm <= size.w
                && electrode_pitch_mm <= size.h,
            "electrode pitch must be positive and fit the panel"
        );
        PanelSpec {
            size,
            electrode_pitch_mm,
            frame_time,
        }
    }

    /// Number of column electrodes (sensing X positions).
    pub fn columns(&self) -> usize {
        (self.size.w / self.electrode_pitch_mm).floor() as usize
    }

    /// Number of row electrodes (sensing Y positions).
    pub fn rows(&self) -> usize {
        (self.size.h / self.electrode_pitch_mm).floor() as usize
    }

    /// The panel's active area as a rectangle with origin (0, 0).
    pub fn bounds(&self) -> MmRect {
        MmRect::new(MmPoint::new(0.0, 0.0), self.size)
    }

    /// X position (mm) of column electrode `i`'s centreline.
    pub fn column_x(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.electrode_pitch_mm
    }

    /// Y position (mm) of row electrode `i`'s centreline.
    pub fn row_y(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.electrode_pitch_mm
    }

    /// Whether `p` lies on the active area.
    pub fn contains(&self, p: MmPoint) -> bool {
        self.bounds().contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smartphone_dimensions() {
        let p = PanelSpec::smartphone();
        assert_eq!(p.columns(), 10);
        assert_eq!(p.rows(), 18);
        assert_eq!(p.frame_time, SimDuration::from_millis(4));
    }

    #[test]
    fn electrode_positions_are_centred() {
        let p = PanelSpec::smartphone();
        assert_eq!(p.column_x(0), 2.5);
        assert_eq!(p.row_y(1), 7.5);
    }

    #[test]
    fn bounds_contains_interior() {
        let p = PanelSpec::smartphone();
        assert!(p.contains(MmPoint::new(26.0, 47.0)));
        assert!(!p.contains(MmPoint::new(-1.0, 47.0)));
        assert!(!p.contains(MmPoint::new(26.0, 95.0)));
    }

    #[test]
    #[should_panic(expected = "pitch")]
    fn degenerate_pitch_rejected() {
        let _ = PanelSpec::new(MmSize::new(50.0, 90.0), 0.0, SimDuration::from_millis(4));
    }

    #[test]
    fn tablet_is_larger() {
        assert!(PanelSpec::tablet().rows() > PanelSpec::smartphone().rows());
    }
}
