//! Touch-point detection from scan profiles.
//!
//! "The touch points are determined by combining the row and column sensing
//! results" (paper §II-B). With self-capacitance profiles, two simultaneous
//! touches yield 2×2 candidate intersections — the classic *ghost point*
//! problem — which this module resolves by amplitude matching: a real touch
//! contributes the same coupling to its row and its column, so the peak
//! pairing that best balances amplitudes is the physical one.

use btd_sim::geom::MmPoint;

use crate::panel::PanelSpec;
use crate::scan::ScanFrame;

/// A detected peak on one axis.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AxisPeak {
    /// Interpolated position along the axis, millimetres.
    pub pos_mm: f64,
    /// Peak amplitude.
    pub amplitude: f64,
}

/// A resolved touch point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DetectedTouch {
    /// Panel position, millimetres.
    pub pos: MmPoint,
    /// Combined amplitude (mean of the row and column peaks).
    pub amplitude: f64,
}

/// Detection threshold as a fraction of the frame's strongest peak.
const RELATIVE_THRESHOLD: f64 = 0.35;
/// Absolute floor below which a frame is considered empty.
const ABSOLUTE_FLOOR: f64 = 0.5;

/// Finds peaks along one profile with parabolic sub-electrode
/// interpolation.
pub fn find_peaks(profile: &[f64], pitch_mm: f64, offset_mm: f64) -> Vec<AxisPeak> {
    let max = profile.iter().copied().fold(0.0, f64::max);
    if max < ABSOLUTE_FLOOR {
        return Vec::new();
    }
    let threshold = (max * RELATIVE_THRESHOLD).max(ABSOLUTE_FLOOR);
    let mut peaks = Vec::new();
    for i in 0..profile.len() {
        let v = profile[i];
        if v < threshold {
            continue;
        }
        let left = if i > 0 { profile[i - 1] } else { 0.0 };
        let right = if i + 1 < profile.len() {
            profile[i + 1]
        } else {
            0.0
        };
        if v < left || v <= right {
            continue; // not a local maximum (ties break rightward)
        }
        // Parabolic interpolation around the peak electrode.
        let denom = left - 2.0 * v + right;
        let delta = if denom.abs() < 1e-12 {
            0.0
        } else {
            (0.5 * (left - right) / denom).clamp(-0.5, 0.5)
        };
        peaks.push(AxisPeak {
            pos_mm: offset_mm + (i as f64 + 0.5 + delta) * pitch_mm,
            amplitude: v,
        });
    }
    peaks
}

/// Combines row and column peaks into touch points, resolving ghosts by
/// amplitude matching.
pub fn detect_touches(panel: &PanelSpec, frame: &ScanFrame) -> Vec<DetectedTouch> {
    let col_peaks = find_peaks(&frame.columns, panel.electrode_pitch_mm, 0.0);
    let row_peaks = find_peaks(&frame.rows, panel.electrode_pitch_mm, 0.0);
    if col_peaks.is_empty() || row_peaks.is_empty() {
        return Vec::new();
    }

    // Greedy amplitude matching: repeatedly pair the column/row peaks whose
    // amplitudes are closest. A physical touch couples equally into both
    // layers, so ghost pairings (strong column with weak row) sort last.
    let mut col_used = vec![false; col_peaks.len()];
    let mut row_used = vec![false; row_peaks.len()];
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (ci, c) in col_peaks.iter().enumerate() {
        for (ri, r) in row_peaks.iter().enumerate() {
            let mismatch =
                (c.amplitude - r.amplitude).abs() / c.amplitude.max(r.amplitude).max(1e-9);
            pairs.push((mismatch, ci, ri));
        }
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite mismatch"));

    let mut touches = Vec::new();
    for (_, ci, ri) in pairs {
        if col_used[ci] || row_used[ri] {
            continue;
        }
        col_used[ci] = true;
        row_used[ri] = true;
        touches.push(DetectedTouch {
            pos: MmPoint::new(col_peaks[ci].pos_mm, row_peaks[ri].pos_mm),
            amplitude: (col_peaks[ci].amplitude + row_peaks[ri].amplitude) / 2.0,
        });
    }
    touches
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::contact::Contact;
    use crate::scan::scan;
    use btd_sim::rng::SimRng;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any single firm touch well inside the panel is detected exactly
        /// once, within 1.5 mm of ground truth.
        #[test]
        fn single_touch_detected_accurately(
            x in 8.0f64..44.0,
            y in 8.0f64..86.0,
            radius in 3.0f64..5.5,
            pressure in 0.35f64..0.9,
            seed in 0u64..1_000,
        ) {
            let panel = PanelSpec::smartphone();
            let mut rng = SimRng::seed_from(seed);
            let contact = Contact::new(MmPoint::new(x, y), radius, pressure);
            let frame = scan(&panel, &[contact], &mut rng);
            let touches = detect_touches(&panel, &frame);
            prop_assert_eq!(touches.len(), 1);
            let err = touches[0].pos.distance_to(contact.center);
            prop_assert!(err < 1.5, "error {}mm at ({}, {})", err, x, y);
        }

        /// Peak finding never reports more peaks than local maxima exist.
        #[test]
        fn peaks_are_bounded_by_profile_size(profile in proptest::collection::vec(0.0f64..10.0, 1..30)) {
            let peaks = find_peaks(&profile, 5.0, 0.0);
            prop_assert!(peaks.len() <= profile.len().div_ceil(2));
            for p in &peaks {
                prop_assert!(p.amplitude > 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::Contact;
    use crate::scan::scan;
    use btd_sim::rng::SimRng;

    #[test]
    fn finds_single_interpolated_peak() {
        // A peak between electrodes 3 and 4, closer to 3.
        let profile = vec![0.0, 0.0, 2.0, 9.0, 7.0, 1.0, 0.0];
        let peaks = find_peaks(&profile, 5.0, 0.0);
        assert_eq!(peaks.len(), 1);
        // Electrode 3 centre is at 17.5mm; interpolation pulls toward 4.
        assert!(peaks[0].pos_mm > 17.5 && peaks[0].pos_mm < 20.0);
    }

    #[test]
    fn ignores_noise_floor() {
        let profile = vec![0.01, 0.02, 0.015, 0.01];
        assert!(find_peaks(&profile, 5.0, 0.0).is_empty());
    }

    #[test]
    fn detects_two_distinct_peaks() {
        let profile = vec![0.0, 8.0, 1.0, 0.5, 7.0, 0.0];
        let peaks = find_peaks(&profile, 5.0, 0.0);
        assert_eq!(peaks.len(), 2);
    }

    #[test]
    fn single_touch_position_accuracy() {
        let panel = PanelSpec::smartphone();
        let mut rng = SimRng::seed_from(1);
        for (x, y) in [(26.0, 47.0), (10.5, 80.0), (40.0, 12.0)] {
            let c = Contact::new(MmPoint::new(x, y), 4.0, 0.6);
            let frame = scan(&panel, &[c], &mut rng);
            let touches = detect_touches(&panel, &frame);
            assert_eq!(touches.len(), 1, "at ({x},{y})");
            let err = touches[0].pos.distance_to(c.center);
            assert!(err < 1.0, "error {err:.2}mm at ({x},{y})");
        }
    }

    #[test]
    fn two_touch_ghost_disambiguation() {
        let panel = PanelSpec::smartphone();
        let mut rng = SimRng::seed_from(2);
        // Different pressures make the real pairing identifiable.
        let a = Contact::new(MmPoint::new(12.0, 20.0), 4.0, 0.9);
        let b = Contact::new(MmPoint::new(40.0, 75.0), 4.0, 0.45);
        let frame = scan(&panel, &[a, b], &mut rng);
        let touches = detect_touches(&panel, &frame);
        assert_eq!(touches.len(), 2);
        for real in [a.center, b.center] {
            assert!(
                touches.iter().any(|t| t.pos.distance_to(real) < 2.5),
                "missing touch near {real}"
            );
        }
        // Neither detection should sit on a ghost intersection.
        for ghost in [MmPoint::new(12.0, 75.0), MmPoint::new(40.0, 20.0)] {
            assert!(
                touches.iter().all(|t| t.pos.distance_to(ghost) > 2.5),
                "ghost point detected near {ghost}"
            );
        }
    }

    #[test]
    fn empty_frame_detects_nothing() {
        let panel = PanelSpec::smartphone();
        let mut rng = SimRng::seed_from(3);
        let frame = scan(&panel, &[], &mut rng);
        assert!(detect_touches(&panel, &frame).is_empty());
    }
}
