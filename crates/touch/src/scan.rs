//! The parallel row/column capacitance scan.
//!
//! Figure 1 of the paper: "The separation of the top and bottom ITO layers
//! supports parallel sensing on both X and Y directions." A scan therefore
//! produces two 1-D profiles — per-column and per-row capacitance deltas —
//! in a single frame time, rather than a 2-D mutual-capacitance image.

use btd_sim::rng::SimRng;

use crate::contact::Contact;
use crate::panel::PanelSpec;

/// The two electrode profiles produced by one scan frame.
#[derive(Clone, PartialEq, Debug)]
pub struct ScanFrame {
    /// Per-column capacitance delta (senses X positions).
    pub columns: Vec<f64>,
    /// Per-row capacitance delta (senses Y positions).
    pub rows: Vec<f64>,
}

/// Sensing noise level as a fraction of a nominal single-touch amplitude.
pub const NOISE_FRACTION: f64 = 0.015;

/// Nominal amplitude of a medium touch, used to scale noise.
fn nominal_amplitude() -> f64 {
    Contact::new(btd_sim::geom::MmPoint::new(0.0, 0.0), 4.0, 0.5).coupling()
}

/// Scans the panel under the given physical contacts.
///
/// Contacts outside the active area contribute nothing (their coupling is
/// clipped by the glass edge).
pub fn scan(panel: &PanelSpec, contacts: &[Contact], rng: &mut SimRng) -> ScanFrame {
    let noise = NOISE_FRACTION * nominal_amplitude();
    let mut columns = vec![0.0; panel.columns()];
    let mut rows = vec![0.0; panel.rows()];

    for contact in contacts {
        if !panel.contains(contact.center) {
            continue;
        }
        for (i, col) in columns.iter_mut().enumerate() {
            let d = (contact.center.x - panel.column_x(i)).abs();
            *col += contact.profile_at(d);
        }
        for (i, row) in rows.iter_mut().enumerate() {
            let d = (contact.center.y - panel.row_y(i)).abs();
            *row += contact.profile_at(d);
        }
    }

    for v in columns.iter_mut().chain(rows.iter_mut()) {
        *v += rng.gaussian_with(0.0, noise);
        *v = v.max(0.0);
    }

    ScanFrame { columns, rows }
}

impl ScanFrame {
    /// The strongest column reading.
    pub fn peak_column(&self) -> f64 {
        self.columns.iter().copied().fold(0.0, f64::max)
    }

    /// The strongest row reading.
    pub fn peak_row(&self) -> f64 {
        self.rows.iter().copied().fold(0.0, f64::max)
    }

    /// Whether any electrode reads above `threshold`.
    pub fn any_above(&self, threshold: f64) -> bool {
        self.peak_column() > threshold && self.peak_row() > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_sim::geom::MmPoint;

    fn mid_contact() -> Contact {
        Contact::new(MmPoint::new(26.0, 47.0), 4.0, 0.6)
    }

    #[test]
    fn single_touch_peaks_near_contact() {
        let panel = PanelSpec::smartphone();
        let mut rng = SimRng::seed_from(1);
        let frame = scan(&panel, &[mid_contact()], &mut rng);
        let best_col = frame
            .columns
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let best_row = frame
            .rows
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((panel.column_x(best_col) - 26.0).abs() <= panel.electrode_pitch_mm);
        assert!((panel.row_y(best_row) - 47.0).abs() <= panel.electrode_pitch_mm);
    }

    #[test]
    fn empty_panel_reads_only_noise() {
        let panel = PanelSpec::smartphone();
        let mut rng = SimRng::seed_from(2);
        let frame = scan(&panel, &[], &mut rng);
        let nominal = super::nominal_amplitude();
        assert!(frame.peak_column() < 0.1 * nominal);
        assert!(frame.peak_row() < 0.1 * nominal);
        assert!(!frame.any_above(0.1 * nominal));
    }

    #[test]
    fn off_panel_contact_ignored() {
        let panel = PanelSpec::smartphone();
        let mut rng = SimRng::seed_from(3);
        let off = Contact::new(MmPoint::new(-20.0, 47.0), 4.0, 0.9);
        let frame = scan(&panel, &[off], &mut rng);
        assert!(frame.peak_column() < 0.1 * super::nominal_amplitude());
    }

    #[test]
    fn two_touches_produce_two_column_peaks() {
        let panel = PanelSpec::smartphone();
        let mut rng = SimRng::seed_from(4);
        let a = Contact::new(MmPoint::new(10.0, 20.0), 4.0, 0.6);
        let b = Contact::new(MmPoint::new(42.0, 80.0), 4.0, 0.6);
        let frame = scan(&panel, &[a, b], &mut rng);
        // Columns near x=10 and x=42 should both be strong; middle weak.
        let strong_left = frame.columns[1].max(frame.columns[2]);
        let strong_right = frame.columns[7].max(frame.columns[8]);
        let weak_mid = frame.columns[5];
        assert!(strong_left > 3.0 * weak_mid);
        assert!(strong_right > 3.0 * weak_mid);
    }

    #[test]
    fn pressure_raises_amplitude() {
        let panel = PanelSpec::smartphone();
        let mut rng = SimRng::seed_from(5);
        let soft = Contact::new(MmPoint::new(26.0, 47.0), 4.0, 0.2);
        let hard = Contact::new(MmPoint::new(26.0, 47.0), 4.0, 0.9);
        let f_soft = scan(&panel, &[soft], &mut rng);
        let f_hard = scan(&panel, &[hard], &mut rng);
        assert!(f_hard.peak_column() > 2.0 * f_soft.peak_column());
    }
}
