//! Physical finger contacts on the panel.
//!
//! A [`Contact`] is the ground-truth physical state the scan observes: the
//! workload generator (`btd-workload`) produces sequences of contacts, and
//! the capacitance model in [`crate::scan`] converts them into electrode
//! readings.

use btd_sim::geom::MmPoint;

/// One finger touching the panel.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Contact {
    /// Contact patch centre on the panel, millimetres.
    pub center: MmPoint,
    /// Effective contact patch radius, millimetres (typically 3–6 mm).
    pub radius_mm: f64,
    /// Normalized pressure in `[0, 1]`; scales capacitive coupling.
    pub pressure: f64,
}

impl Contact {
    /// Creates a contact.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not positive or pressure is outside `[0, 1]`.
    pub fn new(center: MmPoint, radius_mm: f64, pressure: f64) -> Self {
        assert!(
            radius_mm.is_finite() && radius_mm > 0.0,
            "contact radius must be positive"
        );
        assert!((0.0..=1.0).contains(&pressure), "pressure must be in [0,1]");
        Contact {
            center,
            radius_mm,
            pressure,
        }
    }

    /// Capacitive coupling amplitude of this contact (arbitrary units,
    /// proportional to pressure and contact area).
    pub fn coupling(&self) -> f64 {
        // Area grows quadratically with radius; pressure flattens the
        // fingertip, increasing true contact area roughly linearly.
        self.pressure * self.radius_mm * self.radius_mm
    }

    /// Capacitance contribution at lateral distance `d` mm from the centre
    /// (Gaussian fall-off with the patch radius as scale).
    pub fn profile_at(&self, d: f64) -> f64 {
        self.coupling() * (-0.5 * (d / self.radius_mm).powi(2)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_scales_with_pressure_and_size() {
        let light = Contact::new(MmPoint::new(0.0, 0.0), 4.0, 0.2);
        let heavy = Contact::new(MmPoint::new(0.0, 0.0), 4.0, 0.8);
        let big = Contact::new(MmPoint::new(0.0, 0.0), 6.0, 0.2);
        assert!(heavy.coupling() > light.coupling());
        assert!(big.coupling() > light.coupling());
    }

    #[test]
    fn profile_peaks_at_center_and_decays() {
        let c = Contact::new(MmPoint::new(0.0, 0.0), 4.0, 0.5);
        let at0 = c.profile_at(0.0);
        let at4 = c.profile_at(4.0);
        let at12 = c.profile_at(12.0);
        assert!(at0 > at4);
        assert!(at4 > at12);
        assert!(at12 < 0.02 * at0);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_rejected() {
        let _ = Contact::new(MmPoint::new(0.0, 0.0), 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "pressure")]
    fn bad_pressure_rejected() {
        let _ = Contact::new(MmPoint::new(0.0, 0.0), 4.0, 1.5);
    }
}
