//! A dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of criterion's API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Measurement
//! is a plain wall-clock mean over `sample_size` timed batches — good
//! enough for the relative comparisons the experiment binaries print, with
//! none of criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
        }
    }
}

/// A named benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        routine(&mut b);
        println!("{}/{}: {:>12.3?} per iter", self.name, id.id, b.mean);
        self
    }

    /// Runs one benchmark routine with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Measures `f`, storing the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call keeps lazy setup out of the measurement.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_mean_for_real_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut total = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                total = (0..1000u64).sum();
                total
            })
        });
        group.finish();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn benchmark_ids_format_function_and_parameter() {
        let id = BenchmarkId::new("capture", 42);
        assert_eq!(id.id, "capture/42");
    }
}
