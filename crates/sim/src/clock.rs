//! Digital clock-domain modelling.
//!
//! The TFT readout architecture in the paper (Figure 4, Table II) is driven
//! by an explicit pixel clock — e.g. 4 MHz for the sensor of Lee et al. and
//! 250–500 kHz for the poly-Si TFT prototypes. [`ClockDomain`] converts
//! between cycle counts and [`SimDuration`] so the readout simulation can be
//! written in cycles and reported in wall-clock terms.

use crate::time::SimDuration;

/// A fixed-frequency clock domain.
///
/// # Example
///
/// ```
/// use btd_sim::clock::ClockDomain;
///
/// let pixel_clock = ClockDomain::from_hz(4_000_000.0); // 4 MHz (Table II row 1)
/// assert_eq!(pixel_clock.cycles_to_duration(4_000).as_millis(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ClockDomain {
    freq_hz: f64,
}

impl ClockDomain {
    /// Creates a clock domain at `freq_hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not strictly positive and finite.
    pub fn from_hz(freq_hz: f64) -> Self {
        assert!(
            freq_hz.is_finite() && freq_hz > 0.0,
            "clock frequency must be positive and finite"
        );
        ClockDomain { freq_hz }
    }

    /// Creates a clock domain at `mhz` megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        ClockDomain::from_hz(mhz * 1e6)
    }

    /// Creates a clock domain at `khz` kilohertz.
    pub fn from_khz(khz: f64) -> Self {
        ClockDomain::from_hz(khz * 1e3)
    }

    /// The frequency in hertz.
    pub fn freq_hz(self) -> f64 {
        self.freq_hz
    }

    /// The period of one cycle.
    pub fn period(self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.freq_hz)
    }

    /// The duration of `cycles` clock cycles.
    pub fn cycles_to_duration(self, cycles: u64) -> SimDuration {
        SimDuration::from_secs_f64(cycles as f64 / self.freq_hz)
    }

    /// How many full cycles fit in `d` (truncating).
    pub fn duration_to_cycles(self, d: SimDuration) -> u64 {
        (d.as_secs_f64() * self.freq_hz).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_matches_frequency() {
        let clk = ClockDomain::from_mhz(1.0);
        assert_eq!(clk.period(), SimDuration::from_micros(1));
    }

    #[test]
    fn khz_constructor() {
        let clk = ClockDomain::from_khz(250.0); // Table II, Hara et al.
        assert_eq!(clk.period(), SimDuration::from_micros(4));
    }

    #[test]
    fn cycles_roundtrip_through_duration() {
        let clk = ClockDomain::from_mhz(4.0);
        let d = clk.cycles_to_duration(1_000);
        assert_eq!(clk.duration_to_cycles(d), 1_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::from_hz(0.0);
    }
}
