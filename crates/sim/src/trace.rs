//! Structured trace recording for experiment harnesses.
//!
//! Every experiment binary in `btd-bench` prints table rows; during a run
//! the underlying simulations emit [`TraceEvent`]s into a [`TraceLog`] so
//! tests can assert on *what happened* (e.g. "the server rejected exactly
//! the replayed messages") rather than scraping formatted output.

use std::fmt;

use crate::time::SimTime;

/// Severity of a trace event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Routine progress (touch captured, message delivered).
    Info,
    /// Unusual but handled (low-quality capture discarded).
    Warn,
    /// A security-relevant rejection (MAC failure, replay detected).
    Security,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Security => "SEC ",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// When the event occurred on the simulated timeline.
    pub at: SimTime,
    /// Which component emitted it (e.g. `"flock.fp_controller"`).
    pub component: String,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {}] {}: {}",
            self.at, self.severity, self.component, self.message
        )
    }
}

/// An append-only log of [`TraceEvent`]s.
///
/// # Example
///
/// ```
/// use btd_sim::trace::{Severity, TraceLog};
/// use btd_sim::time::SimTime;
///
/// let mut log = TraceLog::new();
/// log.security(SimTime::ZERO, "server", "replayed nonce rejected");
/// assert_eq!(log.count_severity(Severity::Security), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends an event.
    pub fn push(
        &mut self,
        at: SimTime,
        component: &str,
        severity: Severity,
        message: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            at,
            component: component.to_owned(),
            severity,
            message: message.into(),
        });
    }

    /// Appends an [`Severity::Info`] event.
    pub fn info(&mut self, at: SimTime, component: &str, message: impl Into<String>) {
        self.push(at, component, Severity::Info, message);
    }

    /// Appends a [`Severity::Warn`] event.
    pub fn warn(&mut self, at: SimTime, component: &str, message: impl Into<String>) {
        self.push(at, component, Severity::Warn, message);
    }

    /// Appends a [`Severity::Security`] event.
    pub fn security(&mut self, at: SimTime, component: &str, message: impl Into<String>) {
        self.push(at, component, Severity::Security, message);
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events carry the given severity.
    pub fn count_severity(&self, severity: Severity) -> usize {
        self.events
            .iter()
            .filter(|e| e.severity == severity)
            .count()
    }

    /// Events whose message contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.message.contains(needle))
    }

    /// Appends all events from `other`.
    pub fn absorb(&mut self, other: &TraceLog) {
        self.events.extend(other.events.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut log = TraceLog::new();
        log.info(SimTime::ZERO, "a", "hello");
        log.warn(SimTime::from_nanos(5), "b", "low quality capture");
        log.security(SimTime::from_nanos(9), "c", "mac mismatch");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_severity(Severity::Info), 1);
        assert_eq!(log.count_severity(Severity::Security), 1);
        assert_eq!(log.matching("quality").count(), 1);
    }

    #[test]
    fn absorb_concatenates() {
        let mut a = TraceLog::new();
        a.info(SimTime::ZERO, "x", "1");
        let mut b = TraceLog::new();
        b.info(SimTime::ZERO, "y", "2");
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn display_formats_event() {
        let e = TraceEvent {
            at: SimTime::from_nanos(1_000),
            component: "srv".into(),
            severity: Severity::Security,
            message: "bad".into(),
        };
        let s = e.to_string();
        assert!(s.contains("srv"));
        assert!(s.contains("bad"));
    }
}
