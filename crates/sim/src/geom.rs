//! Millimetre-denominated 2-D geometry.
//!
//! The touchscreen, the TFT fingerprint sensors, and the placement optimizer
//! all reason about physical positions on the panel. Using millimetre units
//! throughout (rather than pixels) matches how the paper sizes hardware
//! (sensor cell pitch in micrometres, panel size in millimetres) and avoids
//! resolution-dependent conversions leaking into the protocol layers.

use std::fmt;

/// A point on the panel, in millimetres from the top-left corner.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MmPoint {
    /// Horizontal offset from the left edge, millimetres.
    pub x: f64,
    /// Vertical offset from the top edge, millimetres.
    pub y: f64,
}

/// A size in millimetres.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MmSize {
    /// Width in millimetres.
    pub w: f64,
    /// Height in millimetres.
    pub h: f64,
}

/// An axis-aligned rectangle on the panel, in millimetres.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MmRect {
    /// Top-left corner.
    pub origin: MmPoint,
    /// Extent.
    pub size: MmSize,
}

impl MmPoint {
    /// Creates a point at `(x, y)` millimetres.
    pub const fn new(x: f64, y: f64) -> Self {
        MmPoint { x, y }
    }

    /// Euclidean distance to `other`, in millimetres.
    pub fn distance_to(self, other: MmPoint) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Component-wise translation.
    pub fn offset(self, dx: f64, dy: f64) -> MmPoint {
        MmPoint::new(self.x + dx, self.y + dy)
    }
}

impl MmSize {
    /// Creates a size of `w × h` millimetres.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is negative or not finite.
    pub fn new(w: f64, h: f64) -> Self {
        assert!(
            w.is_finite() && h.is_finite() && w >= 0.0 && h >= 0.0,
            "size dimensions must be finite and non-negative"
        );
        MmSize { w, h }
    }

    /// Area in square millimetres.
    pub fn area(self) -> f64 {
        self.w * self.h
    }
}

impl MmRect {
    /// Creates a rectangle from its top-left corner and size.
    pub fn new(origin: MmPoint, size: MmSize) -> Self {
        MmRect { origin, size }
    }

    /// Creates a rectangle from edge coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `right < left` or `bottom < top`.
    pub fn from_edges(left: f64, top: f64, right: f64, bottom: f64) -> Self {
        assert!(right >= left && bottom >= top, "degenerate rectangle edges");
        MmRect::new(
            MmPoint::new(left, top),
            MmSize::new(right - left, bottom - top),
        )
    }

    /// Creates a rectangle centred on `center`.
    pub fn centered(center: MmPoint, size: MmSize) -> Self {
        MmRect::new(
            MmPoint::new(center.x - size.w / 2.0, center.y - size.h / 2.0),
            size,
        )
    }

    /// The left edge.
    pub fn left(self) -> f64 {
        self.origin.x
    }

    /// The top edge.
    pub fn top(self) -> f64 {
        self.origin.y
    }

    /// The right edge.
    pub fn right(self) -> f64 {
        self.origin.x + self.size.w
    }

    /// The bottom edge.
    pub fn bottom(self) -> f64 {
        self.origin.y + self.size.h
    }

    /// The centre point.
    pub fn center(self) -> MmPoint {
        MmPoint::new(
            self.origin.x + self.size.w / 2.0,
            self.origin.y + self.size.h / 2.0,
        )
    }

    /// Area in square millimetres.
    pub fn area(self) -> f64 {
        self.size.area()
    }

    /// Whether `p` lies inside (or on the boundary of) this rectangle.
    pub fn contains(self, p: MmPoint) -> bool {
        p.x >= self.left() && p.x <= self.right() && p.y >= self.top() && p.y <= self.bottom()
    }

    /// Whether `other` lies entirely inside this rectangle.
    pub fn contains_rect(self, other: MmRect) -> bool {
        other.left() >= self.left()
            && other.right() <= self.right()
            && other.top() >= self.top()
            && other.bottom() <= self.bottom()
    }

    /// The intersection with `other`, or `None` if they do not overlap.
    pub fn intersect(self, other: MmRect) -> Option<MmRect> {
        let left = self.left().max(other.left());
        let top = self.top().max(other.top());
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if right > left && bottom > top {
            Some(MmRect::from_edges(left, top, right, bottom))
        } else {
            None
        }
    }

    /// Whether this rectangle overlaps `other` with positive area.
    pub fn overlaps(self, other: MmRect) -> bool {
        self.intersect(other).is_some()
    }

    /// Clamps `p` to the closest point inside this rectangle.
    pub fn clamp_point(self, p: MmPoint) -> MmPoint {
        MmPoint::new(
            p.x.clamp(self.left(), self.right()),
            p.y.clamp(self.top(), self.bottom()),
        )
    }

    /// Expands every edge outward by `margin` millimetres (clamped to a
    /// non-negative size when `margin` is negative).
    pub fn inflate(self, margin: f64) -> MmRect {
        let w = (self.size.w + 2.0 * margin).max(0.0);
        let h = (self.size.h + 2.0 * margin).max(0.0);
        MmRect::centered(self.center(), MmSize::new(w, h))
    }
}

impl fmt::Display for MmPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}mm, {:.2}mm)", self.x, self.y)
    }
}

impl fmt::Display for MmRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.2},{:.2} {:.2}x{:.2}mm]",
            self.origin.x, self.origin.y, self.size.w, self.size.h
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = MmPoint::new(0.0, 0.0);
        let b = MmPoint::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rect_contains_boundary_points() {
        let r = MmRect::from_edges(1.0, 2.0, 5.0, 6.0);
        assert!(r.contains(MmPoint::new(1.0, 2.0)));
        assert!(r.contains(MmPoint::new(5.0, 6.0)));
        assert!(!r.contains(MmPoint::new(5.01, 6.0)));
    }

    #[test]
    fn centered_rect_recovers_center() {
        let c = MmPoint::new(10.0, 20.0);
        let r = MmRect::centered(c, MmSize::new(4.0, 6.0));
        assert_eq!(r.center(), c);
        assert_eq!(r.left(), 8.0);
        assert_eq!(r.bottom(), 23.0);
    }

    #[test]
    fn intersection_of_overlapping_rects() {
        let a = MmRect::from_edges(0.0, 0.0, 10.0, 10.0);
        let b = MmRect::from_edges(5.0, 5.0, 15.0, 15.0);
        let i = a.intersect(b).unwrap();
        assert_eq!(i, MmRect::from_edges(5.0, 5.0, 10.0, 10.0));
        assert!((i.area() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn touching_rects_do_not_overlap() {
        let a = MmRect::from_edges(0.0, 0.0, 5.0, 5.0);
        let b = MmRect::from_edges(5.0, 0.0, 10.0, 5.0);
        assert!(!a.overlaps(b));
    }

    #[test]
    fn contains_rect_is_inclusive() {
        let outer = MmRect::from_edges(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_rect(outer));
        assert!(outer.contains_rect(MmRect::from_edges(1.0, 1.0, 9.0, 9.0)));
        assert!(!outer.contains_rect(MmRect::from_edges(1.0, 1.0, 11.0, 9.0)));
    }

    #[test]
    fn clamp_point_projects_outside_points() {
        let r = MmRect::from_edges(0.0, 0.0, 10.0, 10.0);
        assert_eq!(
            r.clamp_point(MmPoint::new(-5.0, 3.0)),
            MmPoint::new(0.0, 3.0)
        );
        assert_eq!(
            r.clamp_point(MmPoint::new(20.0, 30.0)),
            MmPoint::new(10.0, 10.0)
        );
    }

    #[test]
    fn inflate_grows_and_shrinks() {
        let r = MmRect::from_edges(2.0, 2.0, 8.0, 8.0);
        let big = r.inflate(1.0);
        assert_eq!(big, MmRect::from_edges(1.0, 1.0, 9.0, 9.0));
        let tiny = r.inflate(-4.0);
        assert_eq!(tiny.area(), 0.0);
    }
}
