#![warn(missing_docs)]

//! Simulation substrate for the TRUST / FLock reproduction.
//!
//! The paper ("Continuous Remote Mobile Identity Management Using Biometric
//! Integrated Touch-Display", MICRO 2012) describes hardware that was never
//! fabricated. Every other crate in this workspace therefore runs on top of a
//! deterministic simulation substrate provided here:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) with no dependence on the host clock.
//! * [`clock`] — a digital clock model used by the cycle-level readout
//!   simulations ([`clock::ClockDomain`]).
//! * [`rng`] — a small, seedable, splittable PRNG so every experiment is
//!   reproducible from a single seed.
//! * [`geom`] — millimetre-denominated 2-D geometry shared by the
//!   touchscreen, sensor, and placement crates.
//! * [`event`] — a deterministic discrete-event queue.
//! * [`power`] — energy/power bookkeeping for the hardware models.
//! * [`trace`] — a lightweight structured trace recorder used by the
//!   experiment harnesses.
//!
//! # Example
//!
//! ```
//! use btd_sim::time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let t = start + SimDuration::from_millis(4); // a touchscreen frame
//! assert_eq!(t.as_nanos(), 4_000_000);
//! ```

pub mod clock;
pub mod event;
pub mod geom;
pub mod power;
pub mod rng;
pub mod time;
pub mod trace;

pub use geom::{MmPoint, MmRect, MmSize};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
