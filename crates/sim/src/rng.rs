//! Deterministic, splittable random number generation.
//!
//! Every stochastic component in the workspace (finger placement jitter,
//! ridge-pattern synthesis, network adversary scheduling, ...) draws from a
//! [`SimRng`] so a whole experiment replays bit-for-bit from one seed.
//! [`SimRng`] wraps `rand`'s SplitMix64-style state with a few
//! domain-specific helpers (Gaussian sampling, weighted choice).

use std::fmt;

/// A small, fast, seedable PRNG (xoshiro256** core, SplitMix64 seeding).
///
/// `SimRng` intentionally does not implement `rand::RngCore` publicly; the
/// simulation crates use its inherent methods so the dependency surface of
/// their public APIs stays std-only.
///
/// # Example
///
/// ```
/// use btd_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimRng(state: {:#018x}..)", self.s[0])
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator labelled by `stream`.
    ///
    /// Components that need their own randomness (e.g. each simulated user)
    /// should fork a stream rather than share one generator, so adding a
    /// draw in one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free-ish: multiply-shift with retry on the
        // biased band. Bias is negligible for simulation, but we reject to
        // keep property tests honest.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let prod = (x as u128) * (bound as u128);
                ((prod >> 64) as u64, prod as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_f64() * (hi - lo)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A standard-normal sample (Box–Muller).
    pub fn gaussian(&mut self) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights
            .iter()
            .inspect(|&w| {
                assert!(*w >= 0.0, "weights must be non-negative");
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_draw_order() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // Different stream labels give different children.
        let mut parent3 = SimRng::seed_from(99);
        let mut c3 = parent3.fork(6);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed_from(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_hits_every_residue() {
        let mut rng = SimRng::seed_from(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SimRng::seed_from(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = SimRng::seed_from(8);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..5_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SimRng::seed_from(10);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn range_helpers_stay_in_range() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..500 {
            let x = rng.range_i64(-3, 4);
            assert!((-3..=4).contains(&x));
            let y = rng.range_f64(2.5, 3.5);
            assert!((2.5..3.5).contains(&y));
        }
    }
}
