//! A deterministic discrete-event queue.
//!
//! Scenario harnesses in `trust-core` interleave touch events, sensor
//! captures, and protocol messages on one timeline. [`EventQueue`] orders
//! events by time with a stable FIFO tie-break, so simulations never depend
//! on hash ordering or insertion accidents.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant dequeue in insertion order.
///
/// # Example
///
/// ```
/// use btd_sim::event::EventQueue;
/// use btd_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "b");
/// q.schedule(SimTime::from_nanos(10), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event, with
        // the lowest sequence number first among ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains events in time order into a vector (consumes the queue).
    pub fn into_sorted_vec(mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.schedule(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(t(7), "x");
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn collect_and_drain() {
        let q: EventQueue<&str> = vec![(t(2), "b"), (t(1), "a")].into_iter().collect();
        let drained = q.into_sorted_vec();
        assert_eq!(drained, vec![(t(1), "a"), (t(2), "b")]);
    }
}
