//! Energy and power accounting for the hardware models.
//!
//! The paper motivates *opportunistic* sensor activation with power cost:
//! keeping the whole touch-display covered in always-on fingerprint sensors
//! is infeasible, so sensors sit idle and wake only when a touch lands on
//! them. [`EnergyMeter`] accumulates per-component energy so the ablation
//! benches can compare always-on against opportunistic capture.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// Energy in joules (newtype so callers cannot confuse J with W).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Joules(pub f64);

/// Power in watts.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Watts(pub f64);

impl Watts {
    /// Energy spent running at this power for `d`.
    pub fn over(self, d: SimDuration) -> Joules {
        Joules(self.0 * d.as_secs_f64())
    }
}

impl std::ops::Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules(0.0), std::ops::Add::add)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0;
        if j >= 1.0 {
            write!(f, "{:.3}J", j)
        } else if j >= 1e-3 {
            write!(f, "{:.3}mJ", j * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.3}uJ", j * 1e6)
        } else {
            write!(f, "{:.3}nJ", j * 1e9)
        }
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0;
        if w >= 1.0 {
            write!(f, "{:.3}W", w)
        } else if w >= 1e-3 {
            write!(f, "{:.3}mW", w * 1e3)
        } else {
            write!(f, "{:.3}uW", w * 1e6)
        }
    }
}

/// Accumulates energy per named component.
///
/// # Example
///
/// ```
/// use btd_sim::power::{EnergyMeter, Watts};
/// use btd_sim::time::SimDuration;
///
/// let mut meter = EnergyMeter::new();
/// meter.record("sensor", Watts(0.010).over(SimDuration::from_millis(20)));
/// assert!(meter.total().0 > 0.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EnergyMeter {
    by_component: BTreeMap<String, Joules>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Adds `energy` to the bucket for `component`.
    pub fn record(&mut self, component: &str, energy: Joules) {
        *self
            .by_component
            .entry(component.to_owned())
            .or_insert(Joules(0.0)) += energy;
    }

    /// The accumulated energy for `component`, or zero if never recorded.
    pub fn component(&self, component: &str) -> Joules {
        self.by_component
            .get(component)
            .copied()
            .unwrap_or(Joules(0.0))
    }

    /// Total energy across all components.
    pub fn total(&self) -> Joules {
        self.by_component.values().copied().sum()
    }

    /// Iterates component names and energies in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Joules)> {
        self.by_component.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another meter's totals into this one.
    pub fn absorb(&mut self, other: &EnergyMeter) {
        for (name, energy) in other.iter() {
            self.record(name, energy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_over_time_is_energy() {
        let e = Watts(2.0).over(SimDuration::from_millis(500));
        assert!((e.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn meter_accumulates_per_component() {
        let mut m = EnergyMeter::new();
        m.record("a", Joules(1.0));
        m.record("a", Joules(2.0));
        m.record("b", Joules(0.5));
        assert!((m.component("a").0 - 3.0).abs() < 1e-12);
        assert!((m.total().0 - 3.5).abs() < 1e-12);
        assert_eq!(m.component("missing").0, 0.0);
    }

    #[test]
    fn absorb_merges() {
        let mut m1 = EnergyMeter::new();
        m1.record("x", Joules(1.0));
        let mut m2 = EnergyMeter::new();
        m2.record("x", Joules(2.0));
        m2.record("y", Joules(3.0));
        m1.absorb(&m2);
        assert!((m1.component("x").0 - 3.0).abs() < 1e-12);
        assert!((m1.component("y").0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_units() {
        assert_eq!(Joules(0.5).to_string(), "500.000mJ");
        assert_eq!(Watts(0.0005).to_string(), "500.000uW");
    }
}
