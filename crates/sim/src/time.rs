//! Nanosecond-resolution simulated time.
//!
//! All latency numbers in the workspace (touchscreen frames, TFT readout
//! cycles, protocol round trips) are expressed as [`SimDuration`] values and
//! anchored to a [`SimTime`] on a simulation timeline. Neither type ever
//! consults the host clock, which keeps every experiment deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point on the simulated timeline, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use btd_sim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(250);
/// assert_eq!(t.as_micros(), 250);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use btd_sim::time::SimDuration;
///
/// let frame = SimDuration::from_millis(4);
/// assert_eq!(frame * 3, SimDuration::from_millis(12));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: argument is later than self"),
        )
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating multiplication by an integer factor. Unlike `Mul<u64>`,
    /// which panics on overflow in debug builds and wraps in release,
    /// this clamps at `u64::MAX` nanoseconds.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Multiplies by a float factor, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division by `n`, truncating.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn div_int(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", self)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn fmt_nanos(nanos: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if nanos >= 1_000_000_000 {
        write!(f, "{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        write!(f, "{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        write!(f, "{:.3}us", nanos as f64 / 1e3)
    } else {
        write!(f, "{}ns", nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn unit_conversions_are_consistent() {
        assert_eq!(SimDuration::from_millis(4).as_micros(), 4_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(1_500_000).as_millis(), 1);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.004).as_millis(), 4);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ratio_division() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert!((a / b - 2.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturating_mul_clamps_at_max() {
        let big = SimDuration::from_nanos(u64::MAX / 2 + 1);
        assert_eq!(big.saturating_mul(2), SimDuration::from_nanos(u64::MAX));
        assert_eq!(
            SimDuration::from_millis(3).saturating_mul(4),
            SimDuration::from_millis(12)
        );
        assert_eq!(
            big.saturating_add(big),
            SimDuration::from_nanos(u64::MAX),
            "saturating_add clamps too"
        );
    }

    #[test]
    #[should_panic(expected = "later than self")]
    fn duration_since_panics_on_underflow() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
