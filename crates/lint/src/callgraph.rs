//! The workspace call graph: every call site in every fn body, resolved
//! to [`crate::symbols::FnDef`]s across the workspace crates.
//!
//! Resolution is name-based with locality, because the lexer-level model
//! has no trait solver:
//!
//! * `self.close()` resolves to `close` methods of the enclosing impl
//!   type first.
//! * `recv.close()` uses the receiver's declared type when the local
//!   type environment ([`TypeEnv`]) knows it (a parameter, a `let` with
//!   an annotation, or a `Type::new()` / `Type { … }` initializer).
//! * `Type::close()` filters by impl type; `module::close()` filters by
//!   defining file.
//! * A bare `close(...)` prefers same-file definitions, then same-crate,
//!   then (only then) the rest of the workspace — so a helper shadowing
//!   a foreign fn name resolves locally, and a cross-crate call resolves
//!   as long as the name exists there.
//!
//! Ambiguity keeps *all* surviving candidates: the graph over-approximates
//! (extra edges), never under-approximates, which is the safe direction
//! for reachability rules. Known over-approximations are documented in
//! DESIGN §16.

use std::collections::BTreeMap;

use crate::lexer::{Tok, Token};
use crate::model::SourceFile;
use crate::symbols::{FnDef, SymbolTable};

/// Identifiers that look like calls but never are.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "fn", "let",
    "mut", "ref", "unsafe", "where", "impl", "dyn", "Some", "None", "Ok", "Err", "Box", "Rc",
    "RefCell", "Vec", "String", "Cell",
];

/// One resolved call site inside a fn body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
    /// Source line of the call.
    pub line: u32,
    /// Resolved callee fn indices (several when ambiguous).
    pub callees: Vec<usize>,
    /// Callee name as written.
    pub name: String,
    /// Token index one past the argument list's `(`.
    pub args_open: usize,
}

/// The call graph: per-caller call sites plus flattened edges.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Indexed by caller fn index.
    pub sites: Vec<Vec<CallSite>>,
}

impl CallGraph {
    pub fn build(files: &[SourceFile], symbols: &SymbolTable) -> CallGraph {
        // name -> fn indices, for candidate lookup.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, f) in symbols.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(idx);
        }
        let mut sites = vec![Vec::new(); symbols.fns.len()];
        for (caller_idx, caller) in symbols.fns.iter().enumerate() {
            let file = &files[caller.file];
            let tokens = file.tokens();
            let env = TypeEnv::build(caller, tokens);
            let mut span_sites = Vec::new();
            for i in caller.span.body_start..caller.span.end.min(tokens.len()) {
                // Only attribute calls lexically inside *this* fn, not a
                // nested one.
                if symbols.fn_at(caller.file, i) != Some(caller_idx) {
                    continue;
                }
                let Some(site) = call_at(tokens, i, caller, &env, symbols, &by_name, file) else {
                    continue;
                };
                span_sites.push(site);
            }
            sites[caller_idx] = span_sites;
        }
        CallGraph { sites }
    }

    /// Breadth-first reachability from `entries`. Returns, per fn, the
    /// index of the caller that first reached it (`entries` map to
    /// themselves), or `None` if unreachable.
    pub fn reachable_from(&self, entries: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.sites.len()];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &e in entries {
            if parent[e].is_none() {
                parent[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(f) = queue.pop_front() {
            for site in &self.sites[f] {
                for &callee in &site.callees {
                    if parent[callee].is_none() {
                        parent[callee] = Some(f);
                        queue.push_back(callee);
                    }
                }
            }
        }
        parent
    }

    /// The entry-to-`target` call chain implied by a `reachable_from`
    /// parent map, as qualified fn names.
    pub fn chain(
        &self,
        symbols: &SymbolTable,
        parent: &[Option<usize>],
        target: usize,
    ) -> Vec<String> {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .into_iter()
            .map(|f| symbols.fns[f].qualified())
            .collect()
    }
}

/// If token `i` is the callee name of a call, resolve it.
#[allow(clippy::too_many_arguments)]
fn call_at(
    tokens: &[Token],
    i: usize,
    caller: &FnDef,
    env: &TypeEnv,
    symbols: &SymbolTable,
    by_name: &BTreeMap<&str, Vec<usize>>,
    file: &SourceFile,
) -> Option<CallSite> {
    let Tok::Ident(name) = &tokens[i].tok else {
        return None;
    };
    if NON_CALL_IDENTS.contains(&name.as_str()) {
        return None;
    }
    // A call is `name (`; `name!` is a macro, `fn name` a definition.
    if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    if i > 0 && (tokens[i - 1].is_ident("fn") || tokens[i - 1].is_punct('!')) {
        return None;
    }
    let candidates = by_name.get(name.as_str())?;

    // Classify the call shape by what precedes the name.
    let mut filtered: Vec<usize> = Vec::new();
    if i > 0 && tokens[i - 1].is_punct('.') {
        // Method call: infer the receiver type.
        let recv_ty = match tokens.get(i.wrapping_sub(2)).map(|t| &t.tok) {
            Some(Tok::Ident(r)) if r == "self" => caller.self_type.clone(),
            Some(Tok::Ident(r)) => env.ty_of(r),
            _ => None,
        };
        if let Some(ty) = recv_ty {
            filtered = candidates
                .iter()
                .copied()
                .filter(|&c| symbols.fns[c].self_type.as_deref() == Some(ty.as_str()))
                .collect();
        }
        if filtered.is_empty() {
            // Unknown receiver: any method with this name.
            filtered = candidates
                .iter()
                .copied()
                .filter(|&c| symbols.fns[c].has_self)
                .collect();
        }
    } else if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
        // Qualified call `Qual::name(…)`.
        if let Some(Tok::Ident(qual)) = tokens.get(i.wrapping_sub(3)).map(|t| &t.tok) {
            if qual.chars().next().is_some_and(char::is_uppercase) {
                filtered = candidates
                    .iter()
                    .copied()
                    .filter(|&c| symbols.fns[c].self_type.as_deref() == Some(qual.as_str()))
                    .collect();
            } else {
                let dir = format!("/{qual}/");
                let leaf = format!("/{qual}.rs");
                filtered = candidates
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let p = &symbols.fns[c].file;
                        let path = symbols_path(symbols, *p);
                        path.contains(&dir) || path.ends_with(&leaf) || path.contains(&leaf)
                    })
                    .collect();
            }
        }
    }
    if filtered.is_empty() {
        filtered = candidates.clone();
    }

    // Locality: same file beats same crate beats the rest.
    let same_file: Vec<usize> = filtered
        .iter()
        .copied()
        .filter(|&c| symbols.fns[c].file == caller.file)
        .collect();
    let resolved = if !same_file.is_empty() {
        same_file
    } else {
        let caller_crate = crate_of(&file.rel_path);
        let same_crate: Vec<usize> = filtered
            .iter()
            .copied()
            .filter(|&c| crate_of(symbols_path(symbols, symbols.fns[c].file)) == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            same_crate
        } else {
            filtered
        }
    };
    Some(CallSite {
        tok: i,
        line: tokens[i].line,
        callees: resolved,
        name: name.clone(),
        args_open: i + 1,
    })
}

fn symbols_path(symbols: &SymbolTable, file: usize) -> &str {
    &symbols.paths[file]
}

/// First two path segments — the crate a file belongs to (`crates/core`),
/// or the top-level directory for `tests/` and `examples/`.
pub fn crate_of(path: &str) -> &str {
    let mut seen = 0;
    for (i, b) in path.bytes().enumerate() {
        if b == b'/' {
            seen += 1;
            if seen == 2 {
                return &path[..i];
            }
        }
    }
    path.split('/').next().unwrap_or(path)
}

/// Local variable types inside one fn: parameters plus `let` bindings
/// whose type is either annotated or evident from a constructor.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    tys: BTreeMap<String, String>,
}

impl TypeEnv {
    pub fn build(def: &FnDef, tokens: &[Token]) -> TypeEnv {
        let mut env = TypeEnv::default();
        for p in &def.params {
            // The binding's nominal type is the first type-position
            // identifier that is not a reference/container shell.
            if let Some(t) = nominal(&p.ty) {
                env.tys.insert(p.name.clone(), t);
            }
        }
        let mut i = def.span.body_start;
        while i + 2 < def.span.end.min(tokens.len()) {
            if tokens[i].is_ident("let") {
                // `let [mut] name [: Ty] = …`
                let mut j = i + 1;
                if tokens[j].is_ident("mut") {
                    j += 1;
                }
                if let Some(Tok::Ident(name)) = tokens.get(j).map(|t| &t.tok) {
                    let name = name.clone();
                    if tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                        // Annotated: idents up to `=` or `;`.
                        let ty: Vec<String> = tokens[j + 2..]
                            .iter()
                            .take_while(|t| !t.is_punct('=') && !t.is_punct(';'))
                            .filter_map(|t| t.ident().map(str::to_owned))
                            .collect();
                        if let Some(t) = nominal(&ty) {
                            env.tys.insert(name, t);
                        }
                    } else if tokens.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                        // `= Type::new(…)` / `= Type { … }`
                        if let Some(Tok::Ident(ctor)) = tokens.get(j + 2).map(|t| &t.tok) {
                            let is_path = tokens.get(j + 3).is_some_and(|t| t.is_punct(':'));
                            let is_lit = tokens.get(j + 3).is_some_and(|t| t.is_punct('{'));
                            if (is_path || is_lit)
                                && ctor.chars().next().is_some_and(char::is_uppercase)
                            {
                                env.tys.insert(name, ctor.clone());
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        env
    }

    pub fn ty_of(&self, name: &str) -> Option<String> {
        self.tys.get(name).cloned()
    }
}

/// The nominal type of a declaration: the first identifier that is not a
/// reference shell or common smart-pointer/container wrapper. `&mut
/// Session` → `Session`; `Rc<RefCell<Tracer>>` → `Tracer`.
fn nominal(ty: &[String]) -> Option<String> {
    const SHELLS: &[&str] = &[
        "mut", "dyn", "Box", "Rc", "Arc", "RefCell", "Cell", "Option",
    ];
    ty.iter().find(|t| !SHELLS.contains(&t.as_str())).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(sources: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src, &["wall-clock"]))
            .collect();
        let symbols = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &symbols);
        (files, symbols, graph)
    }

    fn fn_idx(symbols: &SymbolTable, qualified: &str) -> usize {
        symbols
            .fns
            .iter()
            .position(|f| f.qualified() == qualified)
            .unwrap_or_else(|| panic!("no fn {qualified}"))
    }

    /// Qualified names of everything `caller` calls, sorted.
    fn callees(symbols: &SymbolTable, graph: &CallGraph, caller: usize) -> Vec<String> {
        let mut out: Vec<String> = graph.sites[caller]
            .iter()
            .flat_map(|s| s.callees.iter().map(|&c| symbols.fns[c].qualified()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn cross_crate_calls_resolve_when_the_name_is_unique() {
        let (_, symbols, graph) = build(&[
            (
                "crates/core/src/engine.rs",
                "pub fn drive() { seal_blob(b\"x\"); }",
            ),
            (
                "crates/crypto/src/seal.rs",
                "pub fn seal_blob(b: &[u8]) -> Vec<u8> { b.to_vec() }",
            ),
        ]);
        let drive = fn_idx(&symbols, "drive");
        assert_eq!(callees(&symbols, &graph, drive), ["seal_blob"]);
    }

    #[test]
    fn self_methods_resolve_to_the_enclosing_impl_type() {
        // Two types define `close`; `self.close()` inside World::run must
        // pick World's, not Segment's.
        let (_, symbols, graph) = build(&[
            (
                "crates/sim/src/world.rs",
                "struct World;\nimpl World {\n fn close(&mut self) {}\n fn run(&mut self) { self.close(); }\n}",
            ),
            (
                "crates/core/src/storage.rs",
                "struct Segment;\nimpl Segment {\n fn close(&mut self) {}\n}",
            ),
        ]);
        let run = fn_idx(&symbols, "World::run");
        assert_eq!(callees(&symbols, &graph, run), ["World::close"]);
    }

    #[test]
    fn typed_receivers_resolve_through_the_local_type_env() {
        // `seg` is annotated `Segment`, so `seg.close()` picks
        // Segment::close even from inside World's impl.
        let (_, symbols, graph) = build(&[
            (
                "crates/sim/src/world.rs",
                "struct World;\nimpl World {\n fn tick(&mut self, seg: &mut Segment) { seg.close(); }\n}",
            ),
            (
                "crates/core/src/storage.rs",
                "struct Segment;\nimpl Segment {\n fn close(&mut self) {}\n}\nstruct Tracer;\nimpl Tracer {\n fn close(&mut self) {}\n}",
            ),
        ]);
        let tick = fn_idx(&symbols, "World::tick");
        assert_eq!(callees(&symbols, &graph, tick), ["Segment::close"]);
    }

    #[test]
    fn a_local_shadow_beats_the_foreign_name() {
        // Both crates define `checksum`; the bare call resolves to the
        // same-file one only.
        let (_, symbols, graph) = build(&[
            (
                "crates/core/src/pages.rs",
                "fn checksum(b: &[u8]) -> u32 { b.len() as u32 }\nfn page_digest(b: &[u8]) -> u32 { checksum(b) }",
            ),
            (
                "crates/crypto/src/hashing.rs",
                "pub fn checksum(b: &[u8]) -> u32 { 7 }",
            ),
        ]);
        let caller = fn_idx(&symbols, "page_digest");
        let sites = &graph.sites[caller];
        let cs = sites.iter().find(|s| s.name == "checksum").unwrap();
        assert_eq!(cs.callees.len(), 1, "shadow must not be ambiguous");
        assert_eq!(symbols.fns[cs.callees[0]].file, 0, "same-file wins");
    }

    #[test]
    fn an_unknown_receiver_keeps_every_method_candidate() {
        // No type info for `x`: `x.close()` over-approximates to all
        // `close` *methods* — never under-approximates, and never picks
        // up a free fn of the same name.
        let (_, symbols, graph) = build(&[
            ("crates/core/src/a.rs", "fn go(x: &X) { x.close(); }"),
            (
                "crates/core/src/b.rs",
                "struct S;\nimpl S {\n fn close(&self) {}\n}\nstruct T;\nimpl T {\n fn close(&self) {}\n}\nfn close() {}",
            ),
        ]);
        let go = fn_idx(&symbols, "go");
        assert_eq!(callees(&symbols, &graph, go), ["S::close", "T::close"]);
    }

    #[test]
    fn reachability_chains_reconstruct_the_path() {
        let (_, symbols, graph) = build(&[(
            "crates/sim/src/world.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn unrelated() {}",
        )]);
        let (a, c) = (fn_idx(&symbols, "a"), fn_idx(&symbols, "c"));
        let parent = graph.reachable_from(&[a]);
        assert!(parent[c].is_some());
        assert!(parent[fn_idx(&symbols, "unrelated")].is_none());
        assert_eq!(graph.chain(&symbols, &parent, c), ["a", "b", "c"]);
    }
}
