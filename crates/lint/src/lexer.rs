//! A hand-rolled Rust lexer.
//!
//! `trust-lint` must run in an offline build environment where `syn` and
//! friends are unreachable, so the rules operate on a token stream produced
//! here. The lexer is deliberately simple: it distinguishes identifiers,
//! literals, punctuation, and comments with line numbers, which is exactly
//! the granularity the rules need. It does not build an AST; structural
//! questions (function extents, struct bodies, macro argument groups) are
//! answered by brace matching over the token stream in [`crate::model`].
//!
//! Correctness cases covered because real workspace code hits them:
//! strings with escapes, raw strings (`r"…"`, `r#"…"#`), byte strings,
//! char literals vs. lifetimes (`'a'` vs `'a`), nested block comments, and
//! doc comments (which are ordinary comments to the rules, but are scanned
//! for waivers).

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `struct`, `HashMap`, …).
    Ident(String),
    /// A lifetime such as `'a` (kept distinct so `'a` never looks like an
    /// unterminated char literal).
    Lifetime(String),
    /// A numeric literal (value irrelevant to every rule).
    Num,
    /// A string or byte-string literal (contents never participate in
    /// rules, so forbidden names inside strings do not fire).
    Str,
    /// A char literal.
    Char,
    /// A single punctuation character. Multi-character operators appear
    /// as adjacent tokens (`+=` is `+`, `=`), which pattern matching over
    /// slices handles naturally.
    Punct(char),
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment (line or block) with the line it starts on. Comments are kept
/// out of the rule token stream but scanned for waivers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Invalid input never panics: the
/// lexer skips anything it cannot classify one byte at a time, because a
/// linter must degrade gracefully on code mid-edit.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_owned(),
                    line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_owned(),
                    line: start_line,
                });
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
            }
            // Raw strings and raw identifiers: r"…", r#"…"#, br"…", r#ident.
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (ni, is_str) = skip_raw_or_byte(b, i, &mut line);
                i = ni;
                if is_str {
                    out.tokens.push(Token {
                        tok: Tok::Str,
                        line,
                    });
                }
            }
            b'\'' => {
                // Lifetime or char literal. `'a'` (closing quote after one
                // char or escape) is a char; `'a` followed by non-quote is
                // a lifetime.
                if let Some(ni) = try_char_literal(b, i) {
                    i = ni;
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime(src[start..j].to_owned()),
                        line,
                    });
                    i = j;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(src[start..i].to_owned()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // Stop a float scan from eating `..` or a method call.
                    if b[i] == b'.' && i + 1 < b.len() && !b[i + 1].is_ascii_digit() {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote and bumps `line` for embedded newlines.
fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// True if position `i` begins `r"`, `r#"`, `r#ident`, `b"`, `br"`, `b'`,
/// or `br#"` — anything needing non-default handling after `r`/`b`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let after = |k: usize| rest.get(k).copied();
    match rest[0] {
        b'r' => matches!(after(1), Some(b'"') | Some(b'#')),
        b'b' => match after(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(after(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a raw string / byte string / raw identifier beginning at `i`.
/// Returns (index past it, whether it was a string-like literal).
fn skip_raw_or_byte(b: &[u8], i: usize, line: &mut u32) -> (usize, bool) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    match b.get(j) {
        Some(b'"') if raw => {
            // Raw string: ends at `"` followed by `hashes` hashes.
            j += 1;
            while j < b.len() {
                if b[j] == b'\n' {
                    *line += 1;
                    j += 1;
                } else if b[j] == b'"'
                    && b[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == b'#')
                        .count()
                        == hashes
                {
                    return (j + 1 + hashes, true);
                } else {
                    j += 1;
                }
            }
            (j, true)
        }
        Some(b'"') => (skip_string(b, j, line), true),
        Some(b'\'') => {
            // Byte char literal b'x'.
            let end = try_char_literal(b, j).unwrap_or(j + 1);
            (end, true)
        }
        // `r#ident` raw identifier (or a stray `r#`): let the main loop
        // re-lex from the identifier start.
        _ => (j, false),
    }
}

/// If a char literal starts at `i` (the `'`), returns the index past its
/// closing quote; `None` means this is a lifetime.
fn try_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        j += 2;
        // Escapes like \u{1F600} and \x7f.
        if j <= b.len() && b.get(j - 1) == Some(&b'u') && b.get(j) == Some(&b'{') {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        } else if b.get(j - 1) == Some(&b'x') {
            j += 2;
        }
        if b.get(j) == Some(&b'\'') {
            return Some(j + 1);
        }
        return None;
    }
    // One (possibly multi-byte UTF-8) character then a quote.
    let mut k = j + 1;
    while k < b.len() && (b[k] & 0xC0) == 0x80 {
        k += 1;
    }
    (b.get(k) == Some(&b'\'')).then(|| k + 1)
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == name)
    }

    /// True if this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.tok, Tok::Punct(p) if *p == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let l = lex("fn main() { let x = 1; }");
        assert_eq!(
            idents("fn main() { let x = 1; }"),
            ["fn", "main", "let", "x"]
        );
        assert!(l.tokens.iter().any(|t| t.is_punct('{')));
    }

    #[test]
    fn strings_hide_their_contents() {
        // A forbidden name inside a string must not appear as an ident.
        assert_eq!(idents(r#"let s = "Instant KeyPair";"#), ["let", "s"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        assert_eq!(
            idents(r###"let s = r#"KeyPair "quoted" inside"#;"###),
            ["let", "s"]
        );
        assert_eq!(idents(r#"let s = r"no hashes";"#), ["let", "s"]);
    }

    #[test]
    fn byte_strings_and_chars() {
        assert_eq!(
            idents(r#"let s = b"bytes"; let c = 'x'; let e = '\n';"#),
            ["let", "s", "let", "c", "let", "e"]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) {}");
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Lifetime(s) if s == "a")));
        assert!(!l.tokens.iter().any(|t| t.tok == Tok::Char));
    }

    #[test]
    fn comments_collected_with_lines() {
        let l = lex("let a = 1;\n// trust-lint: allow(wall-clock) -- bench\nlet b = 2;\n/* block\ncomment */ let c = 3;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.contains("trust-lint"));
        assert_eq!(l.comments[1].line, 4);
        // Line numbers survive multi-line block comments.
        let c_tok = l.tokens.iter().rev().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c_tok.line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), ["fn", "f"]);
    }

    #[test]
    fn line_numbers_track_strings() {
        let l = lex("let a = \"line\nbreak\";\nlet b = 2;");
        let b_tok = l.tokens.iter().rev().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }
}
