//! `trust-lint`: a zero-dependency static analysis pass enforcing the
//! TRUST/FLock trust boundary, determinism, and journal discipline.
//!
//! The paper's security argument rests on invariants the Rust type system
//! does not express: secrets never leave the FLock module, the simulation
//! is seed-deterministic, durable server state mutates only through the
//! journal, and every metrics counter has a matching trace event. Each has
//! already cost us (or nearly cost us) a shipped bug; this crate makes
//! them mechanical.
//!
//! The tool is built on a hand-rolled lexer ([`lexer`]) because the build
//! environment is offline — `syn` is unreachable — and a checker this
//! load-bearing must not be the one thing that cannot build. Rules operate
//! on token patterns plus brace-matched structure ([`model`]); they are
//! deliberately heuristic and err on the side of firing, because every
//! finding is waivable in place:
//!
//! ```text
//! // trust-lint: allow(wall-clock) -- benchmark wall time is the product
//! // trust-lint: allow-file(secret-outside-trust) -- attacker-model test
//! ```
//!
//! The reason after `--` is mandatory; a reasonless or typo'd waiver is a
//! `waiver-syntax` finding that cannot itself be waived. The binary
//! (`--bin trust_lint`) exits non-zero on any unwaived finding, and runs
//! in `scripts/check.sh` and CI between clippy and the test suite.
//!
//! Rule families (ids in [`findings::RULES`]):
//!
//! | family | rules | invariant |
//! |---|---|---|
//! | secret containment | `secret-debug-derive`, `secret-outside-trust`, `secret-format-leak`, `secret-payload-field` | secrets stay behind the FLock boundary and out of all formatted/serialized output |
//! | determinism | `wall-clock`, `os-thread`, `os-random`, `unordered-iteration` | same seed ⇒ byte-identical runs |
//! | journal discipline | `journal-discipline` | durable state mutates only in `apply_record` |
//! | storage sync discipline | `storage-sync-before-reply` | a reply never leaves before its record is synced |
//! | metrics/trace parity | `metrics-trace-parity` | `derive_metrics` reconciles exactly |

pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod symbols;

pub use config::Config;
pub use engine::{find_root, lint_sources, lint_workspace};
pub use findings::{Finding, Report, RULES};
