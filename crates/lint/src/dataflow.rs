//! The flow-sensitive dataflow core: value taint tracked through
//! let-bindings, field projections, method chains, and calls, with
//! interprocedural propagation along call-graph summaries.
//!
//! This is what graduates trust-lint from token heuristics to analysis:
//! the old `secret-format-leak` rule matched secret *names* at sinks, so
//! `let k = session.key; tracer.record(k)` sailed through. Here the read
//! of a registered secret field taints the value, the rename carries the
//! taint, and the sink check fires on the *value*, whatever it is called.
//!
//! The engine is deliberately an approximation (no trait solver, no
//! aliasing model); its bias is asymmetric by design:
//!
//! * **over-approximate propagation** — a method call on a tainted value
//!   returns taint unless the method is a registered sanitizer; ambiguous
//!   call sites keep every candidate callee;
//! * **under-approximate only at sanitizers** — `mac(&key, …)`, `.len()`,
//!   `seal_*` launder taint because their outputs are the protocol's
//!   public artifacts.
//!
//! Summaries make it interprocedural: for every fn the fixpoint computes
//! whether a parameter reaches a sink inside it (transitively), whether a
//! parameter flows to its return value, and whether it returns taint born
//! inside it (e.g. a getter over a secret field). Callers consult the
//! summaries at every call site, so a leak through two helper hops is
//! still one finding — anchored at the caller, with the call chain.

use std::collections::BTreeMap;

use crate::callgraph::{CallGraph, CallSite, TypeEnv};
use crate::config::Config;
use crate::lexer::{Tok, Token};
use crate::model::{match_brace, SourceFile};
use crate::symbols::SymbolTable;

/// Format-family macros whose arguments are taint sinks.
pub const FORMAT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Trace-recording methods whose payloads are taint sinks.
pub const TRACE_METHODS: &[&str] = &["record", "open", "close"];

/// Methods that write their arguments into their receiver, so taint in
/// an argument propagates to the receiver binding.
const PROPAGATING_METHODS: &[&str] = &[
    "push",
    "insert",
    "extend",
    "append",
    "push_str",
    "push_back",
    "push_front",
];

/// The taint carried by one value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Taint {
    /// Description + line of the first secret origin, when the taint is
    /// real (`Session.key` read at line 12).
    pub origin: Option<(String, u32)>,
    /// Parameter indices whose pseudo-taint feeds this value (summary
    /// mode only; empty in the reporting pass).
    pub params: Vec<usize>,
}

impl Taint {
    pub fn is_tainted(&self) -> bool {
        self.origin.is_some() || !self.params.is_empty()
    }

    fn merge(&mut self, other: &Taint) {
        if self.origin.is_none() {
            self.origin.clone_from(&other.origin);
        }
        for p in &other.params {
            if !self.params.contains(p) {
                self.params.push(*p);
            }
        }
    }
}

/// What one fn does with taint, from every caller's point of view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Per parameter: does a tainted argument reach a sink inside this fn
    /// (directly or through further calls)?
    pub param_to_sink: Vec<bool>,
    /// Per parameter: does the argument flow into the return value?
    pub param_to_return: Vec<bool>,
    /// Does the fn return taint born inside it (secret-field getter)?
    pub returns_secret: bool,
    /// Qualified fn names from this fn to the sink, for call chains in
    /// diagnostics (`["seal_report", "render_keys"]`).
    pub sink_via: Vec<String>,
}

/// One secret-taint finding from the reporting pass.
#[derive(Clone, Debug)]
pub struct TaintHit {
    pub file: usize,
    pub line: u32,
    pub message: String,
    /// Call chain (qualified names) when the sink is behind calls.
    pub chain: Vec<String>,
}

/// The workspace analysis facade: symbol table, call graph, summaries.
pub struct Analysis<'a> {
    pub files: &'a [SourceFile],
    pub symbols: SymbolTable,
    pub graph: CallGraph,
    pub summaries: Vec<Summary>,
    /// Names of types defined in payload (wire/journal) files: their
    /// struct-literal fields are sinks anywhere in the workspace.
    pub payload_types: Vec<String>,
}

impl<'a> Analysis<'a> {
    pub fn build(files: &'a [SourceFile], cfg: &Config) -> Analysis<'a> {
        let symbols = SymbolTable::build(files);
        let graph = CallGraph::build(files, &symbols);
        let payload_types: Vec<String> = symbols
            .types
            .iter()
            .filter(|t| {
                cfg.payload_files
                    .iter()
                    .any(|p| symbols.paths[t.file].contains(p))
            })
            .map(|t| t.name.clone())
            .collect();
        let mut analysis = Analysis {
            files,
            symbols,
            graph,
            summaries: Vec::new(),
            payload_types,
        };
        analysis.summaries = analysis.fixpoint_summaries(cfg);
        analysis
    }

    /// Iterates per-fn summaries to a fixpoint (bounded; the call graph
    /// is shallow and summaries only ever gain bits).
    fn fixpoint_summaries(&self, cfg: &Config) -> Vec<Summary> {
        let mut summaries: Vec<Summary> = self
            .symbols
            .fns
            .iter()
            .map(|f| Summary {
                param_to_sink: vec![false; f.params.len()],
                param_to_return: vec![false; f.params.len()],
                ..Summary::default()
            })
            .collect();
        for _round in 0..8 {
            let mut changed = false;
            for fn_idx in 0..self.symbols.fns.len() {
                let mut pass = TaintPass::new(self, cfg, fn_idx, &summaries, true);
                pass.run();
                let new = pass.into_summary();
                if new != summaries[fn_idx] {
                    summaries[fn_idx] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        summaries
    }

    /// The reporting pass: parameters carry no pseudo-taint, so every hit
    /// traces back to a real secret origin.
    pub fn taint_hits(&self, cfg: &Config) -> Vec<TaintHit> {
        let mut hits = Vec::new();
        for fn_idx in 0..self.symbols.fns.len() {
            let mut pass = TaintPass::new(self, cfg, fn_idx, &self.summaries, false);
            pass.run();
            hits.append(&mut pass.hits);
        }
        hits
    }

    /// Call sites of `fn_idx` keyed by the callee-name token index.
    fn sites_of(&self, fn_idx: usize) -> BTreeMap<usize, &CallSite> {
        self.graph.sites[fn_idx]
            .iter()
            .map(|s| (s.tok, s))
            .collect()
    }
}

/// One flow-sensitive pass over one fn body.
struct TaintPass<'p, 'a> {
    analysis: &'p Analysis<'a>,
    cfg: &'p Config,
    fn_idx: usize,
    summaries: &'p [Summary],
    tokens: &'p [Token],
    env: TypeEnv,
    sites: BTreeMap<usize, &'p CallSite>,
    /// Variable name -> current taint. Flow-sensitive: reassignment from
    /// a clean expression clears it.
    state: BTreeMap<String, Taint>,
    /// True while computing summaries (params pseudo-tainted, hits mark
    /// summary bits instead of reporting).
    summary_mode: bool,
    param_to_sink: Vec<bool>,
    param_to_return: Vec<bool>,
    returns_secret: bool,
    sink_via: Vec<String>,
    hits: Vec<TaintHit>,
}

impl<'p, 'a> TaintPass<'p, 'a> {
    fn new(
        analysis: &'p Analysis<'a>,
        cfg: &'p Config,
        fn_idx: usize,
        summaries: &'p [Summary],
        summary_mode: bool,
    ) -> TaintPass<'p, 'a> {
        let def = &analysis.symbols.fns[fn_idx];
        let tokens = analysis.files[def.file].tokens();
        let env = TypeEnv::build(def, tokens);
        let mut state = BTreeMap::new();
        for (k, p) in def.params.iter().enumerate() {
            let mut t = Taint::default();
            if summary_mode {
                t.params.push(k);
            }
            // A parameter *named* like a raw secret is a taint source in
            // both modes: its name is the declaration of intent.
            if cfg.secret_idents.contains(&p.name.as_str()) {
                t.origin = Some((format!("`{}`", p.name), def.line));
            }
            if t.is_tainted() {
                state.insert(p.name.clone(), t);
            }
        }
        TaintPass {
            sites: analysis.sites_of(fn_idx),
            analysis,
            cfg,
            fn_idx,
            summaries,
            tokens,
            env,
            state,
            summary_mode,
            param_to_sink: vec![false; def.params.len()],
            param_to_return: vec![false; def.params.len()],
            returns_secret: false,
            sink_via: Vec::new(),
            hits: Vec::new(),
        }
    }

    fn def(&self) -> &crate::symbols::FnDef {
        &self.analysis.symbols.fns[self.fn_idx]
    }

    fn into_summary(self) -> Summary {
        Summary {
            param_to_sink: self.param_to_sink,
            param_to_return: self.param_to_return,
            returns_secret: self.returns_secret,
            sink_via: self.sink_via,
        }
    }

    fn run(&mut self) {
        let (body_start, end) = {
            let d = self.def();
            (d.span.body_start, d.span.end.min(self.tokens.len()))
        };
        let mut i = body_start + 1;
        while i + 1 < end {
            // Skip nested fn bodies: they get their own pass.
            if self.tokens[i].is_ident("fn")
                && self.analysis.symbols.fn_at(self.def().file, i + 1) != Some(self.fn_idx)
            {
                if let Some(nested) = self
                    .analysis
                    .symbols
                    .fns
                    .iter()
                    .find(|f| f.file == self.def().file && f.span.start == i)
                {
                    i = nested.span.end;
                    continue;
                }
            }
            let t = &self.tokens[i];
            if t.is_ident("let") {
                i = self.handle_let(i, end);
                continue;
            }
            if t.is_ident("for") {
                i = self.handle_for(i, end);
                continue;
            }
            if t.is_ident("return") {
                let stop = self.stmt_end(i + 1, end);
                let rt = self.eval(i + 1, stop);
                self.note_return(&rt);
                i += 1;
                continue;
            }
            // Plain reassignment `x = expr;` / `x += expr;`.
            if let Tok::Ident(name) = &t.tok {
                let prev_sep = i == 0
                    || matches!(
                        self.tokens[i - 1].tok,
                        Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}')
                    );
                if prev_sep && crate::rules::assigned_after(self.tokens, i) {
                    let compound = !self.tokens[i + 1].is_punct('=');
                    let eq = if compound { i + 3 } else { i + 2 };
                    let stop = self.stmt_end(eq, end);
                    let mut rt = self.eval(eq, stop);
                    if compound {
                        if let Some(old) = self.state.get(name.as_str()) {
                            rt.merge(&old.clone());
                        }
                    }
                    self.assign(name.clone(), rt);
                    i = eq;
                    continue;
                }
            }
            // Sinks: format-family macros and trace payloads.
            if let Some((open, what)) = self.sink_group(i) {
                if let Some(close) = match_brace(self.tokens, open) {
                    // `assert!`/`debug_assert!` evaluate their condition
                    // but never format it — a failure prints the
                    // condition's *source text* plus the trailing message
                    // args. Only those message args are a sink. The
                    // `assert_eq!` family Debug-prints its operands, so
                    // its whole group stays one.
                    let name = self.tokens[i].ident().unwrap_or("");
                    let sink_from = if matches!(name, "assert" | "debug_assert") {
                        first_top_comma(self.tokens, open, close).map_or(close, |c| c + 1)
                    } else {
                        open + 1
                    };
                    // Calls in the unformatted condition still meet
                    // callee summaries (`assert!(leaks(key))` leaks
                    // before the condition is judged).
                    for j in open + 1..sink_from {
                        if let Some(site) = self.sites.get(&j).copied() {
                            self.check_call(site);
                        }
                    }
                    if sink_from < close {
                        let taint = self.eval(sink_from, close - 1);
                        self.note_sink(&taint, self.tokens[i].line, &what, sink_from, close - 1);
                    }
                    i = close;
                    continue;
                }
            }
            // Sinks: payload struct literals (`LoginReply { key: expr }`).
            if self.payload_literal(i) {
                i = self.check_payload_literal(i, end);
                continue;
            }
            // Call sites: argument taint meets callee summaries.
            if let Some(site) = self.sites.get(&i).copied() {
                self.check_call(site);
            }
            i += 1;
        }
        // The tail expression is the return value for non-unit fns.
        if !self.def().ret_ty.is_empty() {
            if let Some((ts, te)) = self.tail_range(body_start, end) {
                let rt = self.eval(ts, te);
                self.note_return(&rt);
            }
        }
    }

    /// `let [mut] <pat> [: ty] = expr ;` — binds pattern idents to the
    /// RHS taint. Returns the index to resume scanning from (the RHS, so
    /// sinks inside it are still visited).
    fn handle_let(&mut self, let_idx: usize, end: usize) -> usize {
        let mut j = let_idx + 1;
        let mut pat = Vec::new();
        let mut depth = 0i32;
        let mut eq = None;
        let mut in_ty = false;
        while j < end {
            match &self.tokens[j].tok {
                Tok::Punct('=') if depth == 0 && !self.tokens[j + 1].is_punct('=') => {
                    eq = Some(j);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                Tok::Punct(':') if depth == 0 => in_ty = true,
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Ident(id)
                    if !in_ty
                        && id != "mut"
                        && id != "ref"
                        && id
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_lowercase() || c == '_') =>
                {
                    pat.push(id.clone());
                }
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else {
            for name in pat {
                self.state.remove(&name);
            }
            return j + 1;
        };
        let stop = self.stmt_end(eq + 1, end);
        let taint = self.eval(eq + 1, stop);
        for name in pat {
            self.assign(name, taint.clone());
        }
        eq + 1
    }

    /// `for <pat> in expr {` — binds pattern idents when the iterated
    /// expression is tainted.
    fn handle_for(&mut self, for_idx: usize, end: usize) -> usize {
        let mut j = for_idx + 1;
        let mut pat = Vec::new();
        let mut in_tok = None;
        let mut depth = 0i32;
        while j < end {
            match &self.tokens[j].tok {
                Tok::Ident(id) if id == "in" && depth == 0 => {
                    in_tok = Some(j);
                    break;
                }
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Ident(id)
                    if id != "mut"
                        && id != "ref"
                        && id
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_lowercase() || c == '_') =>
                {
                    pat.push(id.clone());
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_tok) = in_tok else { return j };
        // The iterated expression runs to the loop body `{` at depth 0.
        let mut k = in_tok + 1;
        let mut depth = 0i32;
        while k < end {
            match self.tokens[k].tok {
                Tok::Punct('{') if depth == 0 => break,
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let taint = self.eval(in_tok + 1, k);
        for name in pat {
            self.assign(name, taint.clone());
        }
        in_tok + 1
    }

    fn assign(&mut self, name: String, taint: Taint) {
        if taint.is_tainted() {
            self.state.insert(name, taint);
        } else {
            self.state.remove(&name);
        }
    }

    /// Index one past the statement's end: the `;` at depth 0, or `end`.
    fn stmt_end(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        for k in from..end {
            match self.tokens[k].tok {
                Tok::Punct(';') if depth == 0 => return k,
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    if depth == 0 {
                        return k;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        end
    }

    /// The tail expression: tokens after the last `;`/block at depth 0.
    fn tail_range(&self, body_start: usize, end: usize) -> Option<(usize, usize)> {
        let mut depth = 0i32;
        let mut last_break = body_start;
        for k in body_start + 1..end.saturating_sub(1) {
            match self.tokens[k].tok {
                Tok::Punct(';') if depth == 0 => last_break = k,
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                _ => {}
            }
        }
        (last_break + 1 < end.saturating_sub(1)).then_some((last_break + 1, end - 1))
    }

    /// If token `i` opens a format-macro or trace-method argument group,
    /// returns (group `(` index, sink description).
    fn sink_group(&self, i: usize) -> Option<(usize, String)> {
        if let Some(id) = self.tokens[i].ident() {
            if FORMAT_MACROS.contains(&id)
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && self.tokens.get(i + 2).is_some_and(|t| {
                    matches!(t.tok, Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{'))
                })
            {
                return Some((i + 2, format!("`{id}!`")));
            }
        }
        if self.tokens[i].is_punct('.') {
            let id = self.tokens.get(i + 1)?.ident()?;
            if TRACE_METHODS.contains(&id) && self.tokens.get(i + 2)?.is_punct('(') {
                // `.record`/`.open`/`.close` are common method names
                // (segments, sessions); only a trace-ish receiver makes
                // them a payload sink here. The name-based rule keeps its
                // broad net for literal secret idents.
                let recv = (i >= 1).then(|| self.tokens[i - 1].ident()).flatten();
                if recv.is_some_and(|r| {
                    ["trace", "tracer", "span", "probe"]
                        .iter()
                        .any(|m| r.to_lowercase().contains(m))
                }) {
                    return Some((i + 2, format!("trace `.{id}(...)`")));
                }
            }
        }
        None
    }

    /// True if token `i` begins a struct literal of a payload type.
    fn payload_literal(&self, i: usize) -> bool {
        let Some(id) = self.tokens[i].ident() else {
            return false;
        };
        if !self.analysis.payload_types.iter().any(|t| t == id) {
            return false;
        }
        if !self.tokens.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            return false;
        }
        // `struct LoginReply {`, `enum … LoginReply {` etc. are
        // definitions, not constructions.
        !(i > 0
            && (self.tokens[i - 1].is_ident("struct")
                || self.tokens[i - 1].is_ident("enum")
                || self.tokens[i - 1].is_ident("union")
                || self.tokens[i - 1].is_punct('.')))
    }

    /// Scans `Payload { field: expr, … }` for tainted field values.
    fn check_payload_literal(&mut self, i: usize, end: usize) -> usize {
        let open = i + 1;
        let Some(close) = match_brace(self.tokens, open) else {
            return i + 1;
        };
        let type_name = self.tokens[i].ident().unwrap_or_default().to_owned();
        let mut k = open + 1;
        let mut depth = 0i32;
        while k + 1 < close.min(end) {
            match &self.tokens[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Ident(field)
                    if depth == 0
                        && self.tokens[k + 1].is_punct(':')
                        && !self.tokens[k + 2].is_punct(':') =>
                {
                    // Field value runs to the `,` (or close) at depth 0.
                    let mut v = k + 2;
                    let mut vd = 0i32;
                    while v < close - 1 {
                        match self.tokens[v].tok {
                            Tok::Punct(',') if vd == 0 => break,
                            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => vd += 1,
                            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => vd -= 1,
                            _ => {}
                        }
                        v += 1;
                    }
                    if !field.starts_with("sealed_") {
                        let taint = self.eval(k + 2, v);
                        self.note_sink(
                            &taint,
                            self.tokens[k].line,
                            &format!("payload field `{type_name}.{field}`"),
                            k + 2,
                            v,
                        );
                    }
                    k = v;
                    continue;
                }
                _ => {}
            }
            k += 1;
        }
        close
    }

    /// Records a sink hit: a real origin becomes a finding (reporting
    /// pass); parameter taint becomes summary bits (summary pass).
    fn note_sink(&mut self, taint: &Taint, line: u32, what: &str, lo: usize, hi: usize) {
        if !taint.is_tainted() {
            return;
        }
        for &p in &taint.params {
            self.param_to_sink[p] = true;
        }
        if taint.params.iter().any(|&p| self.param_to_sink[p]) && self.sink_via.is_empty() {
            self.sink_via = vec![self.def().qualified()];
        }
        if let Some((origin, oline)) = &taint.origin {
            if self.summary_mode {
                return;
            }
            // Direct mentions of secret-named identifiers at the sink are
            // the name-based rules' findings; the dataflow rule owns the
            // renamed/projected/derived flows.
            if self.direct_name_hit(lo, hi) {
                return;
            }
            let def = self.def();
            self.hits.push(TaintHit {
                file: def.file,
                line,
                message: format!(
                    "value tainted by {origin} (read at line {oline}) reaches {what} in \
                     `{}`; secrets must never reach formatted, traced, or serialized output",
                    def.qualified()
                ),
                chain: Vec::new(),
            });
        }
    }

    /// True if the sink argument range itself names a secret ident —
    /// that exact token is what `secret-format-leak` already flags.
    fn direct_name_hit(&self, lo: usize, hi: usize) -> bool {
        self.tokens[lo..hi.min(self.tokens.len())].iter().any(|t| {
            t.ident()
                .is_some_and(|id| self.cfg.secret_idents.contains(&id))
        })
    }

    fn note_return(&mut self, taint: &Taint) {
        for &p in &taint.params {
            self.param_to_return[p] = true;
        }
        if taint.origin.is_some() {
            self.returns_secret = true;
        }
    }

    /// Argument ranges of the call opening at `open` (a `(`), split on
    /// depth-0 commas.
    fn arg_ranges(&self, open: usize) -> Vec<(usize, usize)> {
        let Some(close) = match_brace(self.tokens, open) else {
            return Vec::new();
        };
        let mut args = Vec::new();
        let mut depth = 0i32;
        let mut start = open + 1;
        for k in open + 1..close - 1 {
            match self.tokens[k].tok {
                Tok::Punct(',') if depth == 0 => {
                    if start < k {
                        args.push((start, k));
                    }
                    start = k + 1;
                }
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                _ => {}
            }
        }
        if start < close - 1 {
            args.push((start, close - 1));
        }
        args
    }

    /// At a resolved call site: tainted arguments against the callee's
    /// summary. A tainted arg into a param that reaches a sink is the
    /// interprocedural finding; propagation into the receiver handles
    /// `out.push(tainted)`.
    fn check_call(&mut self, site: &CallSite) {
        if self.cfg.taint_sanitizers.contains(&site.name.as_str()) {
            return;
        }
        let args = self.arg_ranges(site.args_open);
        // Receiver propagation for collection writers.
        if PROPAGATING_METHODS.contains(&site.name.as_str())
            && site.tok >= 2
            && self.tokens[site.tok - 1].is_punct('.')
        {
            if let Some(Tok::Ident(recv)) = self.tokens.get(site.tok - 2).map(|t| &t.tok) {
                let mut all = Taint::default();
                for &(lo, hi) in &args {
                    all.merge(&self.eval(lo, hi));
                }
                if all.is_tainted() {
                    let mut merged = self.state.get(recv).cloned().unwrap_or_default();
                    merged.merge(&all);
                    self.state.insert(recv.clone(), merged);
                }
            }
        }
        for (k, &(lo, hi)) in args.iter().enumerate() {
            let taint = self.eval(lo, hi);
            if !taint.is_tainted() {
                continue;
            }
            for &callee in &site.callees {
                let summary = &self.summaries[callee];
                if !summary.param_to_sink.get(k).copied().unwrap_or(false) {
                    continue;
                }
                for &p in &taint.params {
                    self.param_to_sink[p] = true;
                }
                if !taint.params.is_empty() && self.sink_via.is_empty() {
                    let mut via = vec![self.def().qualified()];
                    via.extend(summary.sink_via.iter().take(5).cloned());
                    self.sink_via = via;
                }
                if let Some((origin, oline)) = &taint.origin {
                    if self.summary_mode {
                        break;
                    }
                    let def = self.def();
                    let callee_name = self.analysis.symbols.fns[callee].qualified();
                    let mut chain = vec![def.qualified()];
                    chain.extend(summary.sink_via.iter().take(5).cloned());
                    self.hits.push(TaintHit {
                        file: def.file,
                        line: site.line,
                        message: format!(
                            "value tainted by {origin} (read at line {oline}) is passed to \
                             `{callee_name}`, which lets it reach a format/trace/payload sink \
                             (call chain: {})",
                            chain.join(" -> "),
                        ),
                        chain,
                    });
                }
                break;
            }
        }
    }

    /// Evaluates the taint of the expression in `[lo, hi)`.
    fn eval(&mut self, lo: usize, hi: usize) -> Taint {
        let hi = hi.min(self.tokens.len());
        let mut taint = Taint::default();
        let mut i = lo;
        while i < hi {
            let Tok::Ident(id) = &self.tokens[i].tok else {
                i += 1;
                continue;
            };
            // A sanitizer call launders everything inside its arguments.
            if self.cfg.taint_sanitizers.contains(&id.as_str())
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                i = match_brace(self.tokens, i + 1).unwrap_or(i + 2);
                continue;
            }
            // A struct literal boxes values into fields. Field-insensitive
            // tracking cannot say *which* field carries the taint, so the
            // constructed value is clean here: reads of registered secret
            // fields re-taint at projection time, payload-literal sinks
            // are checked in the statement scan, and Debug-printing a
            // container is `secret-debug-derive`'s beat. Without this,
            // every `Report { … }` return taints its whole caller.
            if id.chars().next().is_some_and(char::is_uppercase)
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('{'))
            {
                i = match_brace(self.tokens, i + 1).unwrap_or(i + 2);
                continue;
            }
            // A resolved call: taint from summaries + tainted args.
            if let Some(site) = self.sites.get(&i).copied() {
                if self.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    let is_method = i > 0 && self.tokens[i - 1].is_punct('.');
                    if !is_method {
                        let t = self.call_taint(site);
                        taint.merge(&t);
                        i = match_brace(self.tokens, i + 1).unwrap_or(i + 2);
                        continue;
                    }
                }
            }
            // A value chain: base ident, then field projections / method
            // calls.
            let (t, next) = self.chain_taint(i, hi);
            taint.merge(&t);
            i = next.max(i + 1);
        }
        taint
    }

    /// Return-value taint of a call per the callee summaries.
    fn call_taint(&mut self, site: &CallSite) -> Taint {
        let mut taint = Taint::default();
        let args = self.arg_ranges(site.args_open);
        for &callee in &site.callees {
            if self.summaries[callee].returns_secret {
                let name = self.analysis.symbols.fns[callee].qualified();
                taint.merge(&Taint {
                    origin: Some((format!("the return of `{name}`"), site.line)),
                    params: Vec::new(),
                });
            }
        }
        for (k, &(lo, hi)) in args.iter().enumerate() {
            let at = self.eval(lo, hi);
            if !at.is_tainted() {
                continue;
            }
            if site.callees.iter().any(|&c| {
                self.summaries[c]
                    .param_to_return
                    .get(k)
                    .copied()
                    .unwrap_or(false)
            }) {
                taint.merge(&at);
            }
        }
        taint
    }

    /// Taint of the access chain starting at ident `i`: `base`, then any
    /// `.field` / `.method(…)` links. Returns (taint, index past chain).
    fn chain_taint(&mut self, i: usize, hi: usize) -> (Taint, usize) {
        let Tok::Ident(base) = &self.tokens[i].tok else {
            return (Taint::default(), i + 1);
        };
        let def = self.def();
        let mut cur_taint = self.state.get(base.as_str()).cloned().unwrap_or_default();
        if cur_taint.origin.is_none() && self.cfg.secret_idents.contains(&base.as_str()) {
            cur_taint.origin = Some((format!("`{base}`"), self.tokens[i].line));
        }
        let mut cur_type: Option<String> = if base == "self" {
            def.self_type.clone()
        } else {
            self.env.ty_of(base)
        };
        let mut j = i + 1;
        while j + 1 < hi {
            if !self.tokens[j].is_punct('.') {
                break;
            }
            let Some(member) = self.tokens[j + 1].ident().map(str::to_owned) else {
                break;
            };
            let is_call = self.tokens.get(j + 2).is_some_and(|t| t.is_punct('('));
            if is_call {
                if self.cfg.taint_sanitizers.contains(&member.as_str()) {
                    // `.len()`, `.mac(…)`: the result is public.
                    cur_taint = Taint::default();
                    cur_type = None;
                } else if let Some(site) = self.sites.get(&(j + 1)).copied() {
                    // Method with a resolved callee: fold in its summary.
                    let t = self.call_taint(site);
                    cur_taint.merge(&t);
                    cur_type = None;
                } else {
                    // Unknown method on a tainted value: taint persists
                    // (`.clone()`, `.to_vec()`, iterator adapters).
                    cur_type = None;
                }
                j = match_brace(self.tokens, j + 2).unwrap_or(j + 3);
            } else {
                // Field projection: a registered secret field is a
                // source; projections of tainted values stay tainted.
                if let Some(ty) = &cur_type {
                    if self
                        .cfg
                        .secret_fields
                        .iter()
                        .any(|(t, f)| t == ty && *f == member)
                    {
                        cur_taint.merge(&Taint {
                            origin: Some((
                                format!("secret field `{ty}.{member}`"),
                                self.tokens[j + 1].line,
                            )),
                            params: Vec::new(),
                        });
                    }
                    cur_type = self
                        .analysis
                        .symbols
                        .field_ty(ty, &member)
                        .and_then(first_nominal);
                } else {
                    cur_type = None;
                }
                j += 2;
            }
        }
        (cur_taint, j)
    }
}

/// First non-shell identifier of a declared type.
fn first_nominal(ty: &[String]) -> Option<String> {
    const SHELLS: &[&str] = &[
        "mut", "dyn", "Box", "Rc", "Arc", "RefCell", "Cell", "Option",
    ];
    ty.iter().find(|t| !SHELLS.contains(&t.as_str())).cloned()
}

/// Index of the first depth-0 `,` strictly inside the group opened at
/// `open` (closing at `close`), if any.
fn first_top_comma(tokens: &[Token], open: usize, close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().take(close).skip(open + 1) {
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}
