//! Family 3b — storage sync discipline.
//!
//! Group commit buffers journal appends; the sync barrier is what makes
//! them durable. A handler that reaches its reply gate (`pre_reply_crash`)
//! without first passing a sync point would acknowledge a record the disk
//! may still lose — the one ordering bug the whole journal-then-apply
//! design exists to prevent, and one that no test catches until a fault
//! schedule happens to land on the gap. This rule makes the ordering
//! mechanical: in the durable-state file, every function that calls a
//! reply marker must have called a sync marker earlier in its body
//! (`journal_append` counts: it ends in the shard sync barrier).

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::Tok;
use crate::model::{fn_spans, SourceFile};

pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !file.rel_path.contains(cfg.durable_file) {
        return;
    }
    let tokens = file.tokens();
    for span in fn_spans(tokens) {
        // The definitions of the markers themselves are not call sites.
        if cfg.reply_markers.contains(&span.name.as_str())
            || cfg.sync_markers.contains(&span.name.as_str())
        {
            continue;
        }
        let mut synced = false;
        for i in span.body_start..span.end {
            let Tok::Ident(id) = &tokens[i].tok else {
                continue;
            };
            if !super::preceded_by_dot(tokens, i)
                || !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                continue;
            }
            if cfg.sync_markers.contains(&id.as_str()) {
                synced = true;
            } else if cfg.reply_markers.contains(&id.as_str()) && !synced {
                out.push(Finding::new(
                    "storage-sync-before-reply",
                    &file.rel_path,
                    tokens[i].line,
                    format!(
                        "`{}` reaches the reply gate `.{id}()` without an earlier sync \
                         point ({}); a reply must never leave before the record behind \
                         it is durably synced",
                        span.name,
                        cfg.sync_markers.join("/"),
                    ),
                ));
                break; // one finding per function
            }
        }
    }
}
