//! Family 2 — determinism.
//!
//! The whole simulation is seed-deterministic: same seed, byte-identical
//! reports and traces (`first_divergence` depends on it, and so does every
//! "same-seed" regression test). These rules keep the two classic leak
//! vectors out:
//!
//! * `wall-clock` / `os-thread` / `os-random` — `std::time::{Instant,
//!   SystemTime}`, OS threads, and OS randomness inject real-world
//!   nondeterminism. Bench binaries that *measure* wall-clock time waive
//!   each use individually, so the rule stays strict for `trust_core`.
//! * `unordered-iteration` — iterating a `HashMap`/`HashSet` field inside
//!   a snapshot/digest/export function leaks randomized iteration order
//!   into canonical output (the exact bug PR 4 fixed in `attack_matrix`).
//!   Iterations that are visibly sorted within the next few statements are
//!   accepted.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{Tok, Token};
use crate::model::{fn_spans, struct_fields, type_items, SourceFile};

/// Identifiers that mean "the OS random number generator".
const OS_RANDOM: &[&str] = &[
    "OsRng",
    "ThreadRng",
    "thread_rng",
    "getrandom",
    "from_entropy",
];

/// How many tokens past an unordered iteration to look for a `sort`: the
/// collect-into-`Vec`-then-`sort_by` idiom lands well inside this window.
const SORT_LOOKAHEAD: usize = 48;

pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !file.under_any(&cfg.deterministic) {
        return;
    }
    let tokens = file.tokens();

    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        match id {
            "Instant" | "SystemTime" => out.push(Finding::new(
                "wall-clock",
                &file.rel_path,
                t.line,
                format!(
                    "`{id}` reads the wall clock; sim code must use `SimClock`/`SimDuration` \
                     so same-seed runs stay byte-identical"
                ),
            )),
            // The shard worker pool is the one sanctioned `std::thread`
            // home: it runs whole-shard simulations outside the sim core
            // and merges results by logical time, so OS scheduling never
            // reaches sim state. Everywhere else the rule stands.
            "thread" if std_thread(tokens, i) && !file.under_any(&cfg.thread_pool_files) => out
                .push(Finding::new(
                    "os-thread",
                    &file.rel_path,
                    t.line,
                    "`std::thread` introduces OS scheduling nondeterminism; the sim is \
                     single-threaded by design (only the shard worker pool is exempt)"
                        .to_owned(),
                )),
            id if OS_RANDOM.contains(&id) => out.push(Finding::new(
                "os-random",
                &file.rel_path,
                t.line,
                format!(
                    "`{id}` draws OS randomness; all entropy must flow from the experiment \
                     seed (`SimRng`/`ChaChaEntropy`)"
                ),
            )),
            _ => {}
        }
    }

    unordered_iteration(file, cfg, out);
}

/// `std :: thread` or `thread :: spawn`.
fn std_thread(tokens: &[Token], i: usize) -> bool {
    let before_std = i >= 3
        && tokens[i - 3].is_ident("std")
        && tokens[i - 2].is_punct(':')
        && tokens[i - 1].is_punct(':');
    let after_spawn = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident("spawn"));
    before_std || after_spawn
}

fn unordered_iteration(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let tokens = file.tokens();

    // Struct fields whose declared type mentions HashMap/HashSet.
    let mut hash_fields: Vec<String> = Vec::new();
    for item in type_items(tokens) {
        let Some(body) = item.body else { continue };
        if !item.is_struct {
            continue;
        }
        for f in struct_fields(tokens, body) {
            if f.ty.iter().any(|t| t == "HashMap" || t == "HashSet") {
                hash_fields.push(f.name);
            }
        }
    }
    if hash_fields.is_empty() {
        return;
    }

    for span in fn_spans(tokens) {
        let lower = span.name.to_lowercase();
        if !cfg.ordered_fn_markers.iter().any(|m| lower.contains(m)) {
            continue;
        }
        for i in span.body_start..span.end.min(tokens.len()) {
            let Tok::Ident(id) = &tokens[i].tok else {
                continue;
            };
            if !hash_fields.iter().any(|f| f == id) || !super::preceded_by_dot(tokens, i) {
                continue;
            }
            let iterates = ["iter", "keys", "values", "values_mut", "iter_mut"]
                .iter()
                .any(|m| super::calls_method(tokens, i + 1, m));
            if !iterates {
                continue;
            }
            let sorted_soon = tokens[i..tokens.len().min(i + SORT_LOOKAHEAD)]
                .iter()
                .any(|t| matches!(t.ident(), Some(s) if s.contains("sort")));
            if !sorted_soon {
                out.push(Finding::new(
                    "unordered-iteration",
                    &file.rel_path,
                    tokens[i].line,
                    format!(
                        "`.{id}` (a HashMap/HashSet field) is iterated inside `{}` without a \
                         visible sort; canonical output must not depend on hash order",
                        span.name
                    ),
                ));
            }
        }
    }
}
