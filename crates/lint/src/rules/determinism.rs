//! Family 2 — determinism (direct rules).
//!
//! The whole simulation is seed-deterministic: same seed, byte-identical
//! reports and traces (`first_divergence` depends on it, and so does every
//! "same-seed" regression test). These rules flag the classic leak vectors
//! at their use sites:
//!
//! * `wall-clock` — `std::time::{Instant, SystemTime}` inject real time.
//!   Scoped to [`Config::wall_clock_paths`]: bench binaries *measure* wall
//!   time, so they are excluded here — the `determinism-reach` rule
//!   (`super::reach`) still guarantees nothing sim-reachable touches the
//!   clock, wherever it lives.
//! * `os-thread` / `os-random` — OS scheduling and OS entropy, forbidden
//!   everywhere deterministic ([`Config::deterministic`]) except the
//!   sanctioned shard worker pool (`thread_pool_files`).
//!
//! `unordered-iteration` lives in `super::order` as a dataflow rule.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::Token;
use crate::model::SourceFile;

/// Identifiers that mean "the OS random number generator".
pub(crate) const OS_RANDOM: &[&str] = &[
    "OsRng",
    "ThreadRng",
    "thread_rng",
    "getrandom",
    "from_entropy",
];

pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !file.under_any(&cfg.deterministic) {
        return;
    }
    let clock_scope = file.under_any(&cfg.wall_clock_paths);
    let tokens = file.tokens();

    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        match id {
            "Instant" | "SystemTime" if clock_scope => out.push(Finding::new(
                "wall-clock",
                &file.rel_path,
                t.line,
                format!(
                    "`{id}` reads the wall clock; sim code must use `SimClock`/`SimDuration` \
                     so same-seed runs stay byte-identical"
                ),
            )),
            // The shard worker pool is the one sanctioned `std::thread`
            // home: it runs whole-shard simulations outside the sim core
            // and merges results by logical time, so OS scheduling never
            // reaches sim state. Everywhere else the rule stands.
            "thread" if std_thread(tokens, i) && !file.under_any(&cfg.thread_pool_files) => out
                .push(Finding::new(
                    "os-thread",
                    &file.rel_path,
                    t.line,
                    "`std::thread` introduces OS scheduling nondeterminism; the sim is \
                     single-threaded by design (only the shard worker pool is exempt)"
                        .to_owned(),
                )),
            id if OS_RANDOM.contains(&id) => out.push(Finding::new(
                "os-random",
                &file.rel_path,
                t.line,
                format!(
                    "`{id}` draws OS randomness; all entropy must flow from the experiment \
                     seed (`SimRng`/`ChaChaEntropy`)"
                ),
            )),
            _ => {}
        }
    }
}

/// `std :: thread` or `thread :: spawn`.
pub(crate) fn std_thread(tokens: &[Token], i: usize) -> bool {
    let before_std = i >= 3
        && tokens[i - 3].is_ident("std")
        && tokens[i - 2].is_punct(':')
        && tokens[i - 1].is_punct(':');
    let after_spawn = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident("spawn"));
    before_std || after_spawn
}
