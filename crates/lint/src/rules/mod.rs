//! The rule families. Each rule takes a [`SourceFile`] plus the
//! [`Config`] and appends [`Finding`]s; the engine applies waivers
//! afterwards so every rule stays waiver-oblivious.

pub mod determinism;
pub mod journal;
pub mod order;
pub mod parity;
pub mod reach;
pub mod secret;
pub mod storage;
pub mod taint;
pub mod telemetry;

use crate::config::Config;
use crate::dataflow::Analysis;
use crate::findings::Finding;
use crate::lexer::Token;
use crate::model::SourceFile;

/// Runs every single-file rule family over one file.
pub fn run_all(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    secret::check(file, cfg, out);
    determinism::check(file, cfg, out);
    journal::check(file, cfg, out);
    storage::check(file, cfg, out);
    parity::check(file, cfg, out);
    telemetry::check(file, cfg, out);
}

/// Runs the workspace-level dataflow rules: one symbol table + call
/// graph + summary fixpoint over *all* files, then the three flow rules.
pub fn run_workspace(files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
    let analysis = Analysis::build(files, cfg);
    taint::check(&analysis, cfg, out);
    reach::check(files, &analysis, cfg, out);
    order::check(files, &analysis, cfg, out);
}

/// True if token `i` is a field/method access: the previous token is `.`.
pub(crate) fn preceded_by_dot(tokens: &[Token], i: usize) -> bool {
    i > 0 && tokens[i - 1].is_punct('.')
}

/// True if `tokens[i..]` begins `. <name> (` — a call of `name` on the
/// value ending at `i - 1`.
pub(crate) fn calls_method(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct('.'))
        && tokens.get(i + 1).is_some_and(|t| t.is_ident(name))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
}

/// True if the tokens immediately after index `i` spell an assignment to
/// the value ending at `i`: `=` (not `==`) or a compound `+=`, `-=`, etc.
pub(crate) fn assigned_after(tokens: &[Token], i: usize) -> bool {
    match tokens.get(i + 1) {
        Some(t) if t.is_punct('=') => !tokens.get(i + 2).is_some_and(|t| t.is_punct('=')),
        Some(t)
            if ['+', '-', '*', '/', '%', '|', '&', '^']
                .iter()
                .any(|c| t.is_punct(*c)) =>
        {
            tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
        }
        _ => false,
    }
}
