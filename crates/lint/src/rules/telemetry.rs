//! Family 6 — telemetry registration discipline.
//!
//! Every instrument in the [`trust_core::telemetry`] registry carries a
//! `source` string naming where its samples come from (`"trace:Send"`,
//! `"probe:WebServer::is_degraded"`, `"hook:WebServer::observe_risk"`):
//! that annotation is what lets the reconciliation gate tie each series
//! back to the event stream or probe that feeds it. A registration that
//! passes a computed name or source defeats the audit — nobody can grep
//! the fleet dashboard back to its feeding code.
//!
//! This rule requires every `register_counter` / `register_gauge` /
//! `register_histogram` *call site* to pass at least two string literals
//! at the argument list's top level — the metric name and the sampling
//! source. The registry's own forwarding shims (functions themselves
//! named `register_*`, which relay `name`/`source` parameters) are
//! exempt; a reasoned waiver covers any legitimately dynamic site.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{Tok, Token};
use crate::model::{enclosing_fn, fn_spans, SourceFile};

pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !file.under_any(&cfg.telemetry_paths) {
        return;
    }
    let tokens = file.tokens();
    let spans = fn_spans(tokens);

    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        if !cfg.telemetry_register_fns.contains(&id.as_str()) {
            continue;
        }
        // A call site is `register_*(`; `fn register_*(` is the
        // definition of the plumbing itself.
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if i > 0 && tokens[i - 1].is_ident("fn") {
            continue;
        }
        // Forwarding shims (`Telemetry::register_counter` relaying to the
        // registry) pass parameters, not literals — exempt by fn name.
        if enclosing_fn(&spans, i)
            .is_some_and(|owner| cfg.telemetry_register_fns.contains(&owner.name.as_str()))
        {
            continue;
        }
        if top_level_str_args(tokens, i + 1) < 2 {
            out.push(Finding::new(
                "telemetry-parity",
                &file.rel_path,
                t.line,
                format!(
                    "`{id}` registers an instrument without literal name + sampling \
                     source; pass the metric name and a `\"trace:…\"` / `\"probe:…\"` / \
                     `\"hook:…\"` source string so the series stays auditable against \
                     its feeding code"
                ),
            ));
        }
    }
}

/// Counts string literals at depth 1 of the parenthesized argument list
/// opening at `open` (which must index a `(`).
fn top_level_str_args(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut count = 0;
    for t in &tokens[open..] {
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Str if depth == 1 => count += 1,
            _ => {}
        }
    }
    count
}
