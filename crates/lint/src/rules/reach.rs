//! `determinism-reach` — transitive determinism over the call graph.
//!
//! The direct `wall-clock`/`os-random`/`os-thread` rules flag primitive
//! uses *where they occur*, and are path-scoped: bench binaries are
//! allowed to read the wall clock because wall time is their product.
//! That leaves a gap the paper's same-seed guarantee cannot tolerate: a
//! sim entry point calling (through any number of hops) into code that
//! reads the clock, draws OS randomness, or spawns OS threads — perhaps
//! in a file the direct rules exempt.
//!
//! This rule closes it with reachability: every fn transitively callable
//! from a sim entry ([`Config::sim_entry_types`] methods and
//! [`Config::sim_entry_fns`]) must be primitive-free, wherever it lives
//! (`thread_pool_files` keeps its `std::thread` sanction — the shard
//! pool erases scheduling order by construction). Each finding carries
//! the full entry-to-primitive call chain so the fix site is obvious.

use crate::config::Config;
use crate::dataflow::Analysis;
use crate::findings::Finding;
use crate::lexer::Tok;
use crate::model::SourceFile;

pub fn check(files: &[SourceFile], analysis: &Analysis<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    let symbols = &analysis.symbols;
    let entries: Vec<usize> = symbols
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.self_type
                .as_deref()
                .is_some_and(|t| cfg.sim_entry_types.contains(&t))
                || cfg.sim_entry_fns.contains(&f.name.as_str())
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return;
    }
    let parent = analysis.graph.reachable_from(&entries);

    for (fn_idx, def) in symbols.fns.iter().enumerate() {
        if parent[fn_idx].is_none() {
            continue;
        }
        let file = &files[def.file];
        let tokens = file.tokens();
        let in_pool = file.under_any(&cfg.thread_pool_files);
        // One finding per (primitive kind, line) inside this fn.
        let mut last: Option<(&str, u32)> = None;
        for i in def.span.body_start..def.span.end.min(tokens.len()) {
            if symbols.fn_at(def.file, i) != Some(fn_idx) {
                continue;
            }
            let Tok::Ident(id) = &tokens[i].tok else {
                continue;
            };
            let what = match id.as_str() {
                "Instant" | "SystemTime" => Some("reads the wall clock"),
                id if super::determinism::OS_RANDOM.contains(&id) => Some("draws OS randomness"),
                "thread" if super::determinism::std_thread(tokens, i) && !in_pool => {
                    Some("spawns OS threads")
                }
                _ => None,
            };
            let Some(what) = what else { continue };
            if last == Some((what, tokens[i].line)) {
                continue;
            }
            last = Some((what, tokens[i].line));
            let chain = analysis.graph.chain(symbols, &parent, fn_idx);
            out.push(
                Finding::new(
                    "determinism-reach",
                    &file.rel_path,
                    tokens[i].line,
                    format!(
                        "`{}` {what} (`{id}`) and is transitively reachable from sim entry \
                         `{}`; same-seed runs cannot stay byte-identical (call chain: {})",
                        def.qualified(),
                        chain.first().cloned().unwrap_or_default(),
                        chain.join(" -> "),
                    ),
                )
                .with_chain(chain),
            );
        }
    }
}
