//! Family 3 — journal discipline.
//!
//! Crash recovery is replay: `WebServer::recover` rebuilds durable state
//! by re-applying journal records through the same `apply_record` the live
//! handlers use. That only works if `apply_record` (and its helpers) are
//! the *only* code mutating durable shard fields — a handler that pokes a
//! shard directly creates state the journal cannot reproduce, which is a
//! silent crash-consistency bug. This rule makes the convention mechanical:
//! any mutation of a durable field outside the allowed functions is a
//! finding.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::Tok;
use crate::model::{enclosing_fn, fn_spans, SourceFile};

/// Methods that mutate the collection they are called on. `get_mut`,
/// `values_mut`, and `entry` hand out mutable access, which is the same
/// thing one call later.
const MUTATING_METHODS: &[&str] = &[
    "insert",
    "remove",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "clear",
    "drain",
    "retain",
    "extend",
    "append",
    "take",
    "get_mut",
    "values_mut",
    "iter_mut",
    "entry",
    "mark_consumed",
    "forget_consumed",
];

pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !file.rel_path.contains(cfg.durable_file) {
        return;
    }
    let tokens = file.tokens();
    let spans = fn_spans(tokens);

    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        if !cfg.durable_fields.contains(&id.as_str()) || !super::preceded_by_dot(tokens, i) {
            continue;
        }
        // Anchor on the receiver: `shard.accounts…` / `sh.accounts…` /
        // `…shards[idx].accounts…`. An unrelated struct that happens to
        // share a field name (`st.sessions += …`) is not durable state.
        let receiver_ok = i >= 2
            && (tokens[i - 2].is_punct(']')
                || tokens[i - 2]
                    .ident()
                    .is_some_and(|r| cfg.durable_receivers.contains(&r)));
        if !receiver_ok {
            continue;
        }
        let mutated = assigned_or_mut_call(tokens, i);
        if !mutated {
            continue;
        }
        let owner = enclosing_fn(&spans, i);
        if owner.is_some_and(|f| cfg.durable_mutators.contains(&f.name.as_str())) {
            continue;
        }
        let where_ = owner.map_or("item scope".to_owned(), |f| format!("`{}`", f.name));
        out.push(Finding::new(
            "journal-discipline",
            &file.rel_path,
            t.line,
            format!(
                "durable shard field `.{id}` mutated in {where_}; durable state may only \
                 change inside `apply_record` (journal-then-apply), or recovery replay \
                 cannot reproduce it"
            ),
        ));
    }
}

fn assigned_or_mut_call(tokens: &[crate::lexer::Token], i: usize) -> bool {
    if super::assigned_after(tokens, i) {
        return true;
    }
    MUTATING_METHODS
        .iter()
        .any(|m| super::calls_method(tokens, i + 1, m))
}
