//! `unordered-iteration`, rewritten as dataflow.
//!
//! The old rule looked 48 tokens past a `HashMap`/`HashSet` iteration
//! for anything spelled "sort" — which both under-approximated (a sort
//! 49 tokens later still counted as missing) and over-approximated (a
//! sort of an *unrelated* vector inside the window silenced it). Here
//! the iteration *taints the value*: taint follows let-bindings, loop
//! bindings, `push`/`extend`/`insert` into accumulators, `write!` into
//! buffers, and iterator chains, is laundered by a `.sort*()` on the
//! binding or a collect into a `BTreeMap`/`BTreeSet`, and only a fn
//! *return value* still tainted is a finding — hash order flowing into
//! snapshot/digest/export output, however far the flow travels.
//!
//! The rule stays scoped to fns whose names carry an
//! [`Config::ordered_fn_markers`] marker: those are the canonical-output
//! paths the byte-identical guarantee covers.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::dataflow::Analysis;
use crate::findings::Finding;
use crate::lexer::{Tok, Token};
use crate::model::{match_brace, struct_fields, type_items, SourceFile};
use crate::symbols::FnDef;

/// Methods that iterate a collection.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];

/// Methods that write an argument into their receiver.
const ACCUMULATORS: &[&str] = &["push", "insert", "extend", "append", "push_str"];

pub fn check(files: &[SourceFile], analysis: &Analysis<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    for (fn_idx, def) in analysis.symbols.fns.iter().enumerate() {
        let file = &files[def.file];
        if !file.under_any(&cfg.deterministic) {
            continue;
        }
        let lower = def.name.to_lowercase();
        if !cfg.ordered_fn_markers.iter().any(|m| lower.contains(m)) {
            continue;
        }
        // Without a return value there is no canonical output to corrupt.
        if def.ret_ty.is_empty() {
            continue;
        }
        let mut pass = OrderPass::new(file, def, fn_idx, analysis);
        pass.run();
        for (line, field) in pass.findings {
            out.push(Finding::new(
                "unordered-iteration",
                &file.rel_path,
                line,
                format!(
                    "`{field}` (a HashMap/HashSet) is iterated in `{}` and the result flows \
                     into its return value without a sort; canonical output must not depend \
                     on hash order",
                    def.name
                ),
            ));
        }
    }
}

/// Where one order-taint came from: the iteration site.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Origin {
    line: u32,
    name: String,
}

#[derive(Clone, Debug, Default, PartialEq)]
struct OrderTaint {
    origins: BTreeSet<Origin>,
}

impl OrderTaint {
    fn is_tainted(&self) -> bool {
        !self.origins.is_empty()
    }

    fn merge(&mut self, other: &OrderTaint) {
        self.origins.extend(other.origins.iter().cloned());
    }
}

struct OrderPass<'p> {
    tokens: &'p [Token],
    def: &'p FnDef,
    /// Struct fields (any struct in the file) with a hash-ordered type.
    hash_fields: BTreeSet<String>,
    /// Local variables currently holding a hash-ordered collection.
    hash_vars: BTreeSet<String>,
    /// Local variables currently carrying hash-order taint.
    state: BTreeMap<String, OrderTaint>,
    /// Iteration sites whose taint was laundered by a sort/BTree collect
    /// at *some* point in the walk. Expression evaluation is context-free
    /// (a tail expression rescans earlier tokens), so a laundered origin
    /// must stay laundered at the sink. Under-approximates when one
    /// iteration feeds two bindings and only one is sorted — documented
    /// in DESIGN §16.
    sanitized: BTreeSet<Origin>,
    findings: Vec<(u32, String)>,
}

impl<'p> OrderPass<'p> {
    fn new(
        file: &'p SourceFile,
        def: &'p FnDef,
        _fn_idx: usize,
        _analysis: &Analysis<'_>,
    ) -> OrderPass<'p> {
        let tokens = file.tokens();
        let mut hash_fields = BTreeSet::new();
        for item in type_items(tokens) {
            let Some(body) = item.body else { continue };
            if !item.is_struct {
                continue;
            }
            for f in struct_fields(tokens, body) {
                if is_hash_ty(&f.ty) {
                    hash_fields.insert(f.name);
                }
            }
        }
        let mut hash_vars = BTreeSet::new();
        for p in &def.params {
            if is_hash_ty(&p.ty) {
                hash_vars.insert(p.name.clone());
            }
        }
        OrderPass {
            tokens,
            def,
            hash_fields,
            hash_vars,
            state: BTreeMap::new(),
            sanitized: BTreeSet::new(),
            findings: Vec::new(),
        }
    }

    fn run(&mut self) {
        let end = self.def.span.end.min(self.tokens.len());
        let mut i = self.def.span.body_start + 1;
        while i + 1 < end {
            let t = &self.tokens[i];
            if t.is_ident("let") {
                i = self.handle_let(i, end);
                continue;
            }
            if t.is_ident("for") {
                i = self.handle_for(i, end);
                continue;
            }
            if t.is_ident("return") {
                let stop = self.stmt_end(i + 1, end);
                let taint = self.eval(i + 1, stop);
                self.sink(&taint);
                i += 1;
                continue;
            }
            // `acc.push(expr)` et al: taint flows into the accumulator.
            // `acc.sort*()` as a statement launders it.
            if t.is_punct('.') {
                if let (Some(Tok::Ident(recv)), Some(m)) = (
                    (i >= 1).then(|| &self.tokens[i - 1].tok),
                    self.tokens.get(i + 1).and_then(|t| t.ident()),
                ) {
                    let recv = recv.clone();
                    if self.tokens.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                        if m.contains("sort") {
                            if let Some(t) = self.state.remove(&recv) {
                                self.sanitized.extend(t.origins);
                            }
                        } else if ACCUMULATORS.contains(&m) {
                            let close = match_brace(self.tokens, i + 2).unwrap_or(i + 3);
                            let taint = self.eval(i + 3, close - 1);
                            if taint.is_tainted() {
                                self.state.entry(recv).or_default().merge(&taint);
                            }
                        }
                    }
                }
            }
            // `write!(buf, …, tainted)` taints the buffer.
            if let Some(id) = t.ident() {
                if (id == "write" || id == "writeln")
                    && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && self.tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
                {
                    if let Some(close) = match_brace(self.tokens, i + 2) {
                        let taint = self.eval(i + 3, close - 1);
                        if taint.is_tainted() {
                            if let Some(Tok::Ident(buf)) = self.tokens.get(i + 3).map(|t| &t.tok) {
                                let buf = buf.clone();
                                self.state.entry(buf).or_default().merge(&taint);
                            }
                        }
                        i = close;
                        continue;
                    }
                }
            }
            i += 1;
        }
        // The tail expression is the return value.
        if let Some((lo, hi)) = self.tail_range(self.def.span.body_start, end) {
            let taint = self.eval(lo, hi);
            self.sink(&taint);
        }
    }

    fn sink(&mut self, taint: &OrderTaint) {
        for origin in &taint.origins {
            if self.sanitized.contains(origin) {
                continue;
            }
            if !self.findings.iter().any(|(l, _)| *l == origin.line) {
                self.findings.push((origin.line, origin.name.clone()));
            }
        }
    }

    fn handle_let(&mut self, let_idx: usize, end: usize) -> usize {
        let mut j = let_idx + 1;
        let mut pat = Vec::new();
        let mut ty: Vec<String> = Vec::new();
        let mut in_ty = false;
        let mut depth = 0i32;
        let mut eq = None;
        while j < end {
            match &self.tokens[j].tok {
                Tok::Punct('=') if depth == 0 && !self.tokens[j + 1].is_punct('=') => {
                    eq = Some(j);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                Tok::Punct(':') if depth == 0 => in_ty = true,
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Ident(id) if in_ty => ty.push(id.clone()),
                Tok::Ident(id) if id != "mut" && id != "ref" => pat.push(id.clone()),
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else {
            return j + 1;
        };
        let stop = self.stmt_end(eq + 1, end);
        let taint = self.eval(eq + 1, stop);
        // An annotated BTree binding is ordered whatever fed it; an
        // annotated hash binding becomes a future iteration source.
        let btree_bound = ty.iter().any(|t| t == "BTreeMap" || t == "BTreeSet");
        if btree_bound {
            self.sanitized.extend(taint.origins.iter().cloned());
        }
        for name in pat {
            if is_hash_ty(&ty) || rhs_is_hash_ctor(self.tokens, eq + 1) {
                self.hash_vars.insert(name.clone());
            }
            if taint.is_tainted() && !btree_bound {
                self.state.insert(name, taint.clone());
            } else {
                self.state.remove(&name);
            }
        }
        eq + 1
    }

    fn handle_for(&mut self, for_idx: usize, end: usize) -> usize {
        let mut j = for_idx + 1;
        let mut pat = Vec::new();
        let mut in_tok = None;
        let mut depth = 0i32;
        while j < end {
            match &self.tokens[j].tok {
                Tok::Ident(id) if id == "in" && depth == 0 => {
                    in_tok = Some(j);
                    break;
                }
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Ident(id) if id != "mut" && id != "ref" => pat.push(id.clone()),
                _ => {}
            }
            j += 1;
        }
        let Some(in_tok) = in_tok else { return j };
        let mut k = in_tok + 1;
        let mut depth = 0i32;
        while k < end {
            match self.tokens[k].tok {
                Tok::Punct('{') if depth == 0 => break,
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let taint = self.eval(in_tok + 1, k);
        for name in pat {
            if taint.is_tainted() {
                self.state.insert(name, taint.clone());
            } else {
                self.state.remove(&name);
            }
        }
        in_tok + 1
    }

    /// Taint of the expression in `[lo, hi)`: iteration of a hash
    /// collection is a source; mentions of tainted bindings propagate; a
    /// `.sort*` / BTree collect in the chain launders.
    fn eval(&mut self, lo: usize, hi: usize) -> OrderTaint {
        let hi = hi.min(self.tokens.len());
        let mut taint = OrderTaint::default();
        let mut i = lo;
        while i < hi {
            let Tok::Ident(id) = &self.tokens[i].tok else {
                i += 1;
                continue;
            };
            let mut cur = OrderTaint::default();
            // Source: a hash field/var being iterated (`self.pages.iter()`,
            // `for k in &m`, `m.keys()`).
            let is_hash = (self.hash_fields.contains(id.as_str())
                && super::preceded_by_dot(self.tokens, i))
                || self.hash_vars.contains(id.as_str());
            if is_hash {
                let iterated = ITER_METHODS
                    .iter()
                    .any(|m| super::calls_method(self.tokens, i + 1, m))
                    || in_for_header(self.tokens, lo, i);
                if iterated {
                    cur.origins.insert(Origin {
                        line: self.tokens[i].line,
                        name: id.clone(),
                    });
                }
            }
            if let Some(t) = self.state.get(id.as_str()) {
                cur.merge(&t.clone());
            }
            // Walk the method chain: a hash field deeper in the chain
            // (`self.pages.iter()`) is a source; any `.sort*`/BTree
            // collect launders.
            let mut j = i + 1;
            while j + 1 < hi {
                if self.tokens[j].is_punct('.') {
                    if let Some(m) = self.tokens[j + 1].ident() {
                        if self.tokens.get(j + 2).is_some_and(|t| t.is_punct('(')) {
                            if m.contains("sort") || is_btree_collect(self.tokens, j + 1) {
                                self.sanitized.extend(std::mem::take(&mut cur.origins));
                            }
                            j = match_brace(self.tokens, j + 2).unwrap_or(j + 3);
                            continue;
                        }
                        // Turbofish between name and `(`.
                        if self.tokens.get(j + 2).is_some_and(|t| t.is_punct(':')) {
                            if is_btree_collect(self.tokens, j + 1) {
                                self.sanitized.extend(std::mem::take(&mut cur.origins));
                            }
                            j += 2;
                            continue;
                        }
                        // Field access: `self.pages.iter()` / `for k in
                        // &self.pages {` (chain ends at the loop body).
                        if self.hash_fields.contains(m) {
                            let iterated = ITER_METHODS
                                .iter()
                                .any(|im| super::calls_method(self.tokens, j + 2, im))
                                || (j + 2 >= hi && in_for_header(self.tokens, lo, i));
                            if iterated {
                                cur.origins.insert(Origin {
                                    line: self.tokens[j + 1].line,
                                    name: m.to_owned(),
                                });
                            }
                        }
                        j += 2;
                        continue;
                    }
                }
                break;
            }
            taint.merge(&cur);
            i = j.max(i + 1);
        }
        taint
    }

    fn stmt_end(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        for k in from..end {
            match self.tokens[k].tok {
                Tok::Punct(';') if depth == 0 => return k,
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    if depth == 0 {
                        return k;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        end
    }

    fn tail_range(&self, body_start: usize, end: usize) -> Option<(usize, usize)> {
        let mut depth = 0i32;
        let mut last_break = body_start;
        for k in body_start + 1..end.saturating_sub(1) {
            match self.tokens[k].tok {
                Tok::Punct(';') if depth == 0 => last_break = k,
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                _ => {}
            }
        }
        (last_break + 1 < end.saturating_sub(1)).then_some((last_break + 1, end - 1))
    }
}

fn is_hash_ty(ty: &[String]) -> bool {
    ty.iter().any(|t| t == "HashMap" || t == "HashSet")
}

/// `let m = HashMap::new()` / `HashSet::from(…)` — constructor-evident.
fn rhs_is_hash_ctor(tokens: &[Token], rhs: usize) -> bool {
    tokens
        .get(rhs)
        .and_then(|t| t.ident())
        .is_some_and(|id| id == "HashMap" || id == "HashSet")
}

/// True when `i` sits in a `for … in <here> {` header whose `in` lies
/// between `lo` and `i` — direct iteration without an `.iter()` call.
fn in_for_header(tokens: &[Token], lo: usize, i: usize) -> bool {
    tokens[lo..i].iter().rev().take(4).any(|t| t.is_ident("in"))
        || (lo > 0
            && tokens[lo - 1..i]
                .iter()
                .rev()
                .take(5)
                .any(|t| t.is_ident("in")))
}

/// `collect::<BTreeMap<…>>` / turbofish at the `collect` ident.
fn is_btree_collect(tokens: &[Token], name_idx: usize) -> bool {
    if !tokens[name_idx].is_ident("collect") {
        return false;
    }
    tokens[name_idx + 1..tokens.len().min(name_idx + 8)]
        .iter()
        .any(|t| t.is_ident("BTreeMap") || t.is_ident("BTreeSet"))
}
