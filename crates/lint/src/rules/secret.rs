//! Family 1 — secret containment.
//!
//! TRUST's security argument is that key material, session keys, and
//! biometric templates never leave the FLock module / server internals
//! even though the host stack and network are untrusted. The type system
//! does not enforce that, so these rules do:
//!
//! * `secret-debug-derive` — a manifest type may not derive `Debug` (or
//!   implement `Display`): one stray `{:?}` would put the secret into a
//!   trace, journal, or panic message. Redacting manual impls are the fix.
//! * `secret-outside-trust` — globally unique secret types may only be
//!   named inside the trusted modules; anywhere else is a boundary crossing
//!   that must carry a waiver spelling out the threat model.
//! * `secret-format-leak` — identifiers that name raw secret values may
//!   not appear inside format-family macro arguments or trace-event
//!   payloads, in *any* module: trusted code is exactly where a stray
//!   `format!` does the most damage.
//! * `secret-payload-field` — wire-message and journal-record definitions
//!   may not carry secret-named fields or secret types unless the field is
//!   `sealed_`-prefixed (i.e. encrypted to a key that never left FLock).

use crate::config::Config;
// The sink definitions live with the dataflow core so the name-based
// rules here and `secret-taint` agree on what a sink is.
use crate::dataflow::{FORMAT_MACROS, TRACE_METHODS};
use crate::findings::Finding;
use crate::lexer::{Tok, Token};
use crate::model::{struct_fields, type_items, SourceFile};

pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let tokens = file.tokens();
    let items = type_items(tokens);
    let trusted = file.under_any(&cfg.trusted);

    // --- secret-debug-derive: on definitions of manifest types ----------
    for item in &items {
        let Some(secret) = cfg
            .secret_types
            .iter()
            .find(|s| s.name == item.name && file.rel_path.contains(s.defined_in))
        else {
            continue;
        };
        for bad in ["Debug", "Display"] {
            if item.derives.iter().any(|d| d == bad) {
                out.push(Finding::new(
                    "secret-debug-derive",
                    &file.rel_path,
                    item.derive_line,
                    format!(
                        "deriving `{bad}` on `{}` would print the secret ({}); \
                         write a redacting manual impl instead",
                        item.name, secret.why
                    ),
                ));
            }
        }
    }

    // `impl Display for <SecretType>` in the defining crate is the same
    // leak with extra steps (Display feeds `{}` and `.to_string()`).
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("Display") {
            continue;
        }
        // Look backwards a few tokens for `impl` and forwards for
        // `for <Name>` (allowing `fmt :: Display`).
        let back = tokens[i.saturating_sub(4)..i]
            .iter()
            .any(|t| t.is_ident("impl"));
        let (fore_for, name_tok) = match (tokens.get(i + 1), tokens.get(i + 2)) {
            (Some(f), Some(n)) if f.is_ident("for") => (true, n.ident()),
            _ => (false, None),
        };
        if back && fore_for {
            if let Some(name) = name_tok {
                if let Some(secret) = cfg
                    .secret_types
                    .iter()
                    .find(|s| s.name == name && crate_of(&file.rel_path) == crate_of(s.defined_in))
                {
                    out.push(Finding::new(
                        "secret-debug-derive",
                        &file.rel_path,
                        t.line,
                        format!(
                            "`impl Display for {name}` — {}; Display output \
                             ends up in logs and wire errors",
                            secret.why
                        ),
                    ));
                }
            }
        }
    }

    // --- secret-outside-trust: naming containment types ------------------
    if !trusted {
        let mut last_line = 0u32;
        for t in tokens {
            let Some(id) = t.ident() else { continue };
            let Some(secret) = cfg
                .secret_types
                .iter()
                .find(|s| s.containment && s.name == id)
            else {
                continue;
            };
            // One finding per line keeps a multi-use line to one waiver.
            if t.line == last_line {
                continue;
            }
            last_line = t.line;
            out.push(Finding::new(
                "secret-outside-trust",
                &file.rel_path,
                t.line,
                format!(
                    "`{id}` named outside the trusted modules ({}); secrets \
                     must stay behind the FLock boundary",
                    secret.why
                ),
            ));
        }
    }

    // --- secret-format-leak: secrets in format/trace argument positions --
    let mut i = 0usize;
    while i < tokens.len() {
        let group = format_group(tokens, i).or_else(|| trace_group(tokens, i));
        if let Some((open, close, what)) = group {
            let Some(end) = crate::model::match_brace(tokens, open) else {
                i += 1;
                continue;
            };
            let end = end.min(close);
            for t in &tokens[open + 1..end] {
                if let Tok::Ident(id) = &t.tok {
                    if cfg.secret_idents.contains(&id.as_str()) {
                        out.push(Finding::new(
                            "secret-format-leak",
                            &file.rel_path,
                            t.line,
                            format!("`{id}` passed to {what} — secret values must never reach formatted or traced output"),
                        ));
                    }
                }
            }
            i = end;
            continue;
        }
        i += 1;
    }

    // --- secret-payload-field: wire/journal definitions ------------------
    if file.under_any(&cfg.payload_files) {
        for item in &items {
            let Some(body) = item.body else { continue };
            if item.is_struct {
                for field in struct_fields(tokens, body) {
                    let named_secret = cfg.secret_idents.contains(&field.name.as_str())
                        && !field.name.starts_with("sealed_");
                    let typed_secret = field.ty.iter().any(|t| {
                        cfg.secret_types
                            .iter()
                            .any(|s| s.containment && s.name == *t)
                    });
                    if named_secret || typed_secret {
                        out.push(payload_finding(file, field.line, &item.name, &field.name));
                    }
                }
            } else {
                // Enum variants: scan the body for `name :` field patterns.
                for (k, t) in tokens[body.0..body.1].iter().enumerate() {
                    let k = k + body.0;
                    if let Tok::Ident(id) = &t.tok {
                        if cfg.secret_idents.contains(&id.as_str())
                            && !id.starts_with("sealed_")
                            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                            && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
                        {
                            out.push(payload_finding(file, t.line, &item.name, id));
                        }
                    }
                }
            }
        }
    }
}

fn payload_finding(file: &SourceFile, line: u32, item: &str, field: &str) -> Finding {
    Finding::new(
        "secret-payload-field",
        &file.rel_path,
        line,
        format!(
            "`{item}` carries secret field `{field}` in a serialized payload; \
             seal it (`sealed_*`) or keep it out of wire/journal records"
        ),
    )
}

/// If tokens at `i` start a format-family macro call (`name !` followed by
/// a delimiter), returns (delimiter index, hard stop, description).
fn format_group(tokens: &[Token], i: usize) -> Option<(usize, usize, String)> {
    let id = tokens[i].ident()?;
    if !FORMAT_MACROS.contains(&id) || !tokens.get(i + 1)?.is_punct('!') {
        return None;
    }
    let open = i + 2;
    matches!(
        tokens.get(open)?.tok,
        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{')
    )
    .then(|| (open, tokens.len(), format!("`{id}!`")))
}

/// If tokens at `i` start a trace-event call (`. record (` etc.), returns
/// the argument group.
fn trace_group(tokens: &[Token], i: usize) -> Option<(usize, usize, String)> {
    if !tokens[i].is_punct('.') {
        return None;
    }
    let id = tokens.get(i + 1)?.ident()?;
    if !TRACE_METHODS.contains(&id) || !tokens.get(i + 2)?.is_punct('(') {
        return None;
    }
    Some((i + 2, tokens.len(), format!("trace `.{id}(...)`")))
}

/// First two path segments (`crates/<name>`) — the crate a file lives in.
fn crate_of(path: &str) -> String {
    path.split('/').take(2).collect::<Vec<_>>().join("/")
}
