//! `secret-taint` — the dataflow successor to the name-based secret
//! rules.
//!
//! `secret-format-leak` matches secret *identifiers* at sinks, so a
//! single rename defeats it: `let k = session.key; tracer.record(k)` is
//! invisible. This rule runs the [`crate::dataflow`] engine instead —
//! reads of registered secret fields ([`Config::secret_fields`]) and
//! secret-named bindings taint the value, taint survives renames, field
//! projections, method chains, and calls (via interprocedural
//! summaries), and any tainted value reaching a format macro, trace
//! payload, or wire/journal struct literal is flagged wherever it ends
//! up and whatever it is called by then.
//!
//! Division of labor with the name-based rules: sinks whose argument
//! literally names a secret ident stay `secret-format-leak` findings
//! (one diagnostic per leak); this rule owns every flow the name rules
//! cannot see.

use crate::config::Config;
use crate::dataflow::Analysis;
use crate::findings::Finding;

pub fn check(analysis: &Analysis<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    for hit in analysis.taint_hits(cfg) {
        out.push(
            Finding::new(
                "secret-taint",
                &analysis.symbols.paths[hit.file],
                hit.line,
                hit.message,
            )
            .with_chain(hit.chain),
        );
    }
}
