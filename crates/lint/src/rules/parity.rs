//! Family 4 — metrics/trace parity.
//!
//! `derive_metrics` reconstructs `ProtocolMetrics` from the trace and the
//! CI gate (`trace_explain`) asserts it equals the live counters exactly.
//! That contract breaks the moment someone bumps a counter without
//! recording the matching trace event. This rule enforces the cheap
//! mechanical half: any function that bumps a `ProtocolMetrics` counter
//! must also record at least one `Tracer` event. (Aggregation functions —
//! `absorb`, and `derive_metrics` itself — are exempt: they fold counters,
//! they do not observe protocol events.)

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::Tok;
use crate::model::{enclosing_fn, fn_spans, FnSpan, SourceFile};

pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !file.under_any(&cfg.parity_paths) {
        return;
    }
    let tokens = file.tokens();
    let spans = fn_spans(tokens);

    // fn name -> (first bump line, bump count), for fns lacking a record.
    let mut offenders: Vec<(String, u32, usize)> = Vec::new();

    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        if !cfg.counters.contains(&id.as_str())
            || !super::preceded_by_dot(tokens, i)
            || !super::assigned_after(tokens, i)
        {
            continue;
        }
        let Some(owner) = enclosing_fn(&spans, i) else {
            continue;
        };
        if cfg.parity_exempt_fns.contains(&owner.name.as_str()) {
            continue;
        }
        if records_trace_event(tokens, owner) {
            continue;
        }
        match offenders.iter_mut().find(|(n, ..)| *n == owner.name) {
            Some((_, _, count)) => *count += 1,
            None => offenders.push((owner.name.clone(), t.line, 1)),
        }
    }

    for (name, line, count) in offenders {
        out.push(Finding::new(
            "metrics-trace-parity",
            &file.rel_path,
            line,
            format!(
                "`{name}` bumps ProtocolMetrics counters ({count} site(s)) but records no \
                 Tracer event; `derive_metrics` can no longer reconcile the trace against \
                 live counters"
            ),
        ));
    }
}

/// Does the function body contain `.record(` / `.open(` / `.close(` or a
/// `tracer` identifier? Either is taken as evidence the function
/// participates in tracing; exact event pairing is `trace_explain`'s job
/// at runtime.
fn records_trace_event(tokens: &[crate::lexer::Token], span: &FnSpan) -> bool {
    (span.body_start..span.end.min(tokens.len())).any(|i| {
        tokens[i].is_ident("tracer")
            || ["record", "open", "close"]
                .iter()
                .any(|m| super::calls_method(tokens, i, m))
    })
}
