//! The lint's model of the TRUST workspace: what is secret, what is
//! trusted, which files are wire definitions, which server fields are
//! durable. Defaults encode this repository; tests construct variants.

/// A secret-bearing type in the manifest.
#[derive(Clone, Debug)]
pub struct SecretType {
    /// The type name as written in source.
    pub name: &'static str,
    /// Path fragment of the file defining it (the debug-derive rule only
    /// fires on the definition, so an unrelated type that happens to share
    /// the name elsewhere is not punished).
    pub defined_in: &'static str,
    /// Whether mentioning the name outside trusted modules is forbidden.
    /// True for globally unique exported types (`KeyPair`, `Template`);
    /// false for private types whose names are common words (`Session`).
    pub containment: bool,
    /// What the secret half is, for diagnostics.
    pub why: &'static str,
}

/// Workspace-wide lint configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Types whose definitions may not derive `Debug` (or implement
    /// `Display`), and — when `containment` — may only be named inside
    /// trusted modules.
    pub secret_types: Vec<SecretType>,
    /// Identifiers that name raw secret values. Forbidden inside
    /// format-family macro arguments and trace-event payloads anywhere,
    /// and as wire/journal field names unless `sealed_`-prefixed.
    pub secret_idents: Vec<&'static str>,
    /// Path fragments of the trusted modules (the FLock boundary plus the
    /// server's private internals).
    pub trusted: Vec<&'static str>,
    /// Files defining serialized payloads (wire messages, journal
    /// records): secret idents/types may not appear as field names/types.
    pub payload_files: Vec<&'static str>,
    /// Path fragments where the determinism rules apply (everything
    /// scanned; bench binaries carry waivers instead of an exemption, so
    /// each wall-clock use is individually justified).
    pub deterministic: Vec<&'static str>,
    /// The single lint-sanctioned home for `std::thread`: the shard
    /// worker pool, which runs whole-shard simulations on OS threads
    /// *outside* the sim-deterministic core and erases scheduling order
    /// with a stable merge. The `os-thread` rule skips exactly these
    /// paths; every other sim path keeps the rule, with no ad-hoc
    /// waivers.
    pub thread_pool_files: Vec<&'static str>,
    /// Markers in function names whose bodies must iterate maps in a
    /// canonical order (snapshot/digest/export paths).
    pub ordered_fn_markers: Vec<&'static str>,
    /// Journal discipline: the file holding the sharded durable state,
    /// the durable field names, and the functions allowed to mutate them.
    pub durable_file: &'static str,
    pub durable_fields: Vec<&'static str>,
    /// Identifiers a durable-field access hangs off (`shard.accounts…`,
    /// `self.shards[idx].accounts…`). Anchoring on the receiver keeps
    /// field-name collisions on unrelated structs (e.g. a stats struct
    /// with a `sessions` count) from firing.
    pub durable_receivers: Vec<&'static str>,
    pub durable_mutators: Vec<&'static str>,
    /// Storage sync discipline (durable file only): any function calling
    /// a reply marker must have called a sync marker earlier in its body
    /// — a reply must never leave before its record is durably synced.
    pub reply_markers: Vec<&'static str>,
    pub sync_markers: Vec<&'static str>,
    /// Metrics/trace parity: crate prefix, the `ProtocolMetrics` counter
    /// fields, and functions exempt because they aggregate rather than
    /// observe (`absorb`) or *are* the reconciliation (`derive_metrics`).
    pub parity_paths: Vec<&'static str>,
    pub counters: Vec<&'static str>,
    pub parity_exempt_fns: Vec<&'static str>,
    /// Telemetry registration discipline: paths where instrument
    /// registrations are checked, and the registry method names whose
    /// call sites must pass a literal metric name plus a literal
    /// sampling-source string (the `register_*` forwarding shims
    /// themselves are exempt by function name).
    pub telemetry_paths: Vec<&'static str>,
    pub telemetry_register_fns: Vec<&'static str>,
    /// Dataflow taint sources: (type, field) pairs whose field reads are
    /// secret regardless of what the value is later called. The
    /// `secret-taint` rule tracks these through renames, projections, and
    /// calls to any format/trace/payload sink.
    pub secret_fields: Vec<(&'static str, &'static str)>,
    /// Functions/methods whose output is public by construction: calling
    /// one launders taint (MACs, seals, hashes, lengths). Names, not
    /// paths — the crypto boundary is the API.
    pub taint_sanitizers: Vec<&'static str>,
    /// Simulation entry points for `determinism-reach`: every method of
    /// these types…
    pub sim_entry_types: Vec<&'static str>,
    /// …and every fn with these names is a root; anything transitively
    /// reachable from a root must stay clock/OS-random/OS-thread free
    /// (outside `thread_pool_files`).
    pub sim_entry_fns: Vec<&'static str>,
    /// Path fragments where the *direct* wall-clock rule applies. Bench
    /// binaries are excluded here (wall time is their product); the
    /// `determinism-reach` rule still guarantees nothing sim-reachable
    /// touches the clock, so the old per-binary waivers are retired.
    pub wall_clock_paths: Vec<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            secret_types: vec![
                SecretType {
                    name: "KeyPair",
                    defined_in: "crates/crypto/src/schnorr.rs",
                    containment: true,
                    why: "holds the Schnorr secret scalar",
                },
                SecretType {
                    name: "Template",
                    defined_in: "crates/fingerprint/src/template.rs",
                    containment: true,
                    why: "an enrolled biometric template is a credential",
                },
                SecretType {
                    name: "DomainRecord",
                    defined_in: "crates/flock/src/storage.rs",
                    containment: true,
                    why: "carries the per-site secret scalar",
                },
                SecretType {
                    name: "SecureStorage",
                    defined_in: "crates/flock/src/storage.rs",
                    containment: true,
                    why: "the protected flash holding every domain secret",
                },
                SecretType {
                    name: "Session",
                    defined_in: "crates/core/src/server/mod.rs",
                    containment: false,
                    why: "holds the raw session MAC key",
                },
                SecretType {
                    name: "DeviceSession",
                    defined_in: "crates/core/src/device.rs",
                    containment: false,
                    why: "holds the raw session MAC key",
                },
                SecretType {
                    name: "ChaChaEntropy",
                    defined_in: "crates/crypto/src/entropy.rs",
                    containment: false,
                    why: "RNG state predicts every future key and nonce",
                },
            ],
            secret_idents: vec![
                "session_key",
                "mac_key",
                "cipher_key",
                "secret_scalar",
                "user_secret",
                "secret_key",
                "private_key",
            ],
            trusted: vec![
                "crates/crypto/",
                "crates/fingerprint/",
                "crates/flock/",
                "crates/core/src/server",
            ],
            payload_files: vec![
                "crates/core/src/messages.rs",
                "crates/core/src/server/journal.rs",
            ],
            deterministic: vec!["crates/", "tests/", "examples/"],
            thread_pool_files: vec!["crates/core/src/parallel.rs"],
            ordered_fn_markers: vec!["snapshot", "digest", "export", "canonical"],
            durable_file: "crates/core/src/server/mod.rs",
            durable_fields: vec![
                "accounts",
                "sessions",
                "reg_cache",
                "reg_order",
                "login_cache",
                "resume_cache",
                "reset_cache",
                "reset_order",
                "consumed",
                "audit",
                "session_counter",
            ],
            durable_receivers: vec!["shard", "sh"],
            durable_mutators: vec![
                // The journal-then-apply path itself plus its one helper,
                // and snapshot restore (replaying durable state wholesale
                // during recovery is the other legitimate writer).
                "apply_record",
                "remove_binding",
                "try_restore_shard_snapshot",
            ],
            reply_markers: vec!["pre_reply_crash"],
            sync_markers: vec![
                // `journal_append` ends in the shard sync barrier; the
                // rest are the barrier itself and its storage spellings.
                "journal_append",
                "sync_shard",
                "sync",
                "flush",
            ],
            parity_paths: vec!["crates/core/"],
            counters: vec![
                "sends",
                "retries",
                "timeouts",
                "duplicates_resent",
                "replays_accepted",
                "replays_rejected",
                "resyncs",
                "giveups",
                "corrupt_rejected",
                "stale_content_ignored",
            ],
            parity_exempt_fns: vec!["absorb", "derive_metrics"],
            telemetry_paths: vec!["crates/"],
            telemetry_register_fns: vec![
                "register_counter",
                "register_gauge",
                "register_histogram",
            ],
            secret_fields: vec![
                ("Session", "key"),
                ("DeviceSession", "key"),
                ("KeyPair", "x"),
                ("DomainRecord", "user_secret"),
                ("Template", "minutiae"),
                ("ChaChaEntropy", "key"),
            ],
            taint_sanitizers: vec![
                "mac",
                "hmac",
                "verify_mac",
                "sign",
                "verify",
                "seal",
                "unseal",
                "seal_key",
                "unseal_key",
                "encrypt",
                "decrypt",
                "kdf",
                "derive_key",
                "hash",
                "digest",
                "crc32",
                "pow_mod",
                "len",
                "is_empty",
                "public",
                "fingerprint",
                // The matcher is the sanctioned consumer of templates: its
                // scores/decisions are the system's outputs, derived from
                // the secret by design.
                "match_observation",
            ],
            sim_entry_types: vec!["World"],
            sim_entry_fns: vec![
                "run_shard",
                "run_parallel",
                "run_chaos_lifecycle",
                "run_concurrent_chaos",
            ],
            wall_clock_paths: vec![
                "crates/core/",
                "crates/crypto/",
                "crates/fingerprint/",
                "crates/flock/",
                "crates/lint/",
                "crates/placement/",
                "crates/sensor/",
                "crates/sim/",
                "crates/touch/",
                "crates/workload/",
                "tests/",
                "examples/",
            ],
        }
    }
}
