//! Findings and their rendering.

use std::fmt;

/// Every rule id the engine can emit. Waivers are validated against this
/// list so a typo in `allow(...)` is caught instead of silently waiving
/// nothing.
pub const RULES: &[&str] = &[
    "secret-debug-derive",
    "secret-outside-trust",
    "secret-format-leak",
    "secret-payload-field",
    "wall-clock",
    "os-thread",
    "os-random",
    "unordered-iteration",
    "journal-discipline",
    "storage-sync-before-reply",
    "metrics-trace-parity",
    "telemetry-parity",
    "secret-taint",
    "determinism-reach",
    "waiver-syntax",
];

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    /// Set when a valid waiver covers this finding; waived findings are
    /// reported in the summary but do not fail the run.
    pub waived: bool,
    /// For interprocedural findings: the call chain (qualified fn names)
    /// from the entry point / taint origin to the flagged site. Empty for
    /// single-site findings.
    pub chain: Vec<String>,
}

impl Finding {
    pub fn new(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            message,
            waived: false,
            chain: Vec::new(),
        }
    }

    pub fn with_chain(mut self, chain: Vec<String>) -> Finding {
        self.chain = chain;
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.waived { "waived" } else { "error" };
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.path, self.line, tag, self.rule, self.message
        )
    }
}

/// A whole run's outcome.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// Renders the report: unwaived findings first (sorted by path/line),
    /// then a one-line summary. This exact format is pinned by a golden
    /// test; change both together.
    pub fn render(&self, show_waived: bool) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&Finding> = self.findings.iter().collect();
        sorted.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        for f in &sorted {
            if !f.waived || show_waived {
                out.push_str(&f.to_string());
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "trust-lint: {} files scanned, {} finding(s): {} unwaived, {} waived\n",
            self.files_scanned,
            self.findings.len(),
            self.unwaived_count(),
            self.waived_count(),
        ));
        out
    }

    /// Renders the report as stable machine-readable JSON (`--json`).
    /// Same ordering as [`Report::render`]; schema version bumps on any
    /// shape change. This exact output is pinned by a golden test.
    pub fn render_json(&self) -> String {
        let mut sorted: Vec<&Finding> = self.findings.iter().collect();
        sorted.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"unwaived\": {},\n", self.unwaived_count()));
        out.push_str(&format!("  \"waived\": {},\n", self.waived_count()));
        out.push_str("  \"findings\": [");
        for (k, f) in sorted.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"waived\": {}, ", f.waived));
            out.push_str("\"chain\": [");
            for (c, link) in f.chain.iter().enumerate() {
                if c > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(link));
            }
            out.push_str("], ");
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            out.push('}');
        }
        if !sorted.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string encoding (the zero-dependency constraint reaches
/// here too).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
