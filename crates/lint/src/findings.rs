//! Findings and their rendering.

use std::fmt;

/// Every rule id the engine can emit. Waivers are validated against this
/// list so a typo in `allow(...)` is caught instead of silently waiving
/// nothing.
pub const RULES: &[&str] = &[
    "secret-debug-derive",
    "secret-outside-trust",
    "secret-format-leak",
    "secret-payload-field",
    "wall-clock",
    "os-thread",
    "os-random",
    "unordered-iteration",
    "journal-discipline",
    "storage-sync-before-reply",
    "metrics-trace-parity",
    "telemetry-parity",
    "waiver-syntax",
];

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    /// Set when a valid waiver covers this finding; waived findings are
    /// reported in the summary but do not fail the run.
    pub waived: bool,
}

impl Finding {
    pub fn new(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            message,
            waived: false,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.waived { "waived" } else { "error" };
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.path, self.line, tag, self.rule, self.message
        )
    }
}

/// A whole run's outcome.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// Renders the report: unwaived findings first (sorted by path/line),
    /// then a one-line summary. This exact format is pinned by a golden
    /// test; change both together.
    pub fn render(&self, show_waived: bool) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&Finding> = self.findings.iter().collect();
        sorted.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        for f in &sorted {
            if !f.waived || show_waived {
                out.push_str(&f.to_string());
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "trust-lint: {} files scanned, {} finding(s): {} unwaived, {} waived\n",
            self.files_scanned,
            self.findings.len(),
            self.unwaived_count(),
            self.waived_count(),
        ));
        out
    }
}
