//! The `trust_lint` binary: lints the workspace, prints diagnostics, and
//! exits non-zero on any unwaived finding.
//!
//! ```text
//! cargo run --release --bin trust_lint            # lint this workspace
//! cargo run --release --bin trust_lint -- --root <dir>
//! cargo run --release --bin trust_lint -- --show-waived
//! cargo run --release --bin trust_lint -- --json   # machine-readable findings on stdout
//! cargo run --release --bin trust_lint -- --list-rules
//! ```
//!
//! With `--json`, stdout carries only the stable JSON document (schema
//! pinned by a golden test) so CI can archive it as an artifact; human
//! diagnostics go to stderr when the run fails. Exit codes are unchanged.

use std::path::PathBuf;
use std::process::ExitCode;

use trust_lint::{find_root, lint_workspace, RULES};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut show_waived = false;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("trust-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--show-waived" => show_waived = true,
            "--json" => json = true,
            "--list-rules" => {
                for r in RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("trust-lint: unknown argument `{other}`");
                eprintln!(
                    "usage: trust_lint [--root <dir>] [--show-waived] [--json] [--list-rules]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "trust-lint: no workspace Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "trust-lint: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
        if report.unwaived_count() > 0 {
            eprint!("{}", report.render(show_waived));
        }
    } else {
        print!("{}", report.render(show_waived));
    }
    if report.unwaived_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
