//! Workspace walking and the waiver-applying engine.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::findings::{Finding, Report, RULES};
use crate::model::SourceFile;
use crate::rules;

/// Directory-name / path-fragment exclusions. Shim crates stand in for
/// unreachable registry dependencies (not our code), and the lint's own
/// fixtures are violations *on purpose*.
const EXCLUDED_FRAGMENTS: &[&str] = &[
    "/target/",
    "proptest-shim",
    "criterion-shim",
    "crates/lint/tests/fixtures",
];

/// Lints every `.rs` file under `root` with the default workspace config.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let cfg = Config::default();
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(lint_sources(
        sources.iter().map(|(p, s)| (p.as_str(), s.as_str())),
        &cfg,
    ))
}

/// Lints in-memory sources: `(workspace-relative path, contents)` pairs.
/// The path drives rule scoping, so tests can stage any classification.
pub fn lint_sources<'a, I>(sources: I, cfg: &Config) -> Report
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    // Phase 1: parse everything. The workspace rules need every file's
    // symbols before any rule can run.
    let files: Vec<SourceFile> = sources
        .into_iter()
        .map(|(rel, src)| SourceFile::parse(rel, src, RULES))
        .collect();

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    // Phase 2: single-file rules plus waiver-syntax findings.
    let mut findings = Vec::new();
    for file in &files {
        // Malformed waivers are findings themselves and never waivable:
        // a waiver that cannot be trusted must not silence anything.
        for (comment, why) in &file.bad_waivers {
            report.findings.push(Finding::new(
                "waiver-syntax",
                &file.rel_path,
                comment.line,
                why.clone(),
            ));
        }
        let mut file_findings = Vec::new();
        rules::run_all(file, cfg, &mut file_findings);
        findings.append(&mut file_findings);
    }

    // Phase 3: workspace dataflow rules over the whole file set.
    rules::run_workspace(&files, cfg, &mut findings);

    // One finding per (rule, path, line): several hits on one line need
    // one waiver, so they should read as one diagnostic too.
    let mut seen = std::collections::BTreeSet::new();
    for mut f in findings {
        if !seen.insert((f.rule, f.path.clone(), f.line)) {
            continue;
        }
        f.waived = files
            .iter()
            .find(|file| file.rel_path == f.path)
            .is_some_and(|file| file.waived(f.rule, f.line));
        report.findings.push(f);
    }
    report
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let rel_slashed = format!("/{rel}/");
        if EXCLUDED_FRAGMENTS
            .iter()
            .any(|f| rel_slashed.contains(f) || rel.contains(f))
        {
            continue;
        }
        if path.is_dir() {
            collect(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root: `--root` wins, else walk up from `start`
/// looking for a `Cargo.toml` declaring `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
