//! Workspace symbol table: every `fn` (with its impl type, parameters,
//! and return type), every `struct`/`enum` (with its fields), indexed by
//! file. This is the ground the call graph ([`crate::callgraph`]) and the
//! dataflow core ([`crate::dataflow`]) stand on.
//!
//! The table is recovered from the token stream, not an AST, so it is an
//! approximation by construction: generics are skipped rather than
//! modeled, trait methods without bodies are ignored, and a method's
//! "type" is the impl header's last path segment. Those limits are fine
//! for the rules built on top — they need *names with context* (which
//! `fn` is `Session::close` vs `Segment::close`), not full typing.

use crate::lexer::{Tok, Token};
use crate::model::{fn_spans, match_brace, struct_fields, type_items, Field, FnSpan, SourceFile};

/// One function parameter: its binding name and the identifier tokens of
/// its declared type (`key: &[u8]` → name `key`, ty `["u8"]`).
#[derive(Clone, Debug)]
pub struct Param {
    pub name: String,
    pub ty: Vec<String>,
}

/// One function definition, workspace-wide.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Index into the workspace file list.
    pub file: usize,
    /// Bare name as written (`close`).
    pub name: String,
    /// The impl type for methods (`Session` for `impl Session { fn close …`),
    /// `None` for free functions.
    pub self_type: Option<String>,
    /// Token extent within the defining file.
    pub span: FnSpan,
    /// Declared parameters, excluding any `self` receiver.
    pub params: Vec<Param>,
    /// Whether the signature takes `self` in any form.
    pub has_self: bool,
    /// Identifier tokens of the return type (empty for `()` / none).
    pub ret_ty: Vec<String>,
    /// Source line of the `fn` keyword.
    pub line: u32,
}

impl FnDef {
    /// `Type::name` for methods, `name` for free fns — what diagnostics
    /// and call chains print.
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One type definition (struct or enum) with its named fields.
#[derive(Clone, Debug)]
pub struct TypeDef {
    pub file: usize,
    pub name: String,
    pub is_struct: bool,
    pub fields: Vec<Field>,
}

/// The workspace symbol table.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnDef>,
    pub types: Vec<TypeDef>,
    /// Workspace-relative path per file index (mirrors the file list the
    /// table was built from, so consumers need not thread it separately).
    pub paths: Vec<String>,
}

impl SymbolTable {
    /// Builds the table over every file, in file order.
    pub fn build(files: &[SourceFile]) -> SymbolTable {
        let mut table = SymbolTable {
            paths: files.iter().map(|f| f.rel_path.clone()).collect(),
            ..SymbolTable::default()
        };
        for (file_idx, file) in files.iter().enumerate() {
            let tokens = file.tokens();
            let impls = impl_blocks(tokens);
            for span in fn_spans(tokens) {
                let self_type = impls
                    .iter()
                    .filter(|b| b.start <= span.start && span.end <= b.end)
                    .min_by_key(|b| b.end - b.start)
                    .map(|b| b.type_name.clone());
                let (params, has_self) = fn_params(tokens, &span);
                let ret_ty = fn_ret_ty(tokens, &span);
                table.fns.push(FnDef {
                    file: file_idx,
                    line: tokens[span.start].line,
                    name: span.name.clone(),
                    self_type,
                    params,
                    has_self,
                    ret_ty,
                    span,
                });
            }
            for item in type_items(tokens) {
                let fields = item
                    .body
                    .filter(|_| item.is_struct)
                    .map(|b| struct_fields(tokens, b))
                    .unwrap_or_default();
                table.types.push(TypeDef {
                    file: file_idx,
                    name: item.name,
                    is_struct: item.is_struct,
                    fields,
                });
            }
        }
        table
    }

    /// All fns with the given bare name.
    pub fn fns_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = (usize, &'a FnDef)> {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.name == name)
    }

    /// The declared type of a struct field, if the (type, field) pair is
    /// defined anywhere in the workspace.
    pub fn field_ty(&self, type_name: &str, field: &str) -> Option<&[String]> {
        self.types.iter().find_map(|t| {
            if t.name != type_name {
                return None;
            }
            t.fields
                .iter()
                .find(|f| f.name == field)
                .map(|f| f.ty.as_slice())
        })
    }

    /// The innermost fn whose extent contains token `i` of `file`.
    pub fn fn_at(&self, file: usize, i: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.span.start <= i && i < f.span.end)
            .min_by_key(|(_, f)| f.span.end - f.span.start)
            .map(|(idx, _)| idx)
    }
}

/// One `impl` block: the type it targets and its token extent.
#[derive(Clone, Debug)]
struct ImplBlock {
    type_name: String,
    start: usize,
    end: usize,
}

/// Scans for `impl [<…>] [Trait for] Type [<…>] { … }` headers. The type
/// is the last path segment before the body (so `impl fmt::Debug for
/// Session` yields `Session`).
fn impl_blocks(tokens: &[Token]) -> Vec<ImplBlock> {
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Walk the header to the body `{`, tracking the identifier after
        // the last `for` (trait impls) or the last plain identifier seen
        // at angle-depth 0 (inherent impls on possibly-generic types).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut body = None;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('{') if angle <= 0 => {
                    body = Some(j);
                    break;
                }
                Tok::Punct(';') => break, // `impl Trait for Type;` — not a block
                Tok::Ident(id) if angle <= 0 => {
                    if id == "for" {
                        saw_for = true;
                    } else if id == "where" {
                        // Type is settled; the clause adds nothing.
                    } else if saw_for {
                        after_for = Some(id.clone());
                    } else {
                        last_ident = Some(id.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let (Some(open), Some(name)) = (body, after_for.or(last_ident)) {
            if let Some(end) = match_brace(tokens, open) {
                blocks.push(ImplBlock {
                    type_name: name,
                    start: i,
                    end,
                });
            }
        }
        i = j + 1;
    }
    blocks
}

/// Parses the parameter list of a fn span: `(self, a: Foo, b: &[u8])` →
/// (params without self, has_self).
fn fn_params(tokens: &[Token], span: &FnSpan) -> (Vec<Param>, bool) {
    // The signature's argument list is the first `(` after the name.
    let mut open = None;
    for (k, t) in tokens
        .iter()
        .enumerate()
        .take(span.body_start)
        .skip(span.start + 2)
    {
        if t.is_punct('(') {
            open = Some(k);
            break;
        }
    }
    let Some(open) = open else {
        return (Vec::new(), false);
    };
    let Some(close) = match_brace(tokens, open) else {
        return (Vec::new(), false);
    };
    let mut params = Vec::new();
    let mut has_self = false;
    let mut i = open + 1;
    while i < close - 1 {
        // One parameter runs to the next comma at depth 0.
        let mut j = i;
        let mut depth = 0i32;
        while j < close - 1 {
            match tokens[j].tok {
                Tok::Punct(',') if depth == 0 => break,
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') | Tok::Punct('>') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let part = &tokens[i..j];
        if part.iter().any(|t| t.is_ident("self")) {
            has_self = true;
        } else if let Some(colon) = part.iter().position(|t| t.is_punct(':')) {
            // Name is the identifier right before the `:` (skips `mut`).
            if let Some(name) = part[..colon].iter().rev().find_map(|t| t.ident()) {
                let ty: Vec<String> = part[colon + 1..]
                    .iter()
                    .filter_map(|t| t.ident().map(str::to_owned))
                    .collect();
                params.push(Param {
                    name: name.to_owned(),
                    ty,
                });
            }
        }
        i = j + 1;
    }
    (params, has_self)
}

/// Identifier tokens of the declared return type (`-> Vec<String>` →
/// `["Vec", "String"]`), stopping at `where` or the body brace.
fn fn_ret_ty(tokens: &[Token], span: &FnSpan) -> Vec<String> {
    let mut i = span.start;
    while i + 1 < span.body_start {
        if tokens[i].is_punct('-') && tokens[i + 1].is_punct('>') {
            return tokens[i + 2..span.body_start]
                .iter()
                .take_while(|t| !t.is_ident("where"))
                .filter_map(|t| t.ident().map(str::to_owned))
                .collect();
        }
        i += 1;
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::RULES;

    fn table(src: &str) -> (SymbolTable, SourceFile) {
        let file = SourceFile::parse("crates/core/src/x.rs", src, RULES);
        (SymbolTable::build(std::slice::from_ref(&file)), file)
    }

    #[test]
    fn methods_get_their_impl_type() {
        let src = "\
struct Session { key: Vec<u8> }
impl Session {
    fn close(&mut self) {}
    fn renew(&mut self, nonce: u64) -> Vec<u8> { vec![] }
}
impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
fn free(account: &str) {}
";
        let (t, _) = table(src);
        let names: Vec<String> = t.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            names,
            ["Session::close", "Session::renew", "Session::fmt", "free"]
        );
        let renew = &t.fns[1];
        assert!(renew.has_self);
        assert_eq!(renew.params.len(), 1);
        assert_eq!(renew.params[0].name, "nonce");
        assert_eq!(renew.params[0].ty, ["u64"]);
        assert_eq!(renew.ret_ty, ["Vec", "u8"]);
        let free = &t.fns[3];
        assert!(!free.has_self);
        assert_eq!(free.params[0].name, "account");
        assert_eq!(free.params[0].ty, ["str"]);
        assert_eq!(t.field_ty("Session", "key").unwrap(), ["Vec", "u8"]);
    }

    #[test]
    fn generic_impl_headers_resolve_to_the_type() {
        let src = "\
struct Store<D> { disk: D }
impl<D: Disk> Store<D> {
    fn sync(&mut self) {}
}
";
        let (t, _) = table(src);
        assert_eq!(t.fns[0].qualified(), "Store::sync");
    }

    #[test]
    fn fn_at_finds_the_innermost_fn() {
        let src = "fn outer() { fn inner() { let marker = 1; } }";
        let (t, f) = table(src);
        let idx = f
            .tokens()
            .iter()
            .position(|tok| tok.is_ident("marker"))
            .unwrap();
        let owner = t.fn_at(0, idx).unwrap();
        assert_eq!(t.fns[owner].name, "inner");
    }
}
