//! Source-file model: classification, waivers, and structural views
//! (function extents, struct bodies, derive lists) recovered from the
//! token stream by brace matching.

use crate::lexer::{lex, Comment, Lexed, Tok, Token};

/// A waiver comment: `// trust-lint: allow(rule-a, rule-b) -- reason`.
///
/// A line waiver covers findings on its own line (trailing comment) and —
/// when it stands alone above a statement — the whole brace-balanced
/// statement below it, however many lines it spans (a multi-line call or
/// chain is one decision, and the finding may anchor on any of its
/// lines). Above an *item* (`fn`, `impl`, `mod`, …) the coverage falls
/// back to the next line only: waiving a whole body takes `allow-file`,
/// never a line waiver. The `allow-file` form covers the whole file — for
/// files that are wholesale outside a rule's intent (a benchmark that
/// *is* about wall clocks). The reason after `--` is mandatory either
/// way; a reasonless waiver is itself a finding and suppresses nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    pub rules: Vec<String>,
    pub reason: String,
    pub line: u32,
    /// Last line this waiver covers (the end of the statement it
    /// precedes); coverage is `line..=end_line`.
    pub end_line: u32,
    /// True for `allow-file(...)`: covers every line of the file.
    pub file_scope: bool,
}

/// One lexed + classified source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (what diagnostics print
    /// and what rule scoping matches on).
    pub rel_path: String,
    pub lexed: Lexed,
    pub waivers: Vec<Waiver>,
    /// Waivers that fail validation (missing reason / unknown rule); these
    /// become findings of their own.
    pub bad_waivers: Vec<(Comment, String)>,
}

impl SourceFile {
    /// Lexes `src` and extracts waivers. `known_rules` validates waiver
    /// rule names so a typo cannot silently waive nothing.
    pub fn parse(rel_path: &str, src: &str, known_rules: &[&str]) -> SourceFile {
        let lexed = lex(src);
        let mut waivers = Vec::new();
        let mut bad_waivers = Vec::new();
        for c in &lexed.comments {
            // Doc comments never carry waivers — they *document* the
            // waiver syntax (this file does), so examples in them must
            // not parse as waivers.
            if c.text.starts_with("///")
                || c.text.starts_with("//!")
                || c.text.starts_with("/**")
                || c.text.starts_with("/*!")
            {
                continue;
            }
            let Some(rest) = c.text.split("trust-lint:").nth(1) else {
                continue;
            };
            let rest = rest.trim_start();
            let (args, file_scope) = if let Some(a) = rest.strip_prefix("allow-file") {
                (a, true)
            } else if let Some(a) = rest.strip_prefix("allow") {
                (a, false)
            } else {
                bad_waivers.push((
                    c.clone(),
                    "expected `allow(<rule>)` or `allow-file(<rule>)` after `trust-lint:`"
                        .to_owned(),
                ));
                continue;
            };
            let Some(open) = args.find('(') else {
                bad_waivers.push((c.clone(), "missing `(` after `allow`".to_owned()));
                continue;
            };
            let Some(close) = args.find(')') else {
                bad_waivers.push((c.clone(), "missing `)` in waiver".to_owned()));
                continue;
            };
            let rules: Vec<String> = args[open + 1..close]
                .split(',')
                .map(|r| r.trim().to_owned())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                bad_waivers.push((c.clone(), "waiver names no rules".to_owned()));
                continue;
            }
            if let Some(unknown) = rules.iter().find(|r| !known_rules.contains(&r.as_str())) {
                bad_waivers.push((c.clone(), format!("unknown rule `{unknown}` in waiver")));
                continue;
            }
            let after = &args[close + 1..];
            let reason = after
                .split("--")
                .nth(1)
                .map(|r| r.trim().trim_end_matches("*/").trim().to_owned())
                .unwrap_or_default();
            if reason.is_empty() {
                bad_waivers.push((
                    c.clone(),
                    "waiver has no reason; write `-- <why this is safe>`".to_owned(),
                ));
                continue;
            }
            waivers.push(Waiver {
                rules,
                reason,
                line: c.line,
                end_line: c.line + 1,
                file_scope,
            });
        }
        for w in &mut waivers {
            if !w.file_scope {
                w.end_line = statement_end_line(&lexed.tokens, w.line);
            }
        }
        SourceFile {
            rel_path: rel_path.to_owned(),
            lexed,
            waivers,
            bad_waivers,
        }
    }

    /// True if a valid waiver for `rule` covers `line`.
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        self.waivers.iter().any(|w| {
            (w.file_scope || (line >= w.line && line <= w.end_line))
                && w.rules.iter().any(|r| r == rule)
        })
    }

    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// True if this file lives under any of the given path fragments.
    pub fn under_any(&self, fragments: &[&str]) -> bool {
        fragments.iter().any(|f| self.rel_path.contains(f))
    }
}

/// Last line covered by a line waiver on `waiver_line`.
///
/// A trailing waiver (code on its own line) keeps the historical
/// next-line reach. A standalone waiver covers the statement starting on
/// the next code line through its terminating `;` (or the `}` closing a
/// block statement) at depth 0 — unless that next line opens an *item*,
/// where coverage stays next-line-only so a line waiver cannot blanket a
/// whole `fn` body.
fn statement_end_line(tokens: &[Token], waiver_line: u32) -> u32 {
    const ITEM_KEYWORDS: &[&str] = &[
        "fn",
        "impl",
        "mod",
        "trait",
        "struct",
        "enum",
        "union",
        "pub",
        "unsafe",
        "use",
        "const",
        "static",
        "type",
        "macro_rules",
    ];
    if tokens.iter().any(|t| t.line == waiver_line) {
        return waiver_line + 1; // trailing comment
    }
    let Some(start) = tokens.iter().position(|t| t.line > waiver_line) else {
        return waiver_line + 1; // nothing follows
    };
    let first = &tokens[start];
    if first.is_punct('#') || first.ident().is_some_and(|id| ITEM_KEYWORDS.contains(&id)) {
        return first.line;
    }
    let mut depth = 0i32;
    let mut end_line = first.line;
    for t in &tokens[start..] {
        end_line = t.line;
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth <= 0 {
                    break; // block statement done, or enclosing scope closed
                }
            }
            Tok::Punct(';') if depth <= 0 => break,
            _ => {}
        }
    }
    end_line
}

/// The extent of one `fn` item: `[start, end)` token indices, where
/// `start` is the `fn` keyword and `end` is one past the closing brace.
/// Nested fns produce nested spans; attribute a token to the innermost
/// span containing it. Closures do not open spans (their bodies belong to
/// the enclosing fn, which is what the per-function rules want).
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    pub start: usize,
    pub body_start: usize,
    pub end: usize,
}

/// Extracts function extents by scanning for `fn <name>` and matching the
/// body braces. Functions without bodies (trait methods, extern decls)
/// are skipped.
pub fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                // Find the body `{`, skipping the signature. Angle-bracket
                // depth is tracked loosely (`->` contains `>`; compensate
                // by ignoring `>` right after `-`).
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body = None;
                while j < tokens.len() {
                    match &tokens[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                        Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                        Tok::Punct(';') if paren == 0 => break, // bodyless
                        Tok::Punct('{') if paren == 0 => {
                            body = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(b) = body {
                    if let Some(end) = match_brace(tokens, b) {
                        spans.push(FnSpan {
                            name: name.clone(),
                            start: i,
                            body_start: b,
                            end,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    spans
}

/// Given the index of a `{`/`(`/`[`, returns one past its matching closer.
pub fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens[open].tok {
        Tok::Punct('{') => ('{', '}'),
        Tok::Punct('(') => ('(', ')'),
        Tok::Punct('[') => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

/// The innermost fn span containing token index `i`, if any.
pub fn enclosing_fn(spans: &[FnSpan], i: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| s.start <= i && i < s.end)
        .min_by_key(|s| s.end - s.start)
}

/// A struct (or enum) item: its name, the derives attached to it, and the
/// token range of its body braces (None for tuple/unit structs and for
/// enums, where field scanning does not apply).
#[derive(Clone, Debug)]
pub struct TypeItem {
    pub name: String,
    pub is_struct: bool,
    pub derives: Vec<String>,
    /// Line of the `#[derive(...)]` attribute (for diagnostics), else the
    /// item line.
    pub derive_line: u32,
    pub item_line: u32,
    /// `[open, close)` token range of the `{ … }` body (brace structs and
    /// enums; `None` for tuple/unit structs).
    pub body: Option<(usize, usize)>,
}

/// Scans for `struct`/`enum` items and their derive lists. Attributes
/// between the derive and the item (doc comments are already stripped;
/// `#[cfg(...)]` etc. are skipped) are handled.
pub fn type_items(tokens: &[Token]) -> Vec<TypeItem> {
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Collect a run of attributes, remembering any derive list.
        let mut derives = Vec::new();
        let mut derive_line = None;
        let attr_start = i;
        while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
            let Some(end) = match_brace(tokens, i + 1) else {
                break;
            };
            if tokens.get(i + 2).is_some_and(|t| t.is_ident("derive")) {
                derive_line = Some(tokens[i].line);
                for t in &tokens[i + 3..end] {
                    if let Tok::Ident(d) = &t.tok {
                        derives.push(d.clone());
                    }
                }
            }
            i = end;
        }
        // Skip visibility.
        let mut j = i;
        if tokens.get(j).is_some_and(|t| t.is_ident("pub")) {
            j += 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                j = match_brace(tokens, j).unwrap_or(j + 1);
            }
        }
        let kw = tokens.get(j).and_then(|t| t.ident());
        if matches!(kw, Some("struct") | Some("enum")) {
            let is_struct = kw == Some("struct");
            if let Some(Tok::Ident(name)) = tokens.get(j + 1).map(|t| &t.tok) {
                let item_line = tokens[j].line;
                // Find the body brace (skip generics / where clauses).
                let mut k = j + 2;
                let mut body = None;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        Tok::Punct('{') => {
                            body = match_brace(tokens, k).map(|e| (k, e));
                            break;
                        }
                        Tok::Punct(';') => break, // unit/tuple struct
                        Tok::Punct('(') => {
                            k = match_brace(tokens, k).unwrap_or(k + 1);
                            continue;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                items.push(TypeItem {
                    name: name.clone(),
                    is_struct,
                    derives,
                    derive_line: derive_line.unwrap_or(item_line),
                    item_line,
                    body,
                });
            }
            i = j + 1;
        } else if i == attr_start {
            i += 1;
        }
        // else: attributes consumed, re-examine from the item keyword.
    }
    items
}

/// A struct field: name, line, and the tokens of its type annotation (up
/// to the following comma at depth 0).
#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub line: u32,
    pub ty: Vec<String>,
}

/// Extracts named fields from a brace-struct body range.
pub fn struct_fields(tokens: &[Token], body: (usize, usize)) -> Vec<Field> {
    let (open, close) = body;
    let mut fields = Vec::new();
    let mut i = open + 1;
    while i + 1 < close {
        // Skip attributes on the field.
        while i + 1 < close && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
            i = match_brace(tokens, i + 1).unwrap_or(i + 2);
        }
        if tokens.get(i).is_some_and(|t| t.is_ident("pub")) {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
                i = match_brace(tokens, i).unwrap_or(i + 1);
            }
        }
        let (name, line) = match tokens.get(i).map(|t| (&t.tok, t.line)) {
            Some((Tok::Ident(n), l)) => (n.clone(), l),
            _ => {
                i += 1;
                continue;
            }
        };
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            i += 1;
            continue;
        }
        // Type tokens run to the next comma at bracket depth 0.
        let mut j = i + 2;
        let mut ty = Vec::new();
        let mut depth = 0i32;
        while j < close {
            match &tokens[j].tok {
                Tok::Punct(',') if depth == 0 => break,
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                // Angle brackets: track them too, loosely (no shift
                // operators appear in type position).
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Ident(t) => ty.push(t.clone()),
                _ => {}
            }
            j += 1;
        }
        fields.push(Field { name, line, ty });
        i = j + 1;
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["wall-clock", "secret-debug-derive"];

    #[test]
    fn waiver_parsing_and_coverage() {
        let src = "\
let a = 1; // trust-lint: allow(wall-clock) -- bench timing is the product\n\
// trust-lint: allow(wall-clock, secret-debug-derive) -- two rules\n\
let b = 2;\n";
        let f = SourceFile::parse("x.rs", src, RULES);
        assert_eq!(f.waivers.len(), 2);
        assert!(f.waived("wall-clock", 1)); // same line
        assert!(f.waived("wall-clock", 3)); // line below standalone comment
        assert!(f.waived("secret-debug-derive", 3));
        assert!(!f.waived("wall-clock", 4));
        assert!(f.bad_waivers.is_empty());
    }

    #[test]
    fn standalone_waiver_covers_the_whole_statement() {
        let src = "\
// trust-lint: allow(wall-clock) -- the probe pair samples host time once\n\
let pair = (\n\
    1u32,\n\
    now(),\n\
);\n\
let after = 6;\n";
        let f = SourceFile::parse("x.rs", src, RULES);
        for line in 1..=5 {
            assert!(
                f.waived("wall-clock", line),
                "line {line} should be covered"
            );
        }
        assert!(!f.waived("wall-clock", 6), "next statement is not covered");
    }

    #[test]
    fn waiver_above_an_item_covers_only_the_next_line() {
        let src = "\
// trust-lint: allow(wall-clock) -- signature only\n\
fn f() {\n\
    let t = now();\n\
}\n";
        let f = SourceFile::parse("x.rs", src, RULES);
        assert!(f.waived("wall-clock", 2));
        assert!(
            !f.waived("wall-clock", 3),
            "a line waiver must not blanket a fn body"
        );
    }

    #[test]
    fn waiver_above_a_block_statement_covers_through_its_close() {
        let src = "\
// trust-lint: allow(wall-clock) -- the loop body reads the probe clock\n\
for x in xs {\n\
    tick(x);\n\
}\n\
let after = 5;\n";
        let f = SourceFile::parse("x.rs", src, RULES);
        assert!(f.waived("wall-clock", 4));
        assert!(!f.waived("wall-clock", 5));
    }

    #[test]
    fn waiver_without_reason_is_bad() {
        let f = SourceFile::parse("x.rs", "// trust-lint: allow(wall-clock)\n", RULES);
        assert!(f.waivers.is_empty());
        assert_eq!(f.bad_waivers.len(), 1);
        assert!(f.bad_waivers[0].1.contains("no reason"));
    }

    #[test]
    fn waiver_with_unknown_rule_is_bad() {
        let f = SourceFile::parse("x.rs", "// trust-lint: allow(wall-cluck) -- typo\n", RULES);
        assert!(f.waivers.is_empty());
        assert!(f.bad_waivers[0].1.contains("unknown rule"));
    }

    #[test]
    fn fn_spans_and_nesting() {
        let src = "fn outer() { fn inner() { let x = 1; } let y = 2; }\nfn plain() {}";
        let f = SourceFile::parse("x.rs", src, RULES);
        let spans = fn_spans(f.tokens());
        assert_eq!(
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["outer", "inner", "plain"]
        );
        let x_idx = f.tokens().iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(enclosing_fn(&spans, x_idx).unwrap().name, "inner");
        let y_idx = f.tokens().iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(enclosing_fn(&spans, y_idx).unwrap().name, "outer");
    }

    #[test]
    fn type_items_and_derives() {
        let src = "#[derive(Clone, Debug)]\npub struct Secret { key: Vec<u8>, pub id: u64 }\nenum E { A, B }\nstruct Unit;";
        let f = SourceFile::parse("x.rs", src, RULES);
        let items = type_items(f.tokens());
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].name, "Secret");
        assert_eq!(items[0].derives, ["Clone", "Debug"]);
        assert_eq!(items[0].derive_line, 1);
        let fields = struct_fields(f.tokens(), items[0].body.unwrap());
        assert_eq!(fields[0].name, "key");
        assert_eq!(fields[0].ty, ["Vec", "u8"]);
        assert_eq!(fields[1].name, "id");
        assert_eq!(items[1].name, "E");
        assert_eq!(items[2].name, "Unit");
    }

    #[test]
    fn cfg_attr_between_derive_and_item() {
        let src = "#[derive(Debug)]\n#[cfg(test)]\nstruct S { a: u8 }";
        let items = type_items(SourceFile::parse("x.rs", src, RULES).tokens());
        assert_eq!(items[0].name, "S");
        assert_eq!(items[0].derives, ["Debug"]);
    }
}
