//! Golden test pinning the exact diagnostic and summary format. Editor
//! integrations and the CI log grep both key off `path:line:` and the
//! one-line summary; change `Report::render` and this file together.

use trust_lint::{lint_sources, Config};

#[test]
fn report_format_is_stable() {
    let bad = "use std::time::Instant;\n";
    let waived = "\
// trust-lint: allow(os-random) -- fixture for the golden test
use rand::rngs::OsRng;
";
    let report = lint_sources(
        [
            ("crates/core/src/b.rs", waived),
            ("crates/core/src/a.rs", bad),
        ],
        &Config::default(),
    );

    let expected = "\
crates/core/src/a.rs:1: error[wall-clock]: `Instant` reads the wall clock; \
sim code must use `SimClock`/`SimDuration` so same-seed runs stay byte-identical
trust-lint: 2 files scanned, 2 finding(s): 1 unwaived, 1 waived
";
    assert_eq!(report.render(false), expected);

    let expected_with_waived = "\
crates/core/src/a.rs:1: error[wall-clock]: `Instant` reads the wall clock; \
sim code must use `SimClock`/`SimDuration` so same-seed runs stay byte-identical
crates/core/src/b.rs:2: waived[os-random]: `OsRng` draws OS randomness; \
all entropy must flow from the experiment seed (`SimRng`/`ChaChaEntropy`)
trust-lint: 2 files scanned, 2 finding(s): 1 unwaived, 1 waived
";
    assert_eq!(report.render(true), expected_with_waived);
}

#[test]
fn json_format_is_stable() {
    // Byte-pins the `--json` schema: CI archives this document as an
    // artifact and downstream tooling parses it, so any change to
    // `Report::render_json` must change `schema` and this test together.
    // The determinism-reach fixture supplies a finding with a call
    // chain; the waived os-random file pins `"waived": true`.
    let report = lint_sources(
        [
            (
                "crates/bench/src/sim_probe.rs",
                include_str!("fixtures/determinism_reach/bad.rs"),
            ),
            (
                "crates/core/src/b.rs",
                "// trust-lint: allow(os-random) -- fixture for the golden test\nuse rand::rngs::OsRng;\n",
            ),
        ],
        &Config::default(),
    );
    let expected = r#"{
  "schema": 1,
  "files_scanned": 2,
  "unwaived": 1,
  "waived": 1,
  "findings": [
    {"rule": "determinism-reach", "path": "crates/bench/src/sim_probe.rs", "line": 21, "waived": false, "chain": ["World::run", "step", "probe"], "message": "`probe` reads the wall clock (`Instant`) and is transitively reachable from sim entry `World::run`; same-seed runs cannot stay byte-identical (call chain: World::run -> step -> probe)"},
    {"rule": "os-random", "path": "crates/core/src/b.rs", "line": 2, "waived": true, "chain": [], "message": "`OsRng` draws OS randomness; all entropy must flow from the experiment seed (`SimRng`/`ChaChaEntropy`)"}
  ]
}
"#;
    assert_eq!(report.render_json(), expected);
}

#[test]
fn clean_json_has_an_empty_findings_array() {
    let report = lint_sources(
        [("crates/core/src/ok.rs", "pub fn fine() {}\n")],
        &Config::default(),
    );
    assert_eq!(
        report.render_json(),
        "{\n  \"schema\": 1,\n  \"files_scanned\": 1,\n  \"unwaived\": 0,\n  \"waived\": 0,\n  \"findings\": []\n}\n"
    );
}

#[test]
fn clean_run_renders_summary_only() {
    let report = lint_sources(
        [("crates/core/src/ok.rs", "pub fn fine() {}\n")],
        &Config::default(),
    );
    assert_eq!(
        report.render(true),
        "trust-lint: 1 files scanned, 0 finding(s): 0 unwaived, 0 waived\n"
    );
}

#[test]
fn findings_render_sorted_by_path_then_line() {
    let src = "use std::time::Instant;\nuse std::time::SystemTime;\n";
    let report = lint_sources(
        [("crates/core/src/z.rs", src), ("crates/core/src/a.rs", src)],
        &Config::default(),
    );
    let rendered = report.render(false);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 5);
    assert!(lines[0].starts_with("crates/core/src/a.rs:1:"));
    assert!(lines[1].starts_with("crates/core/src/a.rs:2:"));
    assert!(lines[2].starts_with("crates/core/src/z.rs:1:"));
    assert!(lines[3].starts_with("crates/core/src/z.rs:2:"));
}
