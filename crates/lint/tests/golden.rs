//! Golden test pinning the exact diagnostic and summary format. Editor
//! integrations and the CI log grep both key off `path:line:` and the
//! one-line summary; change `Report::render` and this file together.

use trust_lint::{lint_sources, Config};

#[test]
fn report_format_is_stable() {
    let bad = "use std::time::Instant;\n";
    let waived = "\
// trust-lint: allow(os-random) -- fixture for the golden test
use rand::rngs::OsRng;
";
    let report = lint_sources(
        [
            ("crates/core/src/b.rs", waived),
            ("crates/core/src/a.rs", bad),
        ],
        &Config::default(),
    );

    let expected = "\
crates/core/src/a.rs:1: error[wall-clock]: `Instant` reads the wall clock; \
sim code must use `SimClock`/`SimDuration` so same-seed runs stay byte-identical
trust-lint: 2 files scanned, 2 finding(s): 1 unwaived, 1 waived
";
    assert_eq!(report.render(false), expected);

    let expected_with_waived = "\
crates/core/src/a.rs:1: error[wall-clock]: `Instant` reads the wall clock; \
sim code must use `SimClock`/`SimDuration` so same-seed runs stay byte-identical
crates/core/src/b.rs:2: waived[os-random]: `OsRng` draws OS randomness; \
all entropy must flow from the experiment seed (`SimRng`/`ChaChaEntropy`)
trust-lint: 2 files scanned, 2 finding(s): 1 unwaived, 1 waived
";
    assert_eq!(report.render(true), expected_with_waived);
}

#[test]
fn clean_run_renders_summary_only() {
    let report = lint_sources(
        [("crates/core/src/ok.rs", "pub fn fine() {}\n")],
        &Config::default(),
    );
    assert_eq!(
        report.render(true),
        "trust-lint: 1 files scanned, 0 finding(s): 0 unwaived, 0 waived\n"
    );
}

#[test]
fn findings_render_sorted_by_path_then_line() {
    let src = "use std::time::Instant;\nuse std::time::SystemTime;\n";
    let report = lint_sources(
        [("crates/core/src/z.rs", src), ("crates/core/src/a.rs", src)],
        &Config::default(),
    );
    let rendered = report.render(false);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 5);
    assert!(lines[0].starts_with("crates/core/src/a.rs:1:"));
    assert!(lines[1].starts_with("crates/core/src/a.rs:2:"));
    assert!(lines[2].starts_with("crates/core/src/z.rs:1:"));
    assert!(lines[3].starts_with("crates/core/src/z.rs:2:"));
}
