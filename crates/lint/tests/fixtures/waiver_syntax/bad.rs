//! BAD: malformed waivers — one without a reason, one naming a rule that
//! does not exist. Both are findings and neither silences anything.
//! Staged at `crates/core/src/waved.rs` by the test harness.

// trust-lint: allow(wall-clock)
// trust-lint: allow(no-such-rule) -- typo'd rule ids must not silently waive nothing
pub fn noop() {}
