//! GOOD: a well-formed waiver — known rule, mandatory reason — covering
//! the line below it. Staged at `crates/core/src/waved.rs` by the test
//! harness.

pub fn elapsed_ms() -> u128 {
    // trust-lint: allow(wall-clock) -- this helper measures real time for the bench harness report
    let started = std::time::Instant::now();
    started.elapsed().as_millis()
}
