//! BAD: bumps a ProtocolMetrics counter with no matching trace event, so
//! `derive_metrics` can no longer reconcile the trace. Staged at
//! `crates/core/src/flow.rs` by the test harness.

pub fn send_once(metrics: &mut ProtocolMetrics) {
    metrics.sends += 1;
    metrics.retries += 1;
}
