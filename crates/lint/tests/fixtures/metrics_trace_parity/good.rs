//! GOOD: every counter bump lives in a function that also records the
//! event on the tracer. Staged at `crates/core/src/flow.rs` by the test
//! harness.

pub fn send_once(metrics: &mut ProtocolMetrics, tracer: &mut Tracer) {
    metrics.sends += 1;
    tracer.record(Event::send());
}
