//! GOOD: the same call chain carries simulation time in from the
//! caller; nothing reachable from the entry touches the host clock.
//! Staged at `crates/bench/src/sim_probe.rs` by the test harness.

pub struct World {
    ticks: u64,
    now_ns: u64,
}

impl World {
    pub fn run(&mut self) {
        self.ticks += step(self.now_ns);
    }
}

fn step(now_ns: u64) -> u64 {
    probe(now_ns)
}

fn probe(now_ns: u64) -> u64 {
    now_ns
}
