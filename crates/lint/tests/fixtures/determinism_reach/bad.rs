//! BAD: a helper two calls below a sim entry point reads the wall
//! clock. Staged at `crates/bench/src/sim_probe.rs` by the test harness
//! — a path where the *direct* wall-clock rule is out of scope, so any
//! finding here is the transitive reachability rule doing its job.

pub struct World {
    ticks: u64,
}

impl World {
    pub fn run(&mut self) {
        self.ticks += step();
    }
}

fn step() -> u64 {
    probe()
}

fn probe() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}
