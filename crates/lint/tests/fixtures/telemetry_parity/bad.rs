//! BAD: instrument registrations without a literal sampling source — a
//! computed name and a missing source both defeat the audit that ties
//! each series back to its feeding trace event or probe. Staged at
//! `crates/core/src/flow.rs` by the test harness.

pub fn install(telemetry: &Telemetry, name: &'static str) {
    // No source argument at all.
    let _sends = telemetry.register_counter("sends_total");
    // Name and source both computed: nothing greppable survives.
    let _gauge = telemetry.register_gauge(name, source_for(name));
}
