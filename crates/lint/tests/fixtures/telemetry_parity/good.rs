//! GOOD: every registration names its metric and its sampling source as
//! literals, and the forwarding shim is exempt by its own name. Staged
//! at `crates/core/src/flow.rs` by the test harness.

pub fn install(telemetry: &Telemetry) {
    let _sends = telemetry.register_counter("sends_total", "trace:Send");
    let _live = telemetry.register_gauge("live_sessions", "probe:WebServer::resident_stats");
    let _rtt = telemetry.register_histogram(
        "interaction_rtt_ms",
        "trace:Served",
        &LATENCY_BUCKET_MS,
    );
    // A genuinely dynamic site carries a reasoned waiver instead.
    let _dyn = telemetry.register_counter(shard_metric(7), source_for(7)); // trust-lint: allow(telemetry-parity) -- per-shard synthetic instruments in a test harness; names derive from the shard index
}

impl Telemetry {
    /// The forwarding shim relays parameters; it is exempt by fn name.
    pub fn register_counter(&self, name: &'static str, source: &'static str) -> InstrumentId {
        self.registry.borrow_mut().register_counter(name, source)
    }
}
