//! GOOD: keys are collected and sorted before the snapshot is emitted.
//! Staged at `crates/core/src/snap.rs` by the test harness.

use std::collections::HashMap;

pub struct Book {
    pages: HashMap<String, u64>,
}

impl Book {
    pub fn snapshot(&self) -> Vec<String> {
        let mut paths: Vec<&String> = self.pages.keys().collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| p.repeat(1) + ":" + &self.pages[p].to_string())
            .collect()
    }
}
