//! BAD: a snapshot iterates a HashMap field in hash order.
//! Staged at `crates/core/src/snap.rs` by the test harness.

use std::collections::HashMap;

pub struct Book {
    pages: HashMap<String, u64>,
}

impl Book {
    pub fn snapshot(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (path, views) in self.pages.iter() {
            out.push(path.repeat(1) + ":" + &views.to_string());
        }
        out
    }
}
