//! GOOD: the same audit event records only the key's *length* — `len`
//! is a registered sanitizer, so the projection launders the taint.
//! Staged at `crates/core/src/audit.rs` by the test harness.

pub fn audit_login(session: &Session, tracer: &mut Tracer) {
    let k = session.key.len();
    tracer.record("login-key-len", k);
}
