//! BAD: the session MAC key escapes through a *rename* — the value is
//! bound to an innocuously named local before reaching the trace sink,
//! so the name-based `secret-format-leak` heuristic sees nothing.
//! Staged at `crates/core/src/audit.rs` by the test harness.

pub fn audit_login(session: &Session, tracer: &mut Tracer) {
    let k = session.key;
    tracer.record("login-key", k);
}
