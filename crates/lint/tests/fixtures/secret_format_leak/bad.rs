//! BAD: raw secret values reach formatted and traced output.
//! Staged at `crates/core/src/anywhere.rs` by the test harness.

pub fn leak(session_key: &[u8], tracer: &mut Tracer) {
    println!("negotiated key {:?}", session_key);
    tracer.record(session_key);
}
