//! GOOD: only non-secret identifiers are formatted or traced.
//! Staged at `crates/core/src/anywhere.rs` by the test harness.

pub fn note(session_id: &str, nonce: u64, tracer: &mut Tracer) {
    println!("session {session_id} advanced");
    tracer.record(nonce);
}
