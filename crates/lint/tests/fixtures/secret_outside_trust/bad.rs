//! BAD: names a containment type outside the trusted modules.
//! Staged at `crates/bench/src/rogue.rs` by the test harness.

use btd_crypto::schnorr::KeyPair;

pub fn mint() -> KeyPair {
    unimplemented!()
}
