//! GOOD: untrusted code touches only the public half.
//! Staged at `crates/bench/src/rogue.rs` by the test harness.

use btd_crypto::schnorr::PublicKey;

pub fn pin(key: &PublicKey) -> String {
    key.fingerprint()
}
