//! BAD: a live handler mutates a durable shard field directly, creating
//! state the journal never saw. Staged at `crates/core/src/server/mod.rs`
//! by the test harness.

impl WebServer {
    fn handle_login(&mut self, account: &str) {
        let idx = self.shard_for(account);
        self.shards[idx].accounts.insert(account.to_owned(), 1);
    }
}
