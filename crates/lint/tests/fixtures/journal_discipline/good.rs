//! GOOD: handlers append a journal record; only `apply_record` touches
//! durable state. Staged at `crates/core/src/server/mod.rs` by the test
//! harness.

impl WebServer {
    fn handle_login(&mut self, account: &str) {
        let record = JournalRecord::login(account);
        self.journal.append(&record);
        self.apply_record(&record);
    }

    fn apply_record(&mut self, record: &JournalRecord) {
        let shard = &mut self.shards[self.shard_for(record.account())];
        shard.accounts.insert(record.account().to_owned(), 1);
        shard.session_counter += 1;
    }
}
