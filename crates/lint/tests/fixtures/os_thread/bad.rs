//! BAD: spawns an OS thread; scheduling order leaks into results.
//! Staged at `crates/core/src/workers.rs` by the test harness.

pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
