//! GOOD: concurrency is simulated by interleaving steps in seed order.
//! Staged at `crates/core/src/workers.rs` by the test harness.

pub fn fan_out(tasks: &mut [Task], rng: &mut SimRng) {
    while tasks.iter().any(|t| !t.done()) {
        let next = rng.pick_index(tasks.len());
        tasks[next].step();
    }
}
