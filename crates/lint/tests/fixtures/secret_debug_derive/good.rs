//! GOOD: the secret type gets a redacting manual Debug impl.
//! Staged at `crates/crypto/src/schnorr.rs` by the test harness.

use std::fmt;

#[derive(Clone)]
pub struct KeyPair {
    secret: u64,
    public: u64,
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyPair(public {}, secret <redacted>)", self.public)
    }
}
