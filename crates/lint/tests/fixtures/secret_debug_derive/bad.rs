//! BAD: derives Debug/Display on a manifest secret type.
//! Staged at `crates/crypto/src/schnorr.rs` by the test harness.

use std::fmt;

#[derive(Clone, Debug)]
pub struct KeyPair {
    secret: u64,
    public: u64,
}

impl fmt::Display for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.secret, self.public)
    }
}
