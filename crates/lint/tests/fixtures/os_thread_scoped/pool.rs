//! The shard worker pool: whole-shard simulations run on OS threads and
//! a stable merge by logical time erases scheduling order. This exact
//! source is staged twice by the test harness — at the sanctioned
//! `crates/core/src/parallel.rs` (silent) and at an ordinary sim path
//! (one `os-thread` finding) — proving the allowance is a path scope,
//! not a waiver comment.

pub fn run_pool(shards: usize, workers: usize) {
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || run_worker(w, shards));
        }
    });
}
