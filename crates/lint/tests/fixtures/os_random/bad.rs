//! BAD: draws OS randomness; two runs with one seed now differ.
//! Staged at `crates/core/src/noise.rs` by the test harness.

use rand::rngs::OsRng;

pub fn salt() -> [u8; 16] {
    let mut rng = thread_rng();
    rng.gen()
}
