//! GOOD: all entropy flows from the experiment seed.
//! Staged at `crates/core/src/noise.rs` by the test harness.

use btd_crypto::entropy::{ChaChaEntropy, EntropySource};

pub fn salt(seed: [u8; 32]) -> Vec<u8> {
    ChaChaEntropy::from_seed(seed).bytes(16)
}
