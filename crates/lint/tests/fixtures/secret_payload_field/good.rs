//! GOOD: the key crosses the wire sealed; nothing raw in the payload.
//! Staged at `crates/core/src/messages.rs` by the test harness.

pub struct LoginReply {
    pub session_id: String,
    pub sealed_session_key: Vec<u8>,
}

pub enum Record {
    Login { nonce: u64, sealed_mac_key: Vec<u8> },
}
