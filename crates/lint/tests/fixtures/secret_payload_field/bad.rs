//! BAD: wire-message definitions carry raw secret fields.
//! Staged at `crates/core/src/messages.rs` by the test harness.

pub struct LoginReply {
    pub session_id: String,
    pub session_key: Vec<u8>,
}

pub enum Record {
    Login { nonce: u64, mac_key: Vec<u8> },
}
