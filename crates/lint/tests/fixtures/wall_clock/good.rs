//! GOOD: time is simulated ticks, derived from the experiment seed.
//! Staged at `crates/core/src/timing.rs` by the test harness.

pub fn measure(clock: &SimClock) -> u64 {
    clock.now_ticks()
}
