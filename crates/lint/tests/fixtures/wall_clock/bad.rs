//! BAD: reads the wall clock inside simulation code.
//! Staged at `crates/core/src/timing.rs` by the test harness.

use std::time::Instant;

pub fn measure() -> u128 {
    let started = Instant::now();
    started.elapsed().as_nanos()
}
