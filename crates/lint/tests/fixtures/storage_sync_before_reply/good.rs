//! GOOD: the handler journals (which ends in the shard sync barrier)
//! before applying and replying — the record is durable by the time the
//! reply gate can let an acknowledgement out. Staged at
//! `crates/core/src/server/mod.rs` by the test harness.

impl WebServer {
    fn handle_close(&mut self, account: &str) -> Result<Ack, Reject> {
        let record = JournalRecord::close(account);
        self.journal_append(0, &record)?;
        self.apply_record(&record);
        self.pre_reply_crash()?;
        Ok(Ack::new(account))
    }
}
