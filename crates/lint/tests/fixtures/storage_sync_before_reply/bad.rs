//! BAD: the handler applies its record and reaches the reply gate without
//! ever passing a sync point — the reply can leave before the disk holds
//! the record behind it. Staged at `crates/core/src/server/mod.rs` by the
//! test harness.

impl WebServer {
    fn handle_close(&mut self, account: &str) -> Result<Ack, Reject> {
        let record = JournalRecord::close(account);
        self.apply_record(&record);
        self.pre_reply_crash()?;
        Ok(Ack::new(account))
    }
}
