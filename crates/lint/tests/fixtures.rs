//! Self-tests: every rule family proves it fires on its `bad.rs` fixture
//! and stays quiet on the matching `good.rs`. The staged path is part of
//! each case — rules scope by workspace-relative path, so the same bytes
//! can be a violation in one crate and fine in another.

use trust_lint::{lint_sources, Config, Report};

fn lint(rel: &str, src: &str) -> Report {
    lint_sources([(rel, src)], &Config::default())
}

/// Unwaived rule ids, in emission order.
fn fired(report: &Report) -> Vec<&'static str> {
    report.unwaived().map(|f| f.rule).collect()
}

/// Asserts `bad` fires `rule` exactly `expect` times and `good` is silent.
fn check_pair(rel: &str, bad: &str, good: &str, rule: &str, expect: usize) {
    let bad_report = lint(rel, bad);
    let hits = fired(&bad_report).iter().filter(|r| **r == rule).count();
    assert_eq!(
        hits,
        expect,
        "{rule} on bad fixture at {rel}: wanted {expect} findings, got:\n{}",
        bad_report.render(true)
    );
    assert_eq!(
        bad_report.unwaived_count(),
        expect,
        "bad fixture at {rel} fired rules besides {rule}:\n{}",
        bad_report.render(true)
    );

    let good_report = lint(rel, good);
    assert_eq!(
        good_report.unwaived_count(),
        0,
        "good fixture at {rel} should be clean, got:\n{}",
        good_report.render(true)
    );
}

#[test]
fn secret_debug_derive() {
    // Two findings: the derive and the Display impl.
    check_pair(
        "crates/crypto/src/schnorr.rs",
        include_str!("fixtures/secret_debug_derive/bad.rs"),
        include_str!("fixtures/secret_debug_derive/good.rs"),
        "secret-debug-derive",
        2,
    );
}

#[test]
fn secret_debug_derive_only_fires_on_the_definition() {
    // An unrelated `KeyPair` in another crate deriving Debug is someone
    // else's type; the manifest scopes by defining file.
    let report = lint(
        "crates/sim/src/geom.rs",
        include_str!("fixtures/secret_debug_derive/bad.rs"),
    );
    assert!(
        !fired(&report).contains(&"secret-debug-derive"),
        "defined_in scoping failed:\n{}",
        report.render(true)
    );
}

#[test]
fn secret_outside_trust() {
    check_pair(
        "crates/bench/src/rogue.rs",
        include_str!("fixtures/secret_outside_trust/bad.rs"),
        include_str!("fixtures/secret_outside_trust/good.rs"),
        "secret-outside-trust",
        2,
    );
}

#[test]
fn secret_outside_trust_is_quiet_inside_the_boundary() {
    // The exact bytes that fire in `crates/bench` are fine in the crypto
    // crate: containment is about *where*, not *what*.
    let report = lint(
        "crates/crypto/src/keys.rs",
        include_str!("fixtures/secret_outside_trust/bad.rs"),
    );
    assert_eq!(
        report.unwaived_count(),
        0,
        "trusted path should not fire:\n{}",
        report.render(true)
    );
}

#[test]
fn secret_format_leak() {
    // One via `println!`, one via `tracer.record(...)`.
    check_pair(
        "crates/core/src/anywhere.rs",
        include_str!("fixtures/secret_format_leak/bad.rs"),
        include_str!("fixtures/secret_format_leak/good.rs"),
        "secret-format-leak",
        2,
    );
}

#[test]
fn secret_format_leak_fires_even_in_trusted_modules() {
    // Trusted code is exactly where a stray `format!` does the most
    // damage; this rule has no safe harbour.
    let report = lint(
        "crates/crypto/src/debugging.rs",
        include_str!("fixtures/secret_format_leak/bad.rs"),
    );
    assert!(
        fired(&report).contains(&"secret-format-leak"),
        "leak rule must apply inside the boundary too:\n{}",
        report.render(true)
    );
}

#[test]
fn secret_payload_field() {
    // One struct field, one enum-variant field.
    check_pair(
        "crates/core/src/messages.rs",
        include_str!("fixtures/secret_payload_field/bad.rs"),
        include_str!("fixtures/secret_payload_field/good.rs"),
        "secret-payload-field",
        2,
    );
}

#[test]
fn secret_payload_field_only_applies_to_payload_files() {
    let report = lint(
        "crates/core/src/pages.rs",
        include_str!("fixtures/secret_payload_field/bad.rs"),
    );
    assert!(
        !fired(&report).contains(&"secret-payload-field"),
        "non-payload files may hold session keys in memory:\n{}",
        report.render(true)
    );
}

#[test]
fn wall_clock() {
    // The `use` line and the `Instant::now()` line.
    check_pair(
        "crates/core/src/timing.rs",
        include_str!("fixtures/wall_clock/bad.rs"),
        include_str!("fixtures/wall_clock/good.rs"),
        "wall-clock",
        2,
    );
}

#[test]
fn os_thread() {
    check_pair(
        "crates/core/src/workers.rs",
        include_str!("fixtures/os_thread/bad.rs"),
        include_str!("fixtures/os_thread/good.rs"),
        "os-thread",
        1,
    );
}

#[test]
fn os_thread_is_sanctioned_only_in_the_shard_worker_pool() {
    // The identical worker-pool source is judged purely by path: silent
    // at the one sanctioned home (`crates/core/src/parallel.rs`), one
    // finding anywhere else. The scope is part of the workspace model,
    // not an in-file waiver, so sim code cannot opt itself out.
    let pool = include_str!("fixtures/os_thread_scoped/pool.rs");
    let sanctioned = lint("crates/core/src/parallel.rs", pool);
    assert_eq!(
        fired(&sanctioned),
        Vec::<&str>::new(),
        "the worker pool is the sanctioned `std::thread` home:\n{}",
        sanctioned.render(true)
    );
    let elsewhere = lint("crates/core/src/engine.rs", pool);
    assert_eq!(
        fired(&elsewhere),
        vec!["os-thread"],
        "the same source outside the pool keeps the rule:\n{}",
        elsewhere.render(true)
    );
    // The scope is exact: a neighboring file whose name merely resembles
    // the pool is still forbidden.
    let neighbor = lint("crates/core/src/parallel_helpers.rs", pool);
    assert_eq!(fired(&neighbor), vec!["os-thread"]);
}

#[test]
fn os_random() {
    // `OsRng` in the use, `thread_rng` in the body.
    check_pair(
        "crates/core/src/noise.rs",
        include_str!("fixtures/os_random/bad.rs"),
        include_str!("fixtures/os_random/good.rs"),
        "os-random",
        2,
    );
}

#[test]
fn unordered_iteration() {
    check_pair(
        "crates/core/src/snap.rs",
        include_str!("fixtures/unordered_iteration/bad.rs"),
        include_str!("fixtures/unordered_iteration/good.rs"),
        "unordered-iteration",
        1,
    );
}

#[test]
fn unordered_iteration_ignores_non_canonical_functions() {
    // The same hash-order loop in a fn whose output is not canonical
    // (no snapshot/digest/export/canonical marker) is fine.
    let renamed = include_str!("fixtures/unordered_iteration/bad.rs").replace("snapshot", "tally");
    let report = lint("crates/core/src/snap.rs", &renamed);
    assert_eq!(
        report.unwaived_count(),
        0,
        "marker scoping failed:\n{}",
        report.render(true)
    );
}

#[test]
fn secret_taint_tracks_a_renamed_binding() {
    // The acceptance case for the dataflow engine: `let k = session.key;
    // tracer.record(.., k)` carries no secret *name* at the sink, so the
    // old `secret-format-leak` heuristic stays silent — `check_pair`
    // asserts the bad fixture fires `secret-taint` and nothing else.
    check_pair(
        "crates/core/src/audit.rs",
        include_str!("fixtures/secret_taint/bad.rs"),
        include_str!("fixtures/secret_taint/good.rs"),
        "secret-taint",
        1,
    );
}

#[test]
fn secret_taint_names_its_origin() {
    let report = lint(
        "crates/core/src/audit.rs",
        include_str!("fixtures/secret_taint/bad.rs"),
    );
    let f = report.unwaived().next().unwrap();
    assert!(
        f.message.contains("Session.key"),
        "the finding should name the tainting field: {}",
        f.message
    );
}

#[test]
fn determinism_reach_follows_the_call_chain() {
    // Staged in `crates/bench`, where the direct wall-clock rule is out
    // of scope — only transitive reachability from `World::run` fires.
    check_pair(
        "crates/bench/src/sim_probe.rs",
        include_str!("fixtures/determinism_reach/bad.rs"),
        include_str!("fixtures/determinism_reach/good.rs"),
        "determinism-reach",
        1,
    );
    let report = lint(
        "crates/bench/src/sim_probe.rs",
        include_str!("fixtures/determinism_reach/bad.rs"),
    );
    let f = report.unwaived().next().unwrap();
    assert!(
        f.message.contains("World::run -> step -> probe"),
        "the finding should print the full call chain: {}",
        f.message
    );
}

#[test]
fn unordered_iteration_tracks_flow_through_renames() {
    // Dataflow, not lookahead: the hash-ordered Vec passes through a
    // second binding before being returned from the canonical fn.
    let src = "\
use std::collections::HashMap;
pub struct Book { pages: HashMap<String, u64> }
impl Book {
    pub fn export(&self) -> Vec<String> {
        let names: Vec<String> = self.pages.keys().cloned().collect();
        let out = names;
        out
    }
}
";
    let report = lint("crates/core/src/snap.rs", src);
    assert_eq!(
        fired(&report),
        vec!["unordered-iteration"],
        "{}",
        report.render(true)
    );
}

#[test]
fn unordered_iteration_sees_a_distant_sort() {
    // The old implementation scanned a fixed 48-token window after the
    // iteration for a `.sort`; a sort separated by unrelated statements
    // fell outside it. The dataflow rule launders wherever the sort is.
    let src = "\
use std::collections::HashMap;
pub struct Book { pages: HashMap<String, u64> }
impl Book {
    pub fn export(&self) -> Vec<String> {
        let mut names: Vec<String> = self.pages.keys().cloned().collect();
        let a = 1u64 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10;
        let b = a * a + a * a + a * a + a * a + a * a + a * a;
        let c = b - a + b - a + b - a + b - a + b - a + b - a;
        let _guard = c + b + a + c + b + a + c + b + a + c;
        names.sort();
        names
    }
}
";
    let report = lint("crates/core/src/snap.rs", src);
    assert_eq!(report.unwaived_count(), 0, "{}", report.render(true));
}

#[test]
fn telemetry_parity() {
    check_pair(
        "crates/core/src/flow.rs",
        include_str!("fixtures/telemetry_parity/bad.rs"),
        include_str!("fixtures/telemetry_parity/good.rs"),
        "telemetry-parity",
        2,
    );
}

#[test]
fn journal_discipline() {
    check_pair(
        "crates/core/src/server/mod.rs",
        include_str!("fixtures/journal_discipline/bad.rs"),
        include_str!("fixtures/journal_discipline/good.rs"),
        "journal-discipline",
        1,
    );
}

#[test]
fn journal_discipline_only_applies_to_the_durable_file() {
    let report = lint(
        "crates/core/src/device.rs",
        include_str!("fixtures/journal_discipline/bad.rs"),
    );
    assert_eq!(
        report.unwaived_count(),
        0,
        "durable-file scoping failed:\n{}",
        report.render(true)
    );
}

#[test]
fn storage_sync_before_reply() {
    check_pair(
        "crates/core/src/server/mod.rs",
        include_str!("fixtures/storage_sync_before_reply/bad.rs"),
        include_str!("fixtures/storage_sync_before_reply/good.rs"),
        "storage-sync-before-reply",
        1,
    );
}

#[test]
fn storage_sync_before_reply_only_applies_to_the_durable_file() {
    // The same unsynced-reply shape in another file is someone else's
    // state machine — the discipline binds the server's durable path.
    let report = lint(
        "crates/core/src/device.rs",
        include_str!("fixtures/storage_sync_before_reply/bad.rs"),
    );
    assert_eq!(
        report.unwaived_count(),
        0,
        "durable-file scoping failed:\n{}",
        report.render(true)
    );
}

#[test]
fn metrics_trace_parity() {
    // Two bump sites, one finding per offending function.
    let rel = "crates/core/src/flow.rs";
    let bad = include_str!("fixtures/metrics_trace_parity/bad.rs");
    check_pair(
        rel,
        bad,
        include_str!("fixtures/metrics_trace_parity/good.rs"),
        "metrics-trace-parity",
        1,
    );
    let report = lint(rel, bad);
    let f = report.unwaived().next().unwrap();
    assert!(
        f.message.contains("2 site(s)"),
        "per-fn finding should count its bump sites: {}",
        f.message
    );
}

#[test]
fn waiver_syntax() {
    // One reasonless waiver, one unknown rule id.
    check_pair(
        "crates/core/src/waved.rs",
        include_str!("fixtures/waiver_syntax/bad.rs"),
        include_str!("fixtures/waiver_syntax/good.rs"),
        "waiver-syntax",
        2,
    );
}

#[test]
fn a_valid_waiver_downgrades_but_still_reports() {
    let report = lint(
        "crates/core/src/waved.rs",
        include_str!("fixtures/waiver_syntax/good.rs"),
    );
    assert_eq!(report.unwaived_count(), 0);
    assert_eq!(
        report.waived_count(),
        1,
        "the waived wall-clock finding should still be counted:\n{}",
        report.render(true)
    );
}

#[test]
fn allow_file_covers_the_whole_file() {
    let src = "\
// trust-lint: allow-file(wall-clock) -- this whole probe measures wall time on purpose
use std::time::Instant;

pub fn a() -> Instant {
    Instant::now()
}
";
    let report = lint("crates/core/src/clockful.rs", src);
    assert_eq!(report.unwaived_count(), 0, "{}", report.render(true));
    assert_eq!(report.waived_count(), 3);
}

#[test]
fn wall_clock_is_out_of_scope_in_bench_binaries() {
    // Bench binaries measure wall time — that's their product. The direct
    // rule is path-scoped out; `determinism-reach` still guards anything
    // a sim entry can reach, so this is not a blanket exemption.
    let src = "use std::time::Instant;\npub fn t() -> Instant { Instant::now() }\n";
    let report = lint("crates/bench/src/bin/clockful.rs", src);
    assert_eq!(report.unwaived_count(), 0, "{}", report.render(true));
}

#[test]
fn a_waiver_covers_its_whole_statement() {
    // The finding anchors three lines below the waiver — still inside
    // the brace-balanced statement the waiver precedes. The old
    // next-line-only coverage forced one waiver per offending line of a
    // multi-line call; statement extent makes one waiver one decision.
    let waived = "\
pub fn probe() -> (u32, u128) {
    // trust-lint: allow(wall-clock) -- the probe tuple samples host time once for the human table
    let pair = (
        1u32,
        std::time::Instant::now()
            .elapsed()
            .as_nanos(),
    );
    pair
}
";
    let report = lint("crates/core/src/probe.rs", waived);
    assert_eq!(report.unwaived_count(), 0, "{}", report.render(true));
    assert_eq!(report.waived_count(), 1);

    let bare = waived.replace(
        "    // trust-lint: allow(wall-clock) -- the probe tuple samples host time once for the human table\n",
        "",
    );
    let report = lint("crates/core/src/probe.rs", &bare);
    assert_eq!(
        fired(&report),
        vec!["wall-clock"],
        "{}",
        report.render(true)
    );
}

#[test]
fn a_waiver_does_not_cover_other_rules() {
    let src = "\
// trust-lint: allow(os-random) -- wrong rule for the line below
use std::time::Instant;
";
    let report = lint("crates/core/src/x.rs", src);
    assert_eq!(
        fired(&report),
        vec!["wall-clock"],
        "{}",
        report.render(true)
    );
}

#[test]
fn waivers_inside_doc_comments_are_inert() {
    // Documentation *about* waivers (like the lint's own rustdoc) must
    // neither waive anything nor trip waiver-syntax.
    let src = "\
/// Write waivers like `// trust-lint: allow(wall-clock)` with a reason.
//! e.g. // trust-lint: allow(bogus-rule)
pub fn documented() {}
";
    let report = lint("crates/core/src/docs.rs", src);
    assert_eq!(report.unwaived_count(), 0, "{}", report.render(true));
}
