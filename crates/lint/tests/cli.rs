//! End-to-end tests of the `trust_lint` binary: exit codes are the CI
//! contract (0 = clean or fully waived, 1 = unwaived findings, 2 = usage
//! or I/O error).

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

/// Stages a throwaway workspace containing one core source file.
fn stage(tag: &str, core_src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trust-lint-cli-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/core/src")).unwrap();
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
    fs::write(dir.join("crates/core/src/lib.rs"), core_src).unwrap();
    dir
}

fn run(root: &PathBuf, extra: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_trust_lint"));
    cmd.arg("--root").arg(root);
    cmd.args(extra);
    cmd.output().expect("spawn trust_lint")
}

#[test]
fn unwaived_findings_fail_the_run() {
    let root = stage("bad", "use std::time::Instant;\n");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[wall-clock]"), "{stdout}");
    assert!(stdout.contains("1 unwaived, 0 waived"), "{stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn waived_findings_pass_the_run() {
    let root = stage(
        "waived",
        "// trust-lint: allow(wall-clock) -- cli test fixture justifying itself\n\
         use std::time::Instant;\n",
    );
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 unwaived, 1 waived"), "{stdout}");
    // The waived finding is hidden by default, shown with --show-waived.
    assert!(!stdout.contains("waived[wall-clock]"), "{stdout}");
    let shown = run(&root, &["--show-waived"]);
    assert!(
        String::from_utf8_lossy(&shown.stdout).contains("waived[wall-clock]"),
        "{shown:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn a_reasonless_waiver_cannot_waive_itself() {
    // The malformed waiver both fails to suppress the wall-clock finding
    // and adds a waiver-syntax finding of its own.
    let root = stage(
        "reasonless",
        "// trust-lint: allow(wall-clock)\nuse std::time::Instant;\n",
    );
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[waiver-syntax]"), "{stdout}");
    assert!(stdout.contains("error[wall-clock]"), "{stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_goes_to_stdout_and_diagnostics_to_stderr() {
    // CI archives stdout as the findings artifact; it must be pure JSON
    // even when the run fails, with the human render on stderr.
    let root = stage("json", "use std::time::Instant;\n");
    let out = run(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\n  \"schema\": 1,\n"), "{stdout}");
    assert!(stdout.ends_with("}\n"), "{stdout}");
    assert!(
        stdout.contains("\"rule\": \"wall-clock\", \"path\": \"crates/core/src/lib.rs\""),
        "{stdout}"
    );
    assert!(
        !stdout.contains("error[wall-clock]"),
        "stdout must stay parseable: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[wall-clock]"), "{stderr}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_on_a_clean_tree_is_quiet_and_succeeds() {
    let root = stage("json-clean", "pub fn fine() {}\n");
    let out = run(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"unwaived\": 0"), "{stdout}");
    assert!(out.stderr.is_empty(), "{out:?}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn list_rules_prints_every_rule_id() {
    let out = Command::new(env!("CARGO_BIN_EXE_trust_lint"))
        .arg("--list-rules")
        .output()
        .expect("spawn trust_lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in trust_lint::RULES {
        assert!(stdout.lines().any(|l| l == *rule), "missing {rule}");
    }
}

#[test]
fn unknown_arguments_are_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_trust_lint"))
        .arg("--frobnicate")
        .output()
        .expect("spawn trust_lint");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
