//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! In Figure 10 of the paper, every post-login request carries a MAC
//! computed under the session key; this module provides that keyed MAC,
//! plus constant-time verification.

use crate::sha256::{Digest, Sha256};

/// A 256-bit message authentication tag.
pub type Tag = Digest;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Example
///
/// ```
/// use btd_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"session key", b"request body");
/// assert_eq!(tag.as_bytes().len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Tag {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Verifies a tag in constant time.
pub fn verify_hmac(key: &[u8], message: &[u8], tag: &Tag) -> bool {
    constant_time_eq(hmac_sha256(key, message).as_bytes(), tag.as_bytes())
}

/// Constant-time byte-slice equality (length leak only).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Incremental HMAC-SHA256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates a MAC instance for `key` (any length; long keys are hashed
    /// first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            let digest = crate::sha256::sha256(key);
            key_block[..32].copy_from_slice(digest.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Absorbs a length-prefixed field (see [`Sha256::update_field`]).
    pub fn update_field(&mut self, data: &[u8]) {
        self.inner.update_field(data);
    }

    /// Finishes and returns the tag.
    pub fn finalize(self) -> Tag {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac(b"k", b"m", &tag));
        assert!(!verify_hmac(b"k", b"m2", &tag));
        assert!(!verify_hmac(b"k2", b"m", &tag));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"hello world"));
    }

    #[test]
    fn constant_time_eq_basics() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }
}
