//! Schnorr signatures over a prime-order subgroup.
//!
//! Each FLock module "has a unique built-in (public, private) key pair" and
//! signs protocol messages with its private key; web servers do the same
//! (Figs. 9 and 10). Schnorr over a safe-prime group gives those semantics
//! with only the [`crate::bignum`] machinery.
//!
//! Scheme (group `(p, q, g)`, secret `x`, public `y = g^x`):
//!
//! * sign(m): pick `k ∈ [1, q)`, compute `r = g^k`, challenge
//!   `e = H(group ∥ y ∥ r ∥ m) mod q`, response `s = k + x·e mod q`;
//!   signature is `(e, s)`.
//! * verify(m, (e, s)): recompute `r' = g^s · y^(−e) = g^s · (y^e)^(−1)` and
//!   accept iff `H(group ∥ y ∥ r' ∥ m) mod q == e`.

use std::fmt;

use crate::bignum::U2048;
use crate::entropy::EntropySource;
use crate::group::DhGroup;
use crate::sha256::Sha256;

/// A Schnorr public key bound to its group.
#[derive(Clone, PartialEq, Eq)]
pub struct PublicKey {
    group: &'static DhGroup,
    y: U2048,
}

/// A Schnorr key pair.
#[derive(Clone)]
pub struct KeyPair {
    public: PublicKey,
    x: U2048,
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Challenge scalar.
    pub e: U2048,
    /// Response scalar.
    pub s: U2048,
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.y.to_hex();
        write!(
            f,
            "PublicKey({}, y=0x{}…)",
            self.group.name(),
            &hex[..hex.len().min(12)]
        )
    }
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyPair({:?}, secret: <redacted>)", self.public)
    }
}

impl PublicKey {
    /// Reconstructs a public key from a group element.
    ///
    /// # Panics
    ///
    /// Panics if `y` is not a valid group element.
    pub fn from_element(group: &'static DhGroup, y: U2048) -> Self {
        assert!(group.contains(&y), "public key must be a group element");
        PublicKey { group, y }
    }

    /// The group this key lives in.
    pub fn group(&self) -> &'static DhGroup {
        self.group
    }

    /// The public group element `y = g^x`.
    pub fn element(&self) -> &U2048 {
        &self.y
    }

    /// Canonical byte encoding (big-endian element, fixed 256 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.y.to_be_bytes().to_vec()
    }

    /// A short fingerprint of the key for logs and audit records.
    pub fn fingerprint(&self) -> String {
        let digest = crate::sha256::sha256(&self.to_bytes());
        digest.to_hex()[..16].to_owned()
    }

    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let q = self.group.order();
        if sig.e.is_zero() || &sig.e >= q || &sig.s >= q {
            return false;
        }
        // r' = g^s * (y^e)^(-1) mod p
        let g_s = self.group.pow_g(&sig.s);
        let y_e = self.group.pow(&self.y, &sig.e);
        let y_e_inv = y_e.inv_mod_prime(self.group.modulus());
        let r = self.group.mul(&g_s, &y_e_inv);
        let e2 = challenge(self.group, &self.y, &r, message);
        e2 == sig.e
    }
}

impl KeyPair {
    /// Generates a fresh key pair from `entropy`.
    pub fn generate(group: &'static DhGroup, entropy: &mut dyn EntropySource) -> Self {
        let x = group.random_scalar(entropy);
        let y = group.pow_g(&x);
        KeyPair {
            public: PublicKey { group, y },
            x,
        }
    }

    /// Reconstructs a key pair from a stored secret scalar (identity
    /// transfer moves key material between devices this way).
    ///
    /// # Panics
    ///
    /// Panics if `x` is zero or not below the group order.
    pub fn from_secret(group: &'static DhGroup, x: U2048) -> Self {
        assert!(!x.is_zero() && &x < group.order(), "invalid secret scalar");
        let y = group.pow_g(&x);
        KeyPair {
            public: PublicKey { group, y },
            x,
        }
    }

    /// The public half.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// The secret scalar (exposed so protected storage can persist it; the
    /// simulation's FLock flash is the only intended consumer).
    pub fn secret_scalar(&self) -> &U2048 {
        &self.x
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8], entropy: &mut dyn EntropySource) -> Signature {
        let group = self.public.group;
        let q = group.order();
        let k = group.random_scalar(entropy);
        let r = group.pow_g(&k);
        let e = challenge(group, &self.public.y, &r, message);
        // s = k + x*e mod q
        let xe = self.x.mul_mod(&e, q);
        let s = k.rem(q).add_mod(&xe, q);
        Signature { e, s }
    }
}

/// Fiat–Shamir challenge `H(group ∥ y ∥ r ∥ m) mod q`.
fn challenge(group: &DhGroup, y: &U2048, r: &U2048, message: &[u8]) -> U2048 {
    let mut h = Sha256::new();
    h.update_field(group.name().as_bytes());
    h.update_field(&y.to_be_bytes());
    h.update_field(&r.to_be_bytes());
    h.update_field(message);
    let digest = h.finalize();
    let wide = U2048::from_be_bytes(digest.as_bytes());
    let e = wide.rem(group.order());
    if e.is_zero() {
        U2048::ONE
    } else {
        e
    }
}

impl Signature {
    /// Canonical byte encoding (fixed 512 bytes: `e ∥ s`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(512);
        out.extend_from_slice(&self.e.to_be_bytes());
        out.extend_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Decodes from [`Signature::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns `None` if `bytes` is not exactly 512 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        if bytes.len() != 512 {
            return None;
        }
        Some(Signature {
            e: U2048::from_be_bytes(&bytes[..256]),
            s: U2048::from_be_bytes(&bytes[256..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::ChaChaEntropy;

    fn keys(seed: u64) -> (KeyPair, ChaChaEntropy) {
        let mut e = ChaChaEntropy::from_u64_seed(seed);
        let kp = KeyPair::generate(DhGroup::test_512(), &mut e);
        (kp, e)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (kp, mut e) = keys(1);
        let sig = kp.sign(b"hello trust", &mut e);
        assert!(kp.public_key().verify(b"hello trust", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let (kp, mut e) = keys(2);
        let sig = kp.sign(b"amount=10", &mut e);
        assert!(!kp.public_key().verify(b"amount=1000", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (kp1, mut e) = keys(3);
        let kp2 = KeyPair::generate(DhGroup::test_512(), &mut e);
        let sig = kp1.sign(b"msg", &mut e);
        assert!(!kp2.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (kp, mut e) = keys(4);
        let mut sig = kp.sign(b"msg", &mut e);
        sig.s = sig.s.add_mod(&U2048::ONE, kp.public_key().group().order());
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let (kp, mut e) = keys(5);
        let sig = kp.sign(b"msg", &mut e);
        let big = *kp.public_key().group().order();
        assert!(!kp
            .public_key()
            .verify(b"msg", &Signature { e: big, s: sig.s }));
        assert!(!kp.public_key().verify(
            b"msg",
            &Signature {
                e: U2048::ZERO,
                s: sig.s
            }
        ));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let (kp, mut e) = keys(6);
        let sig = kp.sign(b"wire", &mut e);
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), 512);
        let back = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(back, sig);
        assert!(Signature::from_bytes(&bytes[..100]).is_none());
    }

    #[test]
    fn from_secret_restores_same_identity() {
        let (kp, mut e) = keys(7);
        let restored = KeyPair::from_secret(DhGroup::test_512(), *kp.secret_scalar());
        assert_eq!(restored.public_key(), kp.public_key());
        let sig = restored.sign(b"migrated", &mut e);
        assert!(kp.public_key().verify(b"migrated", &sig));
    }

    #[test]
    fn signatures_are_randomized() {
        let (kp, mut e) = keys(8);
        let s1 = kp.sign(b"m", &mut e);
        let s2 = kp.sign(b"m", &mut e);
        assert_ne!(s1, s2, "fresh k per signature");
        assert!(kp.public_key().verify(b"m", &s1));
        assert!(kp.public_key().verify(b"m", &s2));
    }

    #[test]
    fn public_key_encoding_roundtrip() {
        let (kp, _) = keys(9);
        let bytes = kp.public_key().to_bytes();
        let restored = PublicKey::from_element(DhGroup::test_512(), U2048::from_be_bytes(&bytes));
        assert_eq!(&restored, kp.public_key());
        assert_eq!(restored.fingerprint().len(), 16);
    }

    #[test]
    fn works_on_production_group_too() {
        // One (slower) smoke test on the 2048-bit group.
        let mut e = ChaChaEntropy::from_u64_seed(10);
        let kp = KeyPair::generate(DhGroup::modp_2048(), &mut e);
        let sig = kp.sign(b"production", &mut e);
        assert!(kp.public_key().verify(b"production", &sig));
        assert!(!kp.public_key().verify(b"other", &sig));
    }
}
