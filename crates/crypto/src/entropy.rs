//! Entropy sources for key generation.
//!
//! The crypto crate never reaches for OS randomness: in a reproducible
//! simulation, *all* randomness — including key generation inside the FLock
//! crypto processor — must derive from the experiment seed. Components that
//! need keys accept any [`EntropySource`]; the default implementation,
//! [`ChaChaEntropy`], is a ChaCha20 keystream reader seeded from 32 bytes.

use crate::chacha20::{chacha20_block, KEY_LEN, NONCE_LEN};

/// A source of random bytes for key generation.
pub trait EntropySource {
    /// Fills `buf` with random bytes.
    fn fill(&mut self, buf: &mut [u8]);

    /// Returns `n` random bytes.
    fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill(&mut v);
        v
    }
}

/// A deterministic entropy source backed by the ChaCha20 keystream.
///
/// # Example
///
/// ```
/// use btd_crypto::entropy::{ChaChaEntropy, EntropySource};
///
/// let mut a = ChaChaEntropy::from_seed([1u8; 32]);
/// let mut b = ChaChaEntropy::from_seed([1u8; 32]);
/// assert_eq!(a.bytes(16), b.bytes(16));
/// ```
#[derive(Clone)]
pub struct ChaChaEntropy {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u32,
    block: [u8; 64],
    used: usize,
}

// The key/block state determines every byte this source will ever emit —
// printing it is equivalent to publishing all future keys and nonces
// drawn from it. Debug shows only the stream position.
impl std::fmt::Debug for ChaChaEntropy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChaChaEntropy(counter {}, used {}, state <redacted>)",
            self.counter, self.used
        )
    }
}

impl ChaChaEntropy {
    /// Creates a source from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaChaEntropy {
            key: seed,
            nonce: *b"entropy-src!",
            counter: 0,
            block: [0; 64],
            used: 64, // force a refill on first use
        }
    }

    /// Creates a source from a 64-bit seed (expanded by repetition; fine for
    /// simulation, not for production secrets).
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut s = [0u8; 32];
        for (i, chunk) in s.chunks_mut(8).enumerate() {
            chunk.copy_from_slice(&(seed.wrapping_add(i as u64)).to_le_bytes());
        }
        ChaChaEntropy::from_seed(s)
    }

    /// Derives an independent child source labelled by `label`.
    pub fn fork(&mut self, label: &[u8]) -> ChaChaEntropy {
        let mut seed = [0u8; 32];
        self.fill(&mut seed);
        let mix = crate::sha256::sha256(&[&seed[..], label].concat());
        ChaChaEntropy::from_seed(*mix.as_bytes())
    }

    fn refill(&mut self) {
        self.block = chacha20_block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.wrapping_add(1);
        self.used = 0;
    }
}

impl EntropySource for ChaChaEntropy {
    fn fill(&mut self, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            if self.used == 64 {
                self.refill();
            }
            *b = self.block[self.used];
            self.used += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = ChaChaEntropy::from_u64_seed(9);
        let mut b = ChaChaEntropy::from_u64_seed(9);
        assert_eq!(a.bytes(100), b.bytes(100));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaEntropy::from_u64_seed(1);
        let mut b = ChaChaEntropy::from_u64_seed(2);
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn stream_is_not_constant() {
        let mut e = ChaChaEntropy::from_u64_seed(3);
        let first = e.bytes(64);
        let second = e.bytes(64);
        assert_ne!(first, second);
    }

    #[test]
    fn forked_children_are_independent() {
        let mut parent = ChaChaEntropy::from_u64_seed(4);
        let mut c1 = parent.fork(b"device-1");
        let mut parent2 = ChaChaEntropy::from_u64_seed(4);
        let mut c2 = parent2.fork(b"device-1");
        assert_eq!(c1.bytes(16), c2.bytes(16));
        let mut parent3 = ChaChaEntropy::from_u64_seed(4);
        let mut c3 = parent3.fork(b"device-2");
        assert_ne!(c1.bytes(16), c3.bytes(16));
    }

    #[test]
    fn fill_crosses_block_boundaries() {
        let mut e = ChaChaEntropy::from_u64_seed(5);
        let joined = e.bytes(130);
        let mut e2 = ChaChaEntropy::from_u64_seed(5);
        let mut parts = e2.bytes(64);
        parts.extend(e2.bytes(64));
        parts.extend(e2.bytes(2));
        assert_eq!(joined, parts);
    }
}
