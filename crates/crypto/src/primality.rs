//! Miller–Rabin probabilistic primality testing.
//!
//! The security of the discrete-log suite rests on the group moduli being
//! safe primes; this module lets the test suite *verify* that for both
//! parameter sets instead of trusting the constants, and supports any
//! future parameter generation.

use crate::bignum::U2048;
use crate::entropy::EntropySource;

/// Small primes for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 20] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
];

/// Whether `n` is probably prime, using trial division and `rounds`
/// Miller–Rabin rounds with random bases from `entropy`.
///
/// The error probability is at most 4^(−rounds) for composite `n`.
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn is_probable_prime(n: &U2048, rounds: u32, entropy: &mut dyn EntropySource) -> bool {
    assert!(rounds > 0, "need at least one round");
    if n < &U2048::from_u64(2) {
        return false;
    }
    // Trial division by small primes (also handles small n exactly).
    for p in SMALL_PRIMES {
        let p_big = U2048::from_u64(p);
        if n == &p_big {
            return true;
        }
        if n.rem(&p_big).is_zero() {
            return false;
        }
    }

    // Write n − 1 = d · 2^s with d odd.
    let n_minus_1 = n.checked_sub(&U2048::ONE);
    let mut d = n_minus_1;
    let mut s = 0u32;
    while d.is_even() {
        d = d.shr1();
        s += 1;
    }

    'witness: for _ in 0..rounds {
        // Random base a in [2, n − 2].
        let a = random_base(n, entropy);
        let mut x = a.pow_mod(&d, n);
        if x == U2048::ONE || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Draws a base in `[2, n − 2]` (assumes `n > 4`, guaranteed by the trial
/// division above).
fn random_base(n: &U2048, entropy: &mut dyn EntropySource) -> U2048 {
    let nbytes = n.bits().div_ceil(8);
    loop {
        let mut buf = vec![0u8; nbytes];
        entropy.fill(&mut buf);
        let candidate = U2048::from_be_bytes(&buf);
        let two = U2048::from_u64(2);
        let upper = n.checked_sub(&two);
        if candidate >= two && candidate < upper {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::ChaChaEntropy;
    use crate::group::DhGroup;

    fn entropy() -> ChaChaEntropy {
        ChaChaEntropy::from_u64_seed(1)
    }

    #[test]
    fn small_primes_and_composites() {
        let mut e = entropy();
        for p in [2u64, 3, 5, 7, 97, 101, 65_537] {
            assert!(
                is_probable_prime(&U2048::from_u64(p), 16, &mut e),
                "{p} should be prime"
            );
        }
        for c in [0u64, 1, 4, 9, 91, 561 /* Carmichael */, 65_536] {
            assert!(
                !is_probable_prime(&U2048::from_u64(c), 16, &mut e),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn large_composite_rejected() {
        // Product of two 32-bit primes.
        let n = U2048::from_u64(4_294_967_291).mul_mod(
            &U2048::from_u64(4_294_967_279),
            &U2048::from_hex(&"f".repeat(32)),
        );
        let mut e = entropy();
        assert!(!is_probable_prime(&n, 16, &mut e));
    }

    #[test]
    fn test_group_parameters_are_safe_primes() {
        let g = DhGroup::test_512();
        let mut e = entropy();
        assert!(is_probable_prime(g.modulus(), 12, &mut e), "p not prime");
        assert!(is_probable_prime(g.order(), 12, &mut e), "q not prime");
    }

    #[test]
    fn rfc3526_modulus_is_prime() {
        // Fewer rounds: each 2048-bit exponentiation is expensive and the
        // constant is standardized anyway — this is a self-check.
        let g = DhGroup::modp_2048();
        let mut e = entropy();
        assert!(is_probable_prime(g.modulus(), 2, &mut e));
    }
}
