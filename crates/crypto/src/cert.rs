//! CA-signed public-key certificates.
//!
//! The TRUST architecture (Fig. 8) assumes "each Web Server and each FLock
//! module of a mobile device have a public key certificate signed by the
//! CA", and the CA's public key is provisioned into every FLock module.
//! [`Certificate`] binds a subject name and role to a public key under a
//! Schnorr signature from the CA.

use std::fmt;

use crate::entropy::EntropySource;
use crate::schnorr::{KeyPair, PublicKey, Signature};
use crate::sha256::Sha256;

/// What kind of principal a certificate vouches for.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// A web service endpoint (e.g. `www.xyz.com`).
    WebServer,
    /// A FLock module embedded in a mobile device.
    FlockModule,
    /// A certificate authority (self-signed root).
    CertificateAuthority,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::WebServer => "web-server",
            Role::FlockModule => "flock-module",
            Role::CertificateAuthority => "certificate-authority",
        };
        f.write_str(s)
    }
}

/// A public-key certificate signed by a CA.
#[derive(Clone, PartialEq, Debug)]
pub struct Certificate {
    subject: String,
    role: Role,
    public_key: PublicKey,
    serial: u64,
    signature: Signature,
}

impl Certificate {
    /// The certified subject name (domain for servers, device id for FLock
    /// modules).
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The certified role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The certified public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public_key
    }

    /// The issuing serial number.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// The bytes covered by the CA signature.
    fn signed_bytes(subject: &str, role: Role, public_key: &PublicKey, serial: u64) -> Vec<u8> {
        let mut h = Vec::new();
        let mut hasher = Sha256::new();
        hasher.update_field(b"trust-certificate-v1");
        hasher.update_field(subject.as_bytes());
        hasher.update_field(role.to_string().as_bytes());
        hasher.update_field(&public_key.to_bytes());
        hasher.update_field(&serial.to_be_bytes());
        h.extend_from_slice(hasher.finalize().as_bytes());
        h
    }

    /// Verifies the certificate against the CA public key, and that the
    /// subject/role match what the caller expects.
    pub fn verify(&self, ca_key: &PublicKey) -> bool {
        let bytes =
            Certificate::signed_bytes(&self.subject, self.role, &self.public_key, self.serial);
        ca_key.verify(&bytes, &self.signature)
    }
}

/// A certificate authority that can issue [`Certificate`]s.
///
/// # Example
///
/// ```
/// use btd_crypto::cert::{CertificateAuthority, Role};
/// use btd_crypto::entropy::ChaChaEntropy;
/// use btd_crypto::group::DhGroup;
/// use btd_crypto::schnorr::KeyPair;
///
/// let mut entropy = ChaChaEntropy::from_u64_seed(1);
/// let mut ca = CertificateAuthority::new(DhGroup::test_512(), &mut entropy);
/// let server = KeyPair::generate(DhGroup::test_512(), &mut entropy);
/// let cert = ca.issue("www.xyz.com", Role::WebServer, server.public_key(), &mut entropy);
/// assert!(cert.verify(ca.public_key()));
/// ```
#[derive(Debug)]
pub struct CertificateAuthority {
    keys: KeyPair,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Creates a CA with a fresh root key.
    pub fn new(group: &'static crate::group::DhGroup, entropy: &mut dyn EntropySource) -> Self {
        CertificateAuthority {
            keys: KeyPair::generate(group, entropy),
            next_serial: 1,
        }
    }

    /// The CA root public key (provisioned into FLock modules).
    pub fn public_key(&self) -> &PublicKey {
        self.keys.public_key()
    }

    /// Issues a certificate for `subject` with `role`.
    pub fn issue(
        &mut self,
        subject: &str,
        role: Role,
        key: &PublicKey,
        entropy: &mut dyn EntropySource,
    ) -> Certificate {
        let serial = self.next_serial;
        self.next_serial += 1;
        let bytes = Certificate::signed_bytes(subject, role, key, serial);
        let signature = self.keys.sign(&bytes, entropy);
        Certificate {
            subject: subject.to_owned(),
            role,
            public_key: key.clone(),
            serial,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::ChaChaEntropy;
    use crate::group::DhGroup;

    fn setup() -> (CertificateAuthority, KeyPair, ChaChaEntropy) {
        let mut e = ChaChaEntropy::from_u64_seed(42);
        let ca = CertificateAuthority::new(DhGroup::test_512(), &mut e);
        let subject = KeyPair::generate(DhGroup::test_512(), &mut e);
        (ca, subject, e)
    }

    #[test]
    fn issued_certificate_verifies() {
        let (mut ca, subject, mut e) = setup();
        let cert = ca.issue("www.xyz.com", Role::WebServer, subject.public_key(), &mut e);
        assert!(cert.verify(ca.public_key()));
        assert_eq!(cert.subject(), "www.xyz.com");
        assert_eq!(cert.role(), Role::WebServer);
        assert_eq!(cert.public_key(), subject.public_key());
    }

    #[test]
    fn wrong_ca_rejected() {
        let (mut ca, subject, mut e) = setup();
        let rogue_ca = CertificateAuthority::new(DhGroup::test_512(), &mut e);
        let cert = ca.issue("www.xyz.com", Role::WebServer, subject.public_key(), &mut e);
        assert!(!cert.verify(rogue_ca.public_key()));
    }

    #[test]
    fn forged_subject_rejected() {
        let (mut ca, subject, mut e) = setup();
        let cert = ca.issue("www.xyz.com", Role::WebServer, subject.public_key(), &mut e);
        let forged = Certificate {
            subject: "www.evil.com".to_owned(),
            ..cert
        };
        assert!(!forged.verify(ca.public_key()));
    }

    #[test]
    fn forged_role_rejected() {
        let (mut ca, subject, mut e) = setup();
        let cert = ca.issue("device-1", Role::FlockModule, subject.public_key(), &mut e);
        let forged = Certificate {
            role: Role::WebServer,
            ..cert
        };
        assert!(!forged.verify(ca.public_key()));
    }

    #[test]
    fn serials_are_unique_and_increasing() {
        let (mut ca, subject, mut e) = setup();
        let c1 = ca.issue("a", Role::WebServer, subject.public_key(), &mut e);
        let c2 = ca.issue("b", Role::WebServer, subject.public_key(), &mut e);
        assert!(c2.serial() > c1.serial());
    }

    #[test]
    fn substituted_key_rejected() {
        let (mut ca, subject, mut e) = setup();
        let other = KeyPair::generate(DhGroup::test_512(), &mut e);
        let cert = ca.issue("www.xyz.com", Role::WebServer, subject.public_key(), &mut e);
        let forged = Certificate {
            public_key: other.public_key().clone(),
            ..cert
        };
        assert!(!forged.verify(ca.public_key()));
    }
}
