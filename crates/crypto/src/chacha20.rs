//! The ChaCha20 stream cipher (RFC 7539).
//!
//! Session traffic in the remote-identity protocol (Fig. 10, step 4) is
//! "encrypted using the session key"; this reproduction uses ChaCha20 with
//! an HMAC-SHA256 tag (encrypt-then-MAC) as the symmetric layer, and also
//! reuses the keystream as the deterministic entropy source
//! ([`crate::entropy::ChaChaEntropy`]).

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block for (`key`, `counter`, `nonce`).
pub fn chacha20_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter` (encryption and decryption are the same operation).
///
/// # Example
///
/// ```
/// use btd_crypto::chacha20::xor_keystream;
///
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut buf = b"attack at dawn".to_vec();
/// xor_keystream(&key, &nonce, 1, &mut buf);
/// xor_keystream(&key, &nonce, 1, &mut buf);
/// assert_eq!(buf, b"attack at dawn");
/// ```
pub fn xor_keystream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
        let counter = initial_counter
            .checked_add(block_idx as u32)
            .expect("chacha20 block counter overflow");
        let keystream = chacha20_block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience: returns the encryption of `plaintext` (counter starts at 1,
/// matching RFC 7539's AEAD construction).
pub fn encrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    xor_keystream(key, nonce, 1, &mut out);
    out
}

/// Convenience: decryption (identical to [`encrypt`]).
pub fn decrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], ciphertext: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 block-function test vector.
    #[test]
    fn rfc7539_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expected_start = [0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15];
        assert_eq!(&block[..8], &expected_start);
        let expected_end = [0xa2, 0x50, 0x3c, 0x4e];
        assert_eq!(&block[60..], &expected_end);
    }

    /// RFC 7539 §2.4.2 encryption test vector.
    #[test]
    fn rfc7539_encrypt_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, plaintext);
        assert_eq!(
            &ct[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                0x69, 0x81
            ]
        );
        assert_eq!(ct.len(), plaintext.len());
        assert_eq!(decrypt(&key, &nonce, &ct), plaintext);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [7u8; 32];
        let a = encrypt(&key, &[1u8; 12], &[0u8; 64]);
        let b = encrypt(&key, &[2u8; 12], &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn multi_block_roundtrip() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let msg: Vec<u8> = (0..1_000u32).map(|i| (i % 256) as u8).collect();
        let ct = encrypt(&key, &nonce, &msg);
        assert_ne!(ct, msg);
        assert_eq!(decrypt(&key, &nonce, &ct), msg);
    }

    #[test]
    fn empty_message() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        assert!(encrypt(&key, &nonce, &[]).is_empty());
    }
}
