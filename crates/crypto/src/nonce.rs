//! Fresh nonces and replay protection.
//!
//! Both protocol figures in the paper carry "a cookie comprising a fresh
//! nonce N_WS", and the security analysis states that "with the usage of
//! fresh nonce, session keys and risk factors, we can prevent replay
//! attacks". [`NonceGenerator`] issues unpredictable nonces;
//! [`ReplayGuard`] remembers which nonces a server has already accepted so
//! a replayed message is detected.

use std::collections::HashSet;
use std::fmt;

use crate::entropy::EntropySource;

/// A 128-bit protocol nonce.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Nonce(pub [u8; 16]);

impl Nonce {
    /// The nonce bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{:02x}", b)).collect()
    }
}

impl fmt::Debug for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nonce({})", self.to_hex())
    }
}

impl fmt::Display for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Issues fresh nonces from an entropy source.
#[derive(Debug)]
pub struct NonceGenerator<E> {
    entropy: E,
}

impl<E: EntropySource> NonceGenerator<E> {
    /// Creates a generator over `entropy`.
    pub fn new(entropy: E) -> Self {
        NonceGenerator { entropy }
    }

    /// Issues the next nonce.
    pub fn next_nonce(&mut self) -> Nonce {
        let mut n = [0u8; 16];
        self.entropy.fill(&mut n);
        Nonce(n)
    }
}

/// Possible outcomes of presenting a nonce to a [`ReplayGuard`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NonceCheck {
    /// The nonce was expected and fresh; it is now consumed.
    Fresh,
    /// The nonce was already consumed — a replay.
    Replayed,
    /// The nonce was never issued by this guard's owner.
    Unknown,
}

/// Tracks issued and consumed nonces for replay detection.
///
/// # Example
///
/// ```
/// use btd_crypto::nonce::{Nonce, NonceCheck, ReplayGuard};
///
/// let mut guard = ReplayGuard::new();
/// let n = Nonce([7; 16]);
/// guard.issue(n);
/// assert_eq!(guard.consume(n), NonceCheck::Fresh);
/// assert_eq!(guard.consume(n), NonceCheck::Replayed);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReplayGuard {
    outstanding: HashSet<Nonce>,
    consumed: HashSet<Nonce>,
}

impl ReplayGuard {
    /// Creates an empty guard.
    pub fn new() -> Self {
        ReplayGuard::default()
    }

    /// Records that `nonce` has been issued and may be consumed once.
    pub fn issue(&mut self, nonce: Nonce) {
        self.outstanding.insert(nonce);
    }

    /// Attempts to consume `nonce`.
    pub fn consume(&mut self, nonce: Nonce) -> NonceCheck {
        if self.consumed.contains(&nonce) {
            return NonceCheck::Replayed;
        }
        if self.outstanding.remove(&nonce) {
            self.consumed.insert(nonce);
            NonceCheck::Fresh
        } else {
            NonceCheck::Unknown
        }
    }

    /// How many nonces are issued but not yet consumed.
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }

    /// How many nonces have been consumed.
    pub fn consumed_len(&self) -> usize {
        self.consumed.len()
    }

    /// Whether `nonce` has already been consumed.
    pub fn is_consumed(&self, nonce: Nonce) -> bool {
        self.consumed.contains(&nonce)
    }

    /// Forcibly records `nonce` as consumed, regardless of whether this
    /// guard issued it. Used when replaying a journal: an applied record
    /// proves its nonce was accepted, even though the restarted guard
    /// never issued it. Returns false if it was already consumed.
    pub fn mark_consumed(&mut self, nonce: Nonce) -> bool {
        self.outstanding.remove(&nonce);
        self.consumed.insert(nonce)
    }

    /// Forgets that `nonce` was consumed (prunes it from the replay set).
    ///
    /// Used when the session that consumed the nonce is torn down: the
    /// nonce's validity window is over, so the guard no longer needs to
    /// remember it. A pruned nonce presented again is *still* rejected —
    /// it is no longer outstanding either, so it reads as never-issued
    /// ([`NonceCheck::Unknown`]) rather than replayed. Returns whether the
    /// nonce was present.
    pub fn forget_consumed(&mut self, nonce: Nonce) -> bool {
        self.consumed.remove(&nonce)
    }

    /// The consumed-nonce set in sorted (deterministic) order.
    ///
    /// Used to persist replay state: only *consumed* nonces matter for
    /// safety. Outstanding nonces are ephemeral challenges that a restarted
    /// server simply re-issues.
    pub fn consumed_sorted(&self) -> Vec<Nonce> {
        let mut v: Vec<Nonce> = self.consumed.iter().copied().collect();
        v.sort_by_key(|n| n.0);
        v
    }

    /// Rebuilds a guard from a persisted consumed set (no outstanding
    /// nonces — the owner re-issues challenges after restoring).
    pub fn from_consumed(consumed: impl IntoIterator<Item = Nonce>) -> Self {
        ReplayGuard {
            outstanding: HashSet::new(),
            consumed: consumed.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::ChaChaEntropy;

    #[test]
    fn generator_produces_distinct_nonces() {
        let mut g = NonceGenerator::new(ChaChaEntropy::from_u64_seed(1));
        let mut seen = HashSet::new();
        for _ in 0..1_000 {
            assert!(seen.insert(g.next_nonce()), "nonce collision");
        }
    }

    #[test]
    fn guard_lifecycle() {
        let mut guard = ReplayGuard::new();
        let n1 = Nonce([1; 16]);
        let n2 = Nonce([2; 16]);
        guard.issue(n1);
        assert_eq!(guard.outstanding_len(), 1);
        assert_eq!(guard.consume(n2), NonceCheck::Unknown);
        assert_eq!(guard.consume(n1), NonceCheck::Fresh);
        assert_eq!(guard.consumed_len(), 1);
        assert_eq!(guard.consume(n1), NonceCheck::Replayed);
        assert_eq!(guard.outstanding_len(), 0);
    }

    #[test]
    fn reissuing_consumed_nonce_still_replays() {
        // A server must never accept a nonce twice even if buggy logic
        // reissues it.
        let mut guard = ReplayGuard::new();
        let n = Nonce([3; 16]);
        guard.issue(n);
        assert_eq!(guard.consume(n), NonceCheck::Fresh);
        guard.issue(n);
        assert_eq!(guard.consume(n), NonceCheck::Replayed);
    }

    #[test]
    fn forgotten_nonce_reads_as_unknown_not_fresh() {
        let mut guard = ReplayGuard::new();
        let n = Nonce([4; 16]);
        guard.issue(n);
        assert_eq!(guard.consume(n), NonceCheck::Fresh);
        assert!(guard.forget_consumed(n));
        assert!(!guard.forget_consumed(n), "already pruned");
        // Pruning must never re-open the validity window.
        assert_eq!(guard.consume(n), NonceCheck::Unknown);
        assert_eq!(guard.consumed_len(), 0);
    }

    #[test]
    fn nonce_display() {
        let n = Nonce([0xAB; 16]);
        assert_eq!(n.to_string(), "ab".repeat(16));
    }
}
