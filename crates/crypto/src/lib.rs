#![warn(missing_docs)]

//! Cryptographic substrate for the TRUST / FLock reproduction, implemented
//! from scratch (no external dependencies).
//!
//! The paper assumes a crypto processor inside the FLock module that can
//! generate (public, private) key pairs, sign and verify message
//! authentication codes, encrypt session keys, and hash displayed frames
//! (MD5 or SHA-256 are named). The paper does not fix an algorithm suite, so
//! this crate provides a discrete-log suite over standard groups:
//!
//! * [`bignum`] — fixed-width 2048-bit unsigned arithmetic with Knuth
//!   division and modular exponentiation.
//! * [`group`] — Diffie–Hellman groups: the RFC 3526 2048-bit MODP group for
//!   production parameters and a 512-bit safe-prime group for fast tests.
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104).
//! * [`chacha20`] — the RFC 7539 stream cipher, used for session encryption
//!   and as a deterministic entropy source.
//! * [`schnorr`] — Schnorr signatures over a prime-order subgroup; these
//!   play the role of the paper's "MAC signed with the private key".
//! * [`elgamal`] — ElGamal-style hybrid public-key encryption (used to send
//!   the session key encrypted under the Web Server's public key, Fig. 10).
//! * [`cert`] — CA-signed public-key certificates (Fig. 8/9).
//! * [`nonce`] — fresh-nonce generation and replay registries.
//!
//! # Example
//!
//! ```
//! use btd_crypto::group::DhGroup;
//! use btd_crypto::schnorr::KeyPair;
//! use btd_crypto::entropy::ChaChaEntropy;
//!
//! let group = DhGroup::test_512();
//! let mut entropy = ChaChaEntropy::from_seed([7u8; 32]);
//! let keys = KeyPair::generate(&group, &mut entropy);
//! let sig = keys.sign(b"registration request", &mut entropy);
//! assert!(keys.public_key().verify(b"registration request", &sig));
//! ```

pub mod bignum;
pub mod cert;
pub mod chacha20;
pub mod elgamal;
pub mod entropy;
pub mod group;
pub mod hmac;
pub mod nonce;
pub mod primality;
pub mod schnorr;
pub mod sha256;

pub use bignum::U2048;
pub use entropy::{ChaChaEntropy, EntropySource};
pub use group::DhGroup;
pub use schnorr::{KeyPair, PublicKey, Signature};
pub use sha256::{sha256, Digest};
