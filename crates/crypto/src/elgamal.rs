//! ElGamal-style hybrid public-key encryption.
//!
//! In the continuous-authentication flow (Fig. 10, step 2) FLock sends "a
//! freshly generated session key encrypted with the Web Server's public
//! key". This module provides that operation: an ephemeral Diffie–Hellman
//! share derives a ChaCha20 key and an HMAC key (encrypt-then-MAC), so
//! arbitrary payloads can be sealed to a [`PublicKey`].

use crate::bignum::U2048;
use crate::chacha20;
use crate::entropy::EntropySource;
use crate::hmac::{constant_time_eq, hmac_sha256};
use crate::schnorr::{KeyPair, PublicKey};
use crate::sha256::Sha256;

/// A sealed (encrypted + authenticated) payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SealedBox {
    /// Ephemeral public share `g^k`.
    pub ephemeral: U2048,
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA256 tag over the ephemeral share and ciphertext.
    pub tag: [u8; 32],
}

/// Why opening a sealed box failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpenError {
    /// The ephemeral share was not a valid group element.
    InvalidEphemeral,
    /// The authentication tag did not verify (tampering or wrong key).
    TagMismatch,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::InvalidEphemeral => f.write_str("invalid ephemeral group element"),
            OpenError::TagMismatch => f.write_str("authentication tag mismatch"),
        }
    }
}

impl std::error::Error for OpenError {}

/// Derives (cipher key, mac key, nonce) from the DH shared secret.
fn derive_keys(shared: &U2048, ephemeral: &U2048) -> ([u8; 32], [u8; 32], [u8; 12]) {
    let mut h = Sha256::new();
    h.update_field(b"elgamal-kdf");
    h.update_field(&shared.to_be_bytes());
    h.update_field(&ephemeral.to_be_bytes());
    let base = h.finalize();
    let expand = |label: u8| {
        let mut hh = Sha256::new();
        hh.update(base.as_bytes());
        hh.update(&[label]);
        hh.finalize()
    };
    let cipher_key = *expand(1).as_bytes();
    let mac_key = *expand(2).as_bytes();
    let nonce_full = expand(3);
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&nonce_full.as_bytes()[..12]);
    (cipher_key, mac_key, nonce)
}

/// Seals `plaintext` to `recipient`.
///
/// # Example
///
/// ```
/// use btd_crypto::elgamal::{seal, open};
/// use btd_crypto::entropy::ChaChaEntropy;
/// use btd_crypto::group::DhGroup;
/// use btd_crypto::schnorr::KeyPair;
///
/// let mut entropy = ChaChaEntropy::from_u64_seed(1);
/// let server = KeyPair::generate(DhGroup::test_512(), &mut entropy);
/// let boxed = seal(server.public_key(), b"session key material", &mut entropy);
/// let opened = open(&server, &boxed).unwrap();
/// assert_eq!(opened, b"session key material");
/// ```
pub fn seal(recipient: &PublicKey, plaintext: &[u8], entropy: &mut dyn EntropySource) -> SealedBox {
    let group = recipient.group();
    let k = group.random_scalar(entropy);
    let ephemeral = group.pow_g(&k);
    let shared = group.pow(recipient.element(), &k);
    let (cipher_key, mac_key, nonce) = derive_keys(&shared, &ephemeral);
    let ciphertext = chacha20::encrypt(&cipher_key, &nonce, plaintext);
    let tag = tag_for(&mac_key, &ephemeral, &ciphertext);
    SealedBox {
        ephemeral,
        ciphertext,
        tag,
    }
}

/// Opens a sealed box with the recipient's key pair.
///
/// # Errors
///
/// Returns [`OpenError`] if the ephemeral element is invalid or the tag does
/// not verify (wrong key, tampered ciphertext, or tampered ephemeral).
pub fn open(recipient: &KeyPair, boxed: &SealedBox) -> Result<Vec<u8>, OpenError> {
    let group = recipient.public_key().group();
    if !group.contains(&boxed.ephemeral) {
        return Err(OpenError::InvalidEphemeral);
    }
    let shared = group.pow(&boxed.ephemeral, recipient.secret_scalar());
    let (cipher_key, mac_key, nonce) = derive_keys(&shared, &boxed.ephemeral);
    let expected = tag_for(&mac_key, &boxed.ephemeral, &boxed.ciphertext);
    if !constant_time_eq(&expected, &boxed.tag) {
        return Err(OpenError::TagMismatch);
    }
    Ok(chacha20::decrypt(&cipher_key, &nonce, &boxed.ciphertext))
}

fn tag_for(mac_key: &[u8; 32], ephemeral: &U2048, ciphertext: &[u8]) -> [u8; 32] {
    let mut data = Vec::with_capacity(256 + ciphertext.len());
    data.extend_from_slice(&ephemeral.to_be_bytes());
    data.extend_from_slice(ciphertext);
    *hmac_sha256(mac_key, &data).as_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::ChaChaEntropy;
    use crate::group::DhGroup;

    fn setup(seed: u64) -> (KeyPair, ChaChaEntropy) {
        let mut e = ChaChaEntropy::from_u64_seed(seed);
        let kp = KeyPair::generate(DhGroup::test_512(), &mut e);
        (kp, e)
    }

    #[test]
    fn roundtrip() {
        let (kp, mut e) = setup(1);
        let boxed = seal(kp.public_key(), b"secret session key", &mut e);
        assert_eq!(open(&kp, &boxed).unwrap(), b"secret session key");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (kp, mut e) = setup(2);
        let boxed = seal(kp.public_key(), b"", &mut e);
        assert_eq!(open(&kp, &boxed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (kp, mut e) = setup(3);
        let mut boxed = seal(kp.public_key(), b"payload", &mut e);
        boxed.ciphertext[0] ^= 1;
        assert_eq!(open(&kp, &boxed), Err(OpenError::TagMismatch));
    }

    #[test]
    fn tampered_tag_rejected() {
        let (kp, mut e) = setup(4);
        let mut boxed = seal(kp.public_key(), b"payload", &mut e);
        boxed.tag[5] ^= 0xFF;
        assert_eq!(open(&kp, &boxed), Err(OpenError::TagMismatch));
    }

    #[test]
    fn tampered_ephemeral_rejected() {
        let (kp, mut e) = setup(5);
        let mut boxed = seal(kp.public_key(), b"payload", &mut e);
        boxed.ephemeral = boxed
            .ephemeral
            .add_mod(&U2048::ONE, kp.public_key().group().modulus());
        let result = open(&kp, &boxed);
        assert!(result.is_err());
    }

    #[test]
    fn invalid_ephemeral_rejected() {
        let (kp, mut e) = setup(6);
        let mut boxed = seal(kp.public_key(), b"payload", &mut e);
        boxed.ephemeral = U2048::ZERO;
        assert_eq!(open(&kp, &boxed), Err(OpenError::InvalidEphemeral));
    }

    #[test]
    fn wrong_recipient_rejected() {
        let (kp1, mut e) = setup(7);
        let kp2 = KeyPair::generate(DhGroup::test_512(), &mut e);
        let boxed = seal(kp1.public_key(), b"payload", &mut e);
        assert_eq!(open(&kp2, &boxed), Err(OpenError::TagMismatch));
    }

    #[test]
    fn sealing_is_randomized() {
        let (kp, mut e) = setup(8);
        let b1 = seal(kp.public_key(), b"same", &mut e);
        let b2 = seal(kp.public_key(), b"same", &mut e);
        assert_ne!(b1.ephemeral, b2.ephemeral);
        assert_ne!(b1.ciphertext, b2.ciphertext);
    }

    #[test]
    fn large_payload() {
        let (kp, mut e) = setup(9);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let boxed = seal(kp.public_key(), &payload, &mut e);
        assert_eq!(open(&kp, &boxed).unwrap(), payload);
    }
}
