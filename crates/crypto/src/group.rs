//! Diffie–Hellman groups over safe primes.
//!
//! A [`DhGroup`] carries a safe prime `p`, a generator `g` of the
//! prime-order subgroup of quadratic residues, and the subgroup order
//! `q = (p - 1) / 2`. Two parameter sets ship with the crate:
//!
//! * [`DhGroup::modp_2048`] — the RFC 3526 group 14 modulus, realistic
//!   production parameters;
//! * [`DhGroup::test_512`] — a locally generated 512-bit safe prime so unit
//!   tests and benches run in microseconds rather than milliseconds.

use std::fmt;
use std::sync::OnceLock;

use crate::bignum::U2048;
use crate::entropy::EntropySource;

/// RFC 3526 group 14 (2048-bit MODP) modulus.
const MODP_2048_P: &str = "
    FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1 29024E08 8A67CC74
    020BBEA6 3B139B22 514A0879 8E3404DD EF9519B3 CD3A431B 302B0A6D F25F1437
    4FE1356D 6D51C245 E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
    EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D C2007CB8 A163BF05
    98DA4836 1C55D39A 69163FA8 FD24CF5F 83655D23 DCA3AD96 1C62F356 208552BB
    9ED52907 7096966D 670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B
    E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9 DE2BCBF6 95581718
    3995497C EA956AE5 15D22618 98FA0510 15728E5A 8AACAA68 FFFFFFFF FFFFFFFF";

/// Locally generated 512-bit safe prime (seeded, reproducible; see DESIGN.md).
const TEST_512_P: &str = "
    e436cc12cc40f7d99dda4196ff7c95e079e89758fb4d1a238d9034267aaaced3
    cda249dd0ca53cce9ac2dfbfad68b840d02a01837ec075b1dc145ad6bdbb28bf";

/// A safe-prime Diffie–Hellman group.
#[derive(Clone, PartialEq, Eq)]
pub struct DhGroup {
    name: &'static str,
    p: U2048,
    q: U2048,
    g: U2048,
}

impl fmt::Debug for DhGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DhGroup({}, {} bits)", self.name, self.p.bits())
    }
}

impl DhGroup {
    /// The RFC 3526 2048-bit MODP group (generator 2 squared to 4, which
    /// generates the order-`q` subgroup of quadratic residues).
    pub fn modp_2048() -> &'static DhGroup {
        static GROUP: OnceLock<DhGroup> = OnceLock::new();
        GROUP.get_or_init(|| {
            let p = U2048::from_hex(MODP_2048_P);
            let q = p.checked_sub(&U2048::ONE).shr1();
            DhGroup {
                name: "modp-2048",
                p,
                q,
                g: U2048::from_u64(4),
            }
        })
    }

    /// A 512-bit safe-prime group for fast tests (generator 4).
    pub fn test_512() -> &'static DhGroup {
        static GROUP: OnceLock<DhGroup> = OnceLock::new();
        GROUP.get_or_init(|| {
            let p = U2048::from_hex(TEST_512_P);
            let q = p.checked_sub(&U2048::ONE).shr1();
            DhGroup {
                name: "test-512",
                p,
                q,
                g: U2048::from_u64(4),
            }
        })
    }

    /// Group name (`"modp-2048"` or `"test-512"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The prime modulus `p`.
    pub fn modulus(&self) -> &U2048 {
        &self.p
    }

    /// The subgroup order `q = (p - 1) / 2`.
    pub fn order(&self) -> &U2048 {
        &self.q
    }

    /// The subgroup generator `g`.
    pub fn generator(&self) -> &U2048 {
        &self.g
    }

    /// `g^e mod p`.
    pub fn pow_g(&self, e: &U2048) -> U2048 {
        self.g.pow_mod(e, &self.p)
    }

    /// `base^e mod p`.
    pub fn pow(&self, base: &U2048, e: &U2048) -> U2048 {
        base.pow_mod(e, &self.p)
    }

    /// Multiplies two group elements mod `p`.
    pub fn mul(&self, a: &U2048, b: &U2048) -> U2048 {
        a.mul_mod(b, &self.p)
    }

    /// Draws a uniformly random scalar in `[1, q)`.
    pub fn random_scalar(&self, entropy: &mut dyn EntropySource) -> U2048 {
        // Rejection-sample 2048-bit candidates masked to the order's bit
        // length; expected < 2 iterations.
        let qbits = self.q.bits();
        let nbytes = qbits.div_ceil(8);
        loop {
            let mut buf = vec![0u8; nbytes];
            entropy.fill(&mut buf);
            // Mask excess high bits.
            let excess = nbytes * 8 - qbits;
            if excess > 0 {
                buf[0] &= 0xFF >> excess;
            }
            let candidate = U2048::from_be_bytes(&buf);
            if !candidate.is_zero() && candidate < self.q {
                return candidate;
            }
        }
    }

    /// Whether `x` is a valid group element in `[1, p)`.
    pub fn contains(&self, x: &U2048) -> bool {
        !x.is_zero() && x < &self.p
    }

    /// Hashes arbitrary bytes to a scalar mod `q` (SHA-256 output reduced).
    pub fn hash_to_scalar(&self, data: &[u8]) -> U2048 {
        let digest = crate::sha256::sha256(data);
        let wide = U2048::from_be_bytes(digest.as_bytes());
        let r = wide.rem(&self.q);
        if r.is_zero() {
            U2048::ONE
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::ChaChaEntropy;

    #[test]
    fn modp_2048_has_expected_size() {
        let g = DhGroup::modp_2048();
        assert_eq!(g.modulus().bits(), 2048);
        assert_eq!(g.order().bits(), 2047);
    }

    #[test]
    fn test_512_generator_has_order_q() {
        let g = DhGroup::test_512();
        assert_eq!(g.modulus().bits(), 512);
        // g^q == 1 (g generates the order-q subgroup).
        assert_eq!(g.pow_g(g.order()), U2048::ONE);
        // g^1 != 1.
        assert_ne!(g.pow_g(&U2048::ONE), U2048::ONE);
    }

    #[test]
    fn safe_prime_relation_holds() {
        for g in [DhGroup::test_512(), DhGroup::modp_2048()] {
            // p == 2q + 1
            let (two_q, carry) = g.order().overflowing_add(g.order());
            assert!(!carry);
            let expect = g.modulus().checked_sub(&U2048::ONE);
            assert_eq!(two_q, expect, "p = 2q+1 for {}", g.name());
        }
    }

    #[test]
    fn exponent_laws() {
        let g = DhGroup::test_512();
        let a = U2048::from_u64(12345);
        let b = U2048::from_u64(67890);
        // g^a * g^b == g^(a+b)
        let lhs = g.mul(&g.pow_g(&a), &g.pow_g(&b));
        let (sum, _) = a.overflowing_add(&b);
        assert_eq!(lhs, g.pow_g(&sum));
    }

    #[test]
    fn random_scalars_are_in_range_and_distinct() {
        let g = DhGroup::test_512();
        let mut e = ChaChaEntropy::from_u64_seed(1);
        let mut seen = Vec::new();
        for _ in 0..10 {
            let s = g.random_scalar(&mut e);
            assert!(!s.is_zero());
            assert!(&s < g.order());
            assert!(!seen.contains(&s));
            seen.push(s);
        }
    }

    #[test]
    fn hash_to_scalar_is_reduced_and_deterministic() {
        let g = DhGroup::test_512();
        let s1 = g.hash_to_scalar(b"hello");
        let s2 = g.hash_to_scalar(b"hello");
        assert_eq!(s1, s2);
        assert!(&s1 < g.order());
        assert_ne!(g.hash_to_scalar(b"a"), g.hash_to_scalar(b"b"));
    }

    #[test]
    fn contains_checks_bounds() {
        let g = DhGroup::test_512();
        assert!(!g.contains(&U2048::ZERO));
        assert!(g.contains(&U2048::ONE));
        assert!(!g.contains(g.modulus()));
    }
}
