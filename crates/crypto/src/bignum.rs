//! Fixed-width 2048-bit unsigned integer arithmetic.
//!
//! [`U2048`] stores 32 little-endian `u64` limbs. The crate needs exactly
//! the operations required by discrete-log cryptography over ≤2048-bit
//! moduli: comparison, addition/subtraction with carry, full 4096-bit
//! multiplication, Knuth Algorithm D division (for reduction mod `p` and
//! mod `q`), and modular exponentiation.

use std::cmp::Ordering;
use std::fmt;

/// Number of 64-bit limbs in a [`U2048`].
pub const LIMBS: usize = 32;

/// A 2048-bit unsigned integer (little-endian limbs).
///
/// # Example
///
/// ```
/// use btd_crypto::bignum::U2048;
///
/// let a = U2048::from_u64(10);
/// let b = U2048::from_u64(3);
/// let m = U2048::from_u64(7);
/// assert_eq!(a.mul_mod(&b, &m), U2048::from_u64(2)); // 30 mod 7
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct U2048 {
    limbs: [u64; LIMBS],
}

impl U2048 {
    /// The value 0.
    pub const ZERO: U2048 = U2048 { limbs: [0; LIMBS] };

    /// The value 1.
    pub const ONE: U2048 = {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = 1;
        U2048 { limbs }
    };

    /// Creates a value from a single `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = v;
        U2048 { limbs }
    }

    /// Creates a value from big-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than 256 bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= LIMBS * 8, "input exceeds 2048 bits");
        let mut limbs = [0u64; LIMBS];
        for (i, &b) in bytes.iter().rev().enumerate() {
            limbs[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        U2048 { limbs }
    }

    /// The value as 256 big-endian bytes (zero-padded on the left).
    pub fn to_be_bytes(&self) -> [u8; LIMBS * 8] {
        let mut out = [0u8; LIMBS * 8];
        for (i, limb) in self.limbs.iter().enumerate() {
            let be = limb.to_be_bytes();
            let start = (LIMBS - 1 - i) * 8;
            out[start..start + 8].copy_from_slice(&be);
        }
        out
    }

    /// Parses a (case-insensitive) hexadecimal string, ignoring ASCII
    /// whitespace.
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters or input longer than 512 hex digits.
    pub fn from_hex(hex: &str) -> Self {
        let digits: Vec<u8> = hex
            .bytes()
            .filter(|b| !b.is_ascii_whitespace())
            .map(|b| match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => panic!("invalid hex digit {:?}", b as char),
            })
            .collect();
        assert!(digits.len() <= LIMBS * 16, "hex input exceeds 2048 bits");
        let mut limbs = [0u64; LIMBS];
        for (i, &d) in digits.iter().rev().enumerate() {
            limbs[i / 16] |= (d as u64) << (4 * (i % 16));
        }
        U2048 { limbs }
    }

    /// Lowercase hex rendering without leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        let mut started = false;
        for limb in self.limbs.iter().rev() {
            if started {
                s.push_str(&format!("{:016x}", limb));
            } else if *limb != 0 {
                s.push_str(&format!("{:x}", limb));
                started = true;
            }
        }
        if s.is_empty() {
            s.push('0');
        }
        s
    }

    /// The raw limbs, least-significant first.
    pub fn limbs(&self) -> &[u64; LIMBS] {
        &self.limbs
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|l| *l == 0)
    }

    /// Whether the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs[0] & 1 == 0
    }

    /// Value of bit `i` (little-endian bit order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 2048`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < LIMBS * 64, "bit index out of range");
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Position of the highest set bit plus one (0 for the value zero).
    pub fn bits(&self) -> usize {
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if *limb != 0 {
                return i * 64 + (64 - limb.leading_zeros() as usize);
            }
        }
        0
    }

    /// `self + other`, returning the sum and the carry-out bit.
    #[allow(clippy::needless_range_loop)] // limb indexing mirrors the maths
    pub fn overflowing_add(&self, other: &U2048) -> (U2048, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = false;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U2048 { limbs: out }, carry)
    }

    /// `self - other`, returning the difference and the borrow-out bit.
    #[allow(clippy::needless_range_loop)] // limb indexing mirrors the maths
    pub fn overflowing_sub(&self, other: &U2048) -> (U2048, bool) {
        let mut out = [0u64; LIMBS];
        let mut borrow = false;
        for i in 0..LIMBS {
            let (d1, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U2048 { limbs: out }, borrow)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn checked_sub(&self, other: &U2048) -> U2048 {
        let (diff, borrow) = self.overflowing_sub(other);
        assert!(!borrow, "bignum subtraction underflow");
        diff
    }

    /// Full 4096-bit product as 64 little-endian limbs.
    ///
    /// Both loops are bounded by the operands' occupied limbs: residues in
    /// a 512-bit group fill 8 of the 32 limbs, and scanning the zero tail
    /// would quadruple the work of every modular multiply.
    pub fn mul_wide(&self, other: &U2048) -> [u64; LIMBS * 2] {
        let mut out = [0u64; LIMBS * 2];
        let an = trim(&self.limbs).len();
        let bn = trim(&other.limbs).len();
        for i in 0..an {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..bn {
                let cur =
                    out[i + j] as u128 + (self.limbs[i] as u128) * (other.limbs[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            // Row i's carry slot i+bn sits strictly above everything rows
            // 0..i wrote, so plain assignment is exact.
            out[i + bn] = carry as u64;
        }
        out
    }

    /// `(self + other) mod m`. Inputs must already be `< m`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if an input is not reduced.
    pub fn add_mod(&self, other: &U2048, m: &U2048) -> U2048 {
        debug_assert!(self < m && other < m, "add_mod inputs must be reduced");
        let (sum, carry) = self.overflowing_add(other);
        if carry || &sum >= m {
            // carry implies sum+2^2048 >= m, so wrapping subtraction of m is
            // the correct residue in both branches.
            let (r, _) = sum.overflowing_sub(m);
            r
        } else {
            sum
        }
    }

    /// `(self - other) mod m`. Inputs must already be `< m`.
    pub fn sub_mod(&self, other: &U2048, m: &U2048) -> U2048 {
        debug_assert!(self < m && other < m, "sub_mod inputs must be reduced");
        let (diff, borrow) = self.overflowing_sub(other);
        if borrow {
            let (r, _) = diff.overflowing_add(m);
            r
        } else {
            diff
        }
    }

    /// `(self * other) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mul_mod(&self, other: &U2048, m: &U2048) -> U2048 {
        let wide = self.mul_wide(other);
        rem_wide(&wide, m)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U2048) -> U2048 {
        let mut wide = [0u64; LIMBS * 2];
        wide[..LIMBS].copy_from_slice(&self.limbs);
        rem_wide(&wide, m)
    }

    /// `self^exp mod m` by left-to-right square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero. `m == 1` yields zero.
    pub fn pow_mod(&self, exp: &U2048, m: &U2048) -> U2048 {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m == &U2048::ONE {
            return U2048::ZERO;
        }
        let base = self.rem(m);
        let nbits = exp.bits();
        if nbits == 0 {
            return U2048::ONE;
        }
        let mut acc = U2048::ONE;
        for i in (0..nbits).rev() {
            acc = acc.mul_mod(&acc, m);
            if exp.bit(i) {
                acc = acc.mul_mod(&base, m);
            }
        }
        acc
    }

    /// `self^(-1) mod m` for prime `m`, via Fermat's little theorem.
    ///
    /// # Panics
    ///
    /// Panics if `self` reduces to zero mod `m` (no inverse) or if `m < 2`.
    pub fn inv_mod_prime(&self, m: &U2048) -> U2048 {
        assert!(m > &U2048::ONE, "modulus must exceed 1");
        let reduced = self.rem(m);
        assert!(!reduced.is_zero(), "zero has no modular inverse");
        let exp = m.checked_sub(&U2048::from_u64(2));
        reduced.pow_mod(&exp, m)
    }

    /// Shifts right by one bit.
    #[allow(clippy::needless_range_loop)] // limb indexing mirrors the maths
    pub fn shr1(&self) -> U2048 {
        let mut out = [0u64; LIMBS];
        for i in 0..LIMBS {
            out[i] = self.limbs[i] >> 1;
            if i + 1 < LIMBS {
                out[i] |= self.limbs[i + 1] << 63;
            }
        }
        U2048 { limbs: out }
    }
}

impl Ord for U2048 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U2048 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Default for U2048 {
    fn default() -> Self {
        U2048::ZERO
    }
}

impl fmt::Debug for U2048 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U2048(0x{})", self.to_hex())
    }
}

impl fmt::Display for U2048 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for U2048 {
    fn from(v: u64) -> Self {
        U2048::from_u64(v)
    }
}

/// Reduces a 4096-bit value (64 little-endian limbs) modulo `m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn rem_wide(wide: &[u64; LIMBS * 2], m: &U2048) -> U2048 {
    assert!(!m.is_zero(), "modulus must be non-zero");
    let num = trim(wide);
    let den = trim(&m.limbs);

    // num < den: the remainder is num itself (it fits — trimmed num can be
    // no longer than the trimmed modulus here).
    if cmp_limbs(num, den) == Ordering::Less {
        let mut limbs = [0u64; LIMBS];
        limbs[..num.len()].copy_from_slice(num);
        return U2048 { limbs };
    }

    // Single-limb divisor: schoolbook remainder.
    if den.len() == 1 {
        let d = den[0] as u128;
        let mut r: u128 = 0;
        for i in (0..num.len()).rev() {
            r = ((r << 64) | num[i] as u128) % d;
        }
        return U2048::from_u64(r as u64);
    }

    // Knuth Algorithm D, remainder only, on stack buffers: this sits on
    // the hot path of every modular multiply, so the quotient is never
    // materialised and nothing is heap-allocated.
    //
    // Normalize: shift so the divisor's top limb has its high bit set.
    let n = den.len();
    let shift = den[n - 1].leading_zeros() as usize;
    let mut v = [0u64; LIMBS];
    v[..n].copy_from_slice(den);
    if shift > 0 {
        for i in (1..n).rev() {
            v[i] = (v[i] << shift) | (v[i - 1] >> (64 - shift));
        }
        v[0] <<= shift;
    }

    // u = num << shift; u[num.len()] starts zero, so the top iteration
    // catches the shifted-out spill, and one further limb stays zero for
    // the algorithm's extra high digit.
    let mut u = [0u64; LIMBS * 2 + 2];
    u[..num.len()].copy_from_slice(num);
    if shift > 0 {
        for i in (1..=num.len()).rev() {
            u[i] = (u[i] << shift) | (u[i - 1] >> (64 - shift));
        }
        u[0] <<= shift;
    }
    let sn = if u[num.len()] != 0 {
        num.len() + 1
    } else {
        num.len()
    };

    let v_hi = v[n - 1] as u128;
    let v_next = v[n - 2] as u128;
    for j in (0..=sn - n).rev() {
        // Estimate the quotient digit from the top limbs.
        let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = top / v_hi;
        let mut rhat = top % v_hi;
        while qhat >= 1u128 << 64 || qhat * v_next > ((rhat << 64) | u[j + n - 2] as u128) {
            qhat -= 1;
            rhat += v_hi;
            if rhat >= 1u128 << 64 {
                break;
            }
        }

        // Multiply-and-subtract qhat * v from u[j .. j+n]; the quotient
        // digit itself is discarded.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * v[i] as u128 + carry;
            carry = p >> 64;
            let sub = (u[j + i] as i128) - (p as u64 as i128) - borrow;
            u[j + i] = sub as u64;
            borrow = if sub < 0 { 1 } else { 0 };
        }
        let sub = (u[j + n] as i128) - (carry as i128) - borrow;
        u[j + n] = sub as u64;

        if sub < 0 {
            // Estimate was one too large: add back.
            let mut c: u128 = 0;
            for i in 0..n {
                let s = u[j + i] as u128 + v[i] as u128 + c;
                u[j + i] = s as u64;
                c = s >> 64;
            }
            u[j + n] = u[j + n].wrapping_add(c as u64);
        }
    }

    // The remainder is u[..n] shifted back down.
    let mut limbs = [0u64; LIMBS];
    limbs[..n].copy_from_slice(&u[..n]);
    if shift > 0 {
        for i in 0..n {
            limbs[i] >>= shift;
            if i + 1 < n {
                limbs[i] |= u[i + 1] << (64 - shift);
            }
        }
    }
    U2048 { limbs }
}

/// Strips high zero limbs (returns at least one limb).
fn trim(a: &[u64]) -> &[u64] {
    let mut n = a.len();
    while n > 1 && a[n - 1] == 0 {
        n -= 1;
    }
    &a[..n]
}

/// Compares two little-endian limb slices (any lengths).
fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    let a = trim(a);
    let b = trim(b);
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {}
        ord => return ord,
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U2048 {
        U2048::from_u64(v)
    }

    #[test]
    fn hex_roundtrip() {
        let x = U2048::from_hex("deadbeef00112233445566778899aabbccddeeff");
        assert_eq!(x.to_hex(), "deadbeef00112233445566778899aabbccddeeff");
        assert_eq!(U2048::ZERO.to_hex(), "0");
        assert_eq!(U2048::from_hex("0"), U2048::ZERO);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let x = U2048::from_hex("0102030405060708090a0b0c");
        let bytes = x.to_be_bytes();
        assert_eq!(U2048::from_be_bytes(&bytes), x);
        // Short input is left-padded.
        assert_eq!(U2048::from_be_bytes(&[1, 0]), u(256));
    }

    #[test]
    fn ordering_and_bits() {
        assert!(u(5) < u(7));
        let big = U2048::from_hex("1".repeat(512).as_str());
        assert!(big > u(u64::MAX));
        assert_eq!(u(0).bits(), 0);
        assert_eq!(u(1).bits(), 1);
        assert_eq!(u(0x8000_0000_0000_0000).bits(), 64);
        assert_eq!(U2048::from_hex("1 00000000 00000000").bits(), 65);
    }

    #[test]
    fn add_sub_carry_chain() {
        let max64 = u(u64::MAX);
        let (sum, carry) = max64.overflowing_add(&U2048::ONE);
        assert!(!carry);
        assert_eq!(sum.bits(), 65);
        assert_eq!(sum.checked_sub(&U2048::ONE), max64);
    }

    #[test]
    fn full_width_overflow_carries_out() {
        let mut limbs = [u64::MAX; LIMBS];
        limbs[0] = u64::MAX;
        let all_ones = U2048 { limbs };
        let (wrapped, carry) = all_ones.overflowing_add(&U2048::ONE);
        assert!(carry);
        assert!(wrapped.is_zero());
    }

    #[test]
    fn mul_wide_small_values() {
        let p = u(0xFFFF_FFFF).mul_wide(&u(0xFFFF_FFFF));
        assert_eq!(p[0], 0xFFFF_FFFE_0000_0001);
        assert!(p[1..].iter().all(|l| *l == 0));
    }

    #[test]
    fn mul_wide_cross_limb() {
        // (2^64)^2 = 2^128 → limb 2.
        let two64 = U2048::from_hex("1 0000000000000000");
        let p = two64.mul_wide(&two64);
        assert_eq!(p[2], 1);
        assert!(p.iter().enumerate().all(|(i, l)| i == 2 || *l == 0));
    }

    #[test]
    fn rem_and_mul_mod() {
        assert_eq!(u(100).rem(&u(7)), u(2));
        assert_eq!(u(100).mul_mod(&u(100), &u(97)), u(10_000 % 97));
    }

    #[test]
    fn add_mod_wraps() {
        let m = u(97);
        assert_eq!(u(96).add_mod(&u(5), &m), u(4));
        assert_eq!(u(3).sub_mod(&u(5), &m), u(95));
    }

    #[test]
    fn add_mod_handles_carry_out_with_large_modulus() {
        // m just below 2^2048 so a+b overflows the limb array.
        let mut limbs = [u64::MAX; LIMBS];
        limbs[0] = u64::MAX - 10;
        let m = U2048 { limbs };
        let a = m.checked_sub(&U2048::ONE);
        let b = m.checked_sub(&U2048::from_u64(2));
        // (m-1) + (m-2) mod m == m-3
        assert_eq!(a.add_mod(&b, &m), m.checked_sub(&U2048::from_u64(3)));
    }

    #[test]
    fn pow_mod_matches_reference() {
        // 5^117 mod 19 == 1 (order of 5 mod 19 is 9, 117 = 9*13).
        assert_eq!(u(5).pow_mod(&u(117), &u(19)), u(1));
        assert_eq!(u(2).pow_mod(&u(10), &u(1_000_000)), u(1024));
        assert_eq!(u(7).pow_mod(&U2048::ZERO, &u(13)), U2048::ONE);
        assert_eq!(u(7).pow_mod(&u(5), &U2048::ONE), U2048::ZERO);
    }

    #[test]
    fn pow_mod_large_modulus() {
        // Fermat: a^(p-1) = 1 mod p for prime p (use the 512-bit test prime).
        let p = U2048::from_hex(
            "e436cc12cc40f7d99dda4196ff7c95e079e89758fb4d1a238d9034267aaaced3\
             cda249dd0ca53cce9ac2dfbfad68b840d02a01837ec075b1dc145ad6bdbb28bf",
        );
        let a = u(123_456_789);
        let exp = p.checked_sub(&U2048::ONE);
        assert_eq!(a.pow_mod(&exp, &p), U2048::ONE);
    }

    #[test]
    fn inverse_mod_prime() {
        let p = u(101);
        for a in [2u64, 3, 50, 100] {
            let inv = u(a).inv_mod_prime(&p);
            assert_eq!(u(a).mul_mod(&inv, &p), U2048::ONE, "a = {a}");
        }
    }

    #[test]
    #[should_panic(expected = "no modular inverse")]
    fn inverse_of_zero_panics() {
        let _ = U2048::ZERO.inv_mod_prime(&u(101));
    }

    #[test]
    fn shr1_halves() {
        assert_eq!(u(10).shr1(), u(5));
        let two64 = U2048::from_hex("1 0000000000000000");
        assert_eq!(two64.shr1(), u(1u64 << 63));
    }

    #[test]
    fn division_reconstruction_small() {
        // Exhaustive-ish check against u128 arithmetic.
        let cases: [(u128, u128); 6] = [
            (12345678901234567890, 97),
            (u128::from(u64::MAX) + 5, u64::MAX as u128),
            (1 << 100, (1 << 50) + 3),
            (999, 1000),
            (1000, 1000),
            (0, 5),
        ];
        for (n, d) in cases {
            let nb = U2048::from_be_bytes(&n.to_be_bytes());
            let db = U2048::from_be_bytes(&d.to_be_bytes());
            let r = nb.rem(&db);
            let expect = U2048::from_be_bytes(&(n % d).to_be_bytes());
            assert_eq!(r, expect, "{} mod {}", n, d);
        }
    }

    #[test]
    fn division_add_back_branch() {
        // A case engineered to hit Knuth D's rare "add back" correction:
        // numerator with a run of high ones against a divisor of the form
        // 2^k - small.
        let n =
            U2048::from_hex("7fffffffffffffff ffffffffffffffff 0000000000000000 0000000000000003");
        let d = U2048::from_hex("8000000000000000 0000000000000001");
        let r = n.rem(&d);
        // Cross-check with an independent route: subtract d*q step by step
        // using mul_mod identity r = n mod d  ⇒  (n - r) mod d == 0.
        let diff = n.checked_sub(&r);
        assert_eq!(diff.rem(&d), U2048::ZERO);
        assert!(r < d);
    }

    #[test]
    fn rem_wide_reduces_product() {
        let a = U2048::from_hex("ffffffffffffffffffffffffffffffff");
        let m = u(1_000_003);
        let wide = a.mul_wide(&a);
        let r = rem_wide(&wide, &m);
        assert!(r < m);
        // (a mod m)^2 mod m must agree.
        let a_red = a.rem(&m);
        assert_eq!(a_red.mul_mod(&a_red, &m), r);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_u2048(max_limbs: usize) -> impl Strategy<Value = U2048> {
        proptest::collection::vec(any::<u64>(), 1..=max_limbs).prop_map(|v| {
            let mut limbs = [0u64; LIMBS];
            limbs[..v.len()].copy_from_slice(&v);
            U2048 { limbs }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn add_then_sub_roundtrips(a in arb_u2048(16), b in arb_u2048(16)) {
            let (sum, carry) = a.overflowing_add(&b);
            prop_assert!(!carry);
            prop_assert_eq!(sum.checked_sub(&b), a);
        }

        #[test]
        fn mul_mod_commutes(a in arb_u2048(8), b in arb_u2048(8), m in arb_u2048(8)) {
            prop_assume!(!m.is_zero());
            prop_assert_eq!(a.mul_mod(&b, &m), b.mul_mod(&a, &m));
        }

        #[test]
        fn rem_is_canonical(a in arb_u2048(16), m in arb_u2048(8)) {
            prop_assume!(!m.is_zero());
            let r = a.rem(&m);
            prop_assert!(r < m);
            // (a - r) divisible by m: check via second reduction.
            let diff = a.checked_sub(&r);
            prop_assert_eq!(diff.rem(&m), U2048::ZERO);
        }

        #[test]
        fn pow_mod_addition_law(a in arb_u2048(2), e1 in any::<u16>(), e2 in any::<u16>(), m in arb_u2048(2)) {
            prop_assume!(m > U2048::ONE);
            let lhs = a.pow_mod(&U2048::from_u64(e1 as u64 + e2 as u64), &m);
            let rhs = a
                .pow_mod(&U2048::from_u64(e1 as u64), &m)
                .mul_mod(&a.pow_mod(&U2048::from_u64(e2 as u64), &m), &m);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn bytes_roundtrip(a in arb_u2048(32)) {
            prop_assert_eq!(U2048::from_be_bytes(&a.to_be_bytes()), a);
        }

        #[test]
        fn hex_roundtrip_prop(a in arb_u2048(32)) {
            prop_assert_eq!(U2048::from_hex(&a.to_hex()), a);
        }
    }
}
