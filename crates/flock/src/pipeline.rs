//! The continuous opportunistic authentication pipeline (paper Figure 6).
//!
//! For every touch: detect the touch point (touchscreen frame), transform
//! to sensor addresses, capture if a sensor covers the point, gate on
//! quality, match against the stored templates, and update the identity
//! risk — exactly the flowchart of Figure 6, with every decision box
//! represented in [`TouchAuthOutcome`].

use std::collections::HashMap;

use btd_fingerprint::pattern::FingerPattern;
use btd_fingerprint::quality::{QualityGate, QualityReport};
use btd_sensor::capture::{CaptureOutcome, CapturePipeline};
use btd_sensor::power::SensorPowerModel;
use btd_sim::power::EnergyMeter;
use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;
use btd_workload::session::TouchSample;

use crate::fp_processor::FingerprintProcessor;
use crate::risk::{RiskAction, RiskConfig, RiskTracker, TouchVerdict};

/// Where in the Figure 6 flow a touch ended up.
#[derive(Clone, Debug)]
pub enum TouchAuthOutcome {
    /// Decision 1: the touch point is not over any fingerprint sensor.
    OutsideSensors,
    /// Decision 2: data was captured but failed the quality gate and was
    /// discarded.
    LowQuality(QualityReport),
    /// Matched the stored templates.
    Verified {
        /// Match score in `[0, 1]`.
        score: f64,
    },
    /// Captured usable data whose score falls between the accept and
    /// reject bands — no evidence either way.
    Inconclusive {
        /// Match score in `[0, 1]`.
        score: f64,
    },
    /// Captured good data that is conclusively someone else's finger —
    /// evidence of fraud.
    Mismatched {
        /// Match score in `[0, 1]`.
        score: f64,
    },
}

impl TouchAuthOutcome {
    /// The verdict fed to the risk tracker.
    pub fn verdict(&self) -> TouchVerdict {
        match self {
            TouchAuthOutcome::OutsideSensors
            | TouchAuthOutcome::LowQuality(_)
            | TouchAuthOutcome::Inconclusive { .. } => TouchVerdict::NoData,
            TouchAuthOutcome::Verified { .. } => TouchVerdict::Verified,
            TouchAuthOutcome::Mismatched { .. } => TouchVerdict::Mismatched,
        }
    }
}

/// The result of pushing one touch through the pipeline.
#[derive(Clone, Debug)]
pub struct ProcessedTouch {
    /// Which Figure 6 path the touch took.
    pub outcome: TouchAuthOutcome,
    /// The risk tracker's recommendation after this touch.
    pub action: RiskAction,
    /// End-to-end added latency (touchscreen frame + sensor readout +
    /// matching); zero-cost stages are omitted naturally.
    pub latency: SimDuration,
}

/// The assembled Figure 6 pipeline.
#[derive(Debug)]
pub struct AuthPipeline {
    capture: CapturePipeline,
    gate: QualityGate,
    processor: FingerprintProcessor,
    risk: RiskTracker,
    touch_frame: SimDuration,
    energy: EnergyMeter,
    power_model: SensorPowerModel,
    finger_cache: HashMap<(u64, u8), FingerPattern>,
    stats: PipelineStats,
}

/// Aggregate counters over a session (the Figure 6 experiment's rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Touches processed.
    pub touches: u64,
    /// Touches that landed outside every sensor.
    pub outside: u64,
    /// Captures discarded by the quality gate.
    pub low_quality: u64,
    /// Verified matches.
    pub verified: u64,
    /// Usable captures with a score in the inconclusive band.
    pub inconclusive: u64,
    /// Conclusive mismatches.
    pub mismatched: u64,
}

impl AuthPipeline {
    /// Builds a pipeline.
    pub fn new(
        capture: CapturePipeline,
        gate: QualityGate,
        processor: FingerprintProcessor,
        risk_config: RiskConfig,
        touch_frame: SimDuration,
    ) -> Self {
        let power_model = capture
            .sensors()
            .first()
            .map(|s| SensorPowerModel::for_spec(&s.spec))
            .unwrap_or(SensorPowerModel {
                active: btd_sim::power::Watts(0.0),
                idle: btd_sim::power::Watts(0.0),
                gated: btd_sim::power::Watts(0.0),
            });
        AuthPipeline {
            capture,
            gate,
            processor,
            risk: RiskTracker::new(risk_config),
            touch_frame,
            energy: EnergyMeter::new(),
            power_model,
            finger_cache: HashMap::new(),
            stats: PipelineStats::default(),
        }
    }

    /// The fingerprint processor (e.g. to enroll the owner).
    pub fn processor_mut(&mut self) -> &mut FingerprintProcessor {
        &mut self.processor
    }

    /// The fingerprint processor, read-only.
    pub fn processor(&self) -> &FingerprintProcessor {
        &self.processor
    }

    /// The risk tracker.
    pub fn risk(&self) -> &RiskTracker {
        &self.risk
    }

    /// The risk tracker, mutable (explicit re-auth resets the window).
    pub fn risk_mut(&mut self) -> &mut RiskTracker {
        &mut self.risk
    }

    /// The sensor capture sub-pipeline.
    pub fn capture_pipeline(&self) -> &CapturePipeline {
        &self.capture
    }

    /// Session counters so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Accumulated sensor energy.
    pub fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    /// Processes one physical touch through the full Figure 6 flow.
    pub fn process_touch(&mut self, sample: &TouchSample, rng: &mut SimRng) -> ProcessedTouch {
        self.stats.touches += 1;
        let mut latency = self.touch_frame; // touch-point detection

        let key = (sample.user_id, sample.finger_index);
        let finger = self
            .finger_cache
            .entry(key)
            .or_insert_with(|| FingerPattern::generate(key.0, key.1));

        let outcome = match self.capture.capture(
            sample.pos,
            sample.finger_center,
            finger,
            sample.speed_mm_s,
            sample.pressure,
            sample.contact_radius_mm,
            sample.moisture,
            rng,
        ) {
            CaptureOutcome::OutsideSensors => {
                self.stats.outside += 1;
                TouchAuthOutcome::OutsideSensors
            }
            CaptureOutcome::Captured(data) => {
                latency += data.capture_time;
                self.energy.record(
                    "sensor.capture",
                    self.power_model.capture_energy(data.capture_time),
                );
                if !self.gate.accepts(&data.observation.quality) {
                    self.stats.low_quality += 1;
                    TouchAuthOutcome::LowQuality(data.observation.quality.clone())
                } else {
                    match self.processor.verify(&data.observation.minutiae) {
                        None => TouchAuthOutcome::LowQuality(data.observation.quality.clone()),
                        Some(result) => {
                            latency += result.latency;
                            match result.decision {
                                crate::fp_processor::MatchDecision::Accept => {
                                    self.stats.verified += 1;
                                    TouchAuthOutcome::Verified {
                                        score: result.best.score,
                                    }
                                }
                                crate::fp_processor::MatchDecision::Inconclusive => {
                                    self.stats.inconclusive += 1;
                                    TouchAuthOutcome::Inconclusive {
                                        score: result.best.score,
                                    }
                                }
                                crate::fp_processor::MatchDecision::Reject => {
                                    self.stats.mismatched += 1;
                                    TouchAuthOutcome::Mismatched {
                                        score: result.best.score,
                                    }
                                }
                            }
                        }
                    }
                }
            }
        };

        let action = self.risk.record(outcome.verdict());
        ProcessedTouch {
            outcome,
            action,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_fingerprint::quality::QualityGate;
    use btd_sensor::array::PlacedSensor;
    use btd_sensor::readout::ReadoutConfig;
    use btd_sensor::spec::SensorSpec;
    use btd_sim::geom::MmPoint;
    use btd_workload::profile::UserProfile;
    use btd_workload::session::SessionGenerator;

    /// Sensors over the texter profile's hottest regions.
    fn sensors() -> Vec<PlacedSensor> {
        vec![
            PlacedSensor::new(SensorSpec::flock_patch(), MmPoint::new(22.0, 70.0)),
            PlacedSensor::new(SensorSpec::flock_patch(), MmPoint::new(22.0, 84.0)),
            PlacedSensor::new(SensorSpec::flock_patch(), MmPoint::new(41.0, 58.0)),
        ]
    }

    fn pipeline(owner: u64, rng: &mut SimRng) -> AuthPipeline {
        let capture = CapturePipeline::new(sensors(), ReadoutConfig::default());
        let mut processor = FingerprintProcessor::new();
        processor.enroll_user(owner, 3, rng);
        AuthPipeline::new(
            capture,
            QualityGate::default(),
            processor,
            RiskConfig::default(),
            SimDuration::from_millis(4),
        )
    }

    #[test]
    fn owner_session_stays_unlocked() {
        let mut rng = SimRng::seed_from(1);
        let mut p = pipeline(0, &mut rng);
        let mut gen = SessionGenerator::new(UserProfile::builtin(0), &mut rng);
        let mut lockouts = 0;
        let mut reauth_prompts = 0;
        for _ in 0..300 {
            let s = gen.next_touch(&mut rng);
            let out = p.process_touch(&s, &mut rng);
            match out.action {
                RiskAction::Lockout => lockouts += 1,
                RiskAction::Reauthenticate => {
                    // The system shows a verify button over a sensor; the
                    // owner passes it, which clears the window.
                    reauth_prompts += 1;
                    p.risk_mut().reset_window();
                }
                RiskAction::Continue => {}
            }
        }
        let stats = p.stats();
        assert_eq!(stats.touches, 300);
        assert!(stats.verified > 30, "verified {}", stats.verified);
        assert_eq!(lockouts, 0, "owner locked out {lockouts} times");
        assert!(
            reauth_prompts <= 20,
            "owner prompted to re-authenticate {reauth_prompts} times in 300 touches"
        );
        // FRR-driven conclusive mismatches must stay rare.
        assert!(
            stats.mismatched < stats.verified / 8,
            "mismatches {} vs verified {}",
            stats.mismatched,
            stats.verified
        );
    }

    #[test]
    fn impostor_is_detected_quickly() {
        // Detection = the first risk escalation: either an explicit
        // re-authentication demand (which an impostor cannot satisfy —
        // their finger conclusively fails the guided verify) or a direct
        // lockout from conclusive mismatches.
        let mut rng = SimRng::seed_from(2);
        let mut p = pipeline(0, &mut rng); // enrolled owner: user 0
        let impostor = UserProfile::builtin(1); // different fingers
        let mut gen = SessionGenerator::new(impostor, &mut rng);
        let mut detected_at = None;
        let mut verified = 0;
        for i in 0..200 {
            let mut s = gen.next_touch(&mut rng);
            s.user_id = 1;
            let out = p.process_touch(&s, &mut rng);
            if matches!(out.outcome, TouchAuthOutcome::Verified { .. }) {
                verified += 1;
            }
            if out.action != RiskAction::Continue && detected_at.is_none() {
                detected_at = Some(i + 1);
            }
        }
        let n = detected_at.expect("impostor never flagged");
        assert!(n <= 30, "detection took {n} touches");
        assert_eq!(
            verified, 0,
            "impostor was falsely verified {verified} times"
        );
    }

    #[test]
    fn outside_touches_cost_no_sensor_energy() {
        let mut rng = SimRng::seed_from(3);
        let mut p = pipeline(0, &mut rng);
        let mut s = SessionGenerator::new(UserProfile::builtin(0), &mut rng).next_touch(&mut rng);
        s.pos = MmPoint::new(1.0, 1.0); // far from all sensors
        s.finger_center = s.pos;
        let before = p.energy().total();
        let out = p.process_touch(&s, &mut rng);
        assert!(matches!(out.outcome, TouchAuthOutcome::OutsideSensors));
        assert_eq!(p.energy().total().0, before.0);
        assert_eq!(out.latency, SimDuration::from_millis(4));
    }

    #[test]
    fn fast_swipes_hit_the_quality_gate() {
        let mut rng = SimRng::seed_from(4);
        let mut p = pipeline(0, &mut rng);
        let mut gen = SessionGenerator::new(UserProfile::builtin(0), &mut rng);
        let mut hit_gate = 0;
        for _ in 0..100 {
            let mut s = gen.next_touch(&mut rng);
            s.pos = MmPoint::new(26.0, 74.0); // on sensor 1
            s.finger_center = MmPoint::new(26.0, 75.5);
            s.speed_mm_s = 150.0; // flick
            let out = p.process_touch(&s, &mut rng);
            if matches!(out.outcome, TouchAuthOutcome::LowQuality(_)) {
                hit_gate += 1;
            }
        }
        assert!(hit_gate > 80, "only {hit_gate}/100 flicks were gated");
    }

    #[test]
    fn captured_touches_add_latency() {
        let mut rng = SimRng::seed_from(5);
        let mut p = pipeline(0, &mut rng);
        let mut gen = SessionGenerator::new(UserProfile::builtin(0), &mut rng);
        let mut s = gen.next_touch(&mut rng);
        s.pos = MmPoint::new(26.0, 74.0);
        s.finger_center = MmPoint::new(26.0, 75.5);
        s.speed_mm_s = 0.0;
        let out = p.process_touch(&s, &mut rng);
        assert!(
            out.latency > SimDuration::from_millis(4),
            "capture latency missing: {}",
            out.latency
        );
        assert!(out.latency < SimDuration::from_millis(60));
    }

    #[test]
    fn stats_partition_touch_count() {
        let mut rng = SimRng::seed_from(6);
        let mut p = pipeline(0, &mut rng);
        let mut gen = SessionGenerator::new(UserProfile::builtin(0), &mut rng);
        for _ in 0..200 {
            let s = gen.next_touch(&mut rng);
            p.process_touch(&s, &mut rng);
        }
        let st = p.stats();
        assert_eq!(
            st.outside + st.low_quality + st.verified + st.inconclusive + st.mismatched,
            st.touches
        );
    }
}
