//! Critical-button UI layout (paper §IV-A preventive measures).
//!
//! Against the low-quality-evasion impostor the paper proposes that "a
//! system can display critical buttons or menus over biometric enabled
//! touchscreen regions, that cannot be bypassed by an impostor" and that
//! "for interacting with certain buttons or menus, the system can require
//! a minimal touch time (longer than the required fingerprint capture
//! time)". [`UiLayout`] implements both rules.

use btd_sensor::array::PlacedSensor;
use btd_sim::geom::{MmPoint, MmRect, MmSize};
use btd_sim::rng::SimRng;
use btd_sim::time::{SimDuration, SimTime};
use btd_workload::session::TouchSample;

/// One critical button.
#[derive(Clone, Debug)]
pub struct ButtonSpec {
    /// The action this button triggers (e.g. `"/transfer"`).
    pub action: String,
    /// Where the button is drawn on the panel.
    pub region: MmRect,
    /// Minimum dwell time for the touch to register.
    pub min_dwell: SimDuration,
}

/// The outcome of checking a touch against a critical button.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ButtonTouchCheck {
    /// The touch registers.
    Accepted,
    /// The touch missed the button region.
    OffButton,
    /// The touch lifted before the minimal dwell elapsed.
    TooShort,
    /// No such button.
    UnknownAction,
}

/// A layout of critical buttons, each over a fingerprint sensor.
#[derive(Clone, Debug, Default)]
pub struct UiLayout {
    buttons: Vec<ButtonSpec>,
}

impl UiLayout {
    /// Lays `actions` out over the given sensors, round-robin, each button
    /// centred on its sensor and inset so every accepted touch point is on
    /// sensor glass.
    ///
    /// # Panics
    ///
    /// Panics if `sensors` is empty.
    pub fn over_sensors(
        actions: &[&str],
        sensors: &[PlacedSensor],
        min_dwell: SimDuration,
    ) -> UiLayout {
        assert!(!sensors.is_empty(), "need at least one sensor");
        let buttons = actions
            .iter()
            .enumerate()
            .map(|(i, action)| {
                let sensor = &sensors[i % sensors.len()];
                let bounds = sensor.bounds();
                ButtonSpec {
                    action: (*action).to_owned(),
                    region: MmRect::centered(
                        bounds.center(),
                        MmSize::new(bounds.size.w * 0.8, bounds.size.h * 0.8),
                    ),
                    min_dwell,
                }
            })
            .collect();
        UiLayout { buttons }
    }

    /// The button for `action`, if laid out.
    pub fn button_for(&self, action: &str) -> Option<&ButtonSpec> {
        self.buttons.iter().find(|b| b.action == action)
    }

    /// All buttons.
    pub fn buttons(&self) -> &[ButtonSpec] {
        &self.buttons
    }

    /// Checks a touch (position + dwell) against `action`'s button.
    pub fn check_touch(&self, action: &str, pos: MmPoint, dwell: SimDuration) -> ButtonTouchCheck {
        let Some(button) = self.button_for(action) else {
            return ButtonTouchCheck::UnknownAction;
        };
        if !button.region.contains(pos) {
            return ButtonTouchCheck::OffButton;
        }
        if dwell < button.min_dwell {
            return ButtonTouchCheck::TooShort;
        }
        ButtonTouchCheck::Accepted
    }

    /// Synthesizes the deliberate touch a user makes on `action`'s button:
    /// slow, firm, centred, and held for the minimal dwell.
    ///
    /// # Panics
    ///
    /// Panics if `action` has no button.
    pub fn deliberate_touch(
        &self,
        action: &str,
        user_id: u64,
        finger_index: u8,
        at: SimTime,
        rng: &mut SimRng,
    ) -> TouchSample {
        let button = self
            .button_for(action)
            .unwrap_or_else(|| panic!("no button for {action}"));
        let center = button.region.center();
        let pos = button.region.clamp_point(MmPoint::new(
            center.x + rng.gaussian_with(0.0, button.region.size.w / 8.0),
            center.y + rng.gaussian_with(0.0, button.region.size.h / 8.0),
        ));
        TouchSample {
            at,
            pos,
            finger_center: pos.offset(rng.gaussian_with(0.0, 0.8), rng.gaussian_with(1.2, 0.8)),
            user_id,
            finger_index,
            speed_mm_s: rng.range_f64(0.0, 6.0),
            pressure: rng.gaussian_with(0.55, 0.08).clamp(0.25, 0.9),
            contact_radius_mm: rng.range_f64(3.8, 5.5),
            moisture: rng.range_f64(0.2, 0.5),
            dwell: button.min_dwell + SimDuration::from_millis(rng.below(150)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::FlockConfig;
    use crate::pipeline::TouchAuthOutcome;

    fn layout() -> (UiLayout, Vec<PlacedSensor>) {
        let sensors = FlockConfig::default_sensors();
        let layout = UiLayout::over_sensors(
            &["/transfer", "/settings", "/logout", "/delete"],
            &sensors,
            SimDuration::from_millis(200),
        );
        (layout, sensors)
    }

    #[test]
    fn every_button_sits_on_a_sensor() {
        let (layout, sensors) = layout();
        assert_eq!(layout.buttons().len(), 4);
        for b in layout.buttons() {
            assert!(
                sensors.iter().any(|s| s.bounds().contains_rect(b.region)),
                "button {} is off-sensor",
                b.action
            );
        }
    }

    #[test]
    fn touch_checks() {
        let (layout, _) = layout();
        let b = layout.button_for("/transfer").unwrap();
        let center = b.region.center();
        let dwell = SimDuration::from_millis(250);
        assert_eq!(
            layout.check_touch("/transfer", center, dwell),
            ButtonTouchCheck::Accepted
        );
        assert_eq!(
            layout.check_touch("/transfer", MmPoint::new(0.0, 0.0), dwell),
            ButtonTouchCheck::OffButton
        );
        assert_eq!(
            layout.check_touch("/transfer", center, SimDuration::from_millis(50)),
            ButtonTouchCheck::TooShort
        );
        assert_eq!(
            layout.check_touch("/nope", center, dwell),
            ButtonTouchCheck::UnknownAction
        );
    }

    #[test]
    fn deliberate_touches_always_capture() {
        // The whole point of the defence: a touch on a critical button
        // cannot land outside a sensor.
        let (layout, _) = layout();
        let mut rng = SimRng::seed_from(1);
        let mut flock =
            crate::module::FlockModule::new("ui-test", FlockConfig::fast_test(), &mut rng);
        flock.enroll_owner(0, 3, &mut rng);
        for _ in 0..50 {
            let touch = layout.deliberate_touch("/transfer", 0, 0, SimTime::ZERO, &mut rng);
            assert_eq!(
                layout.check_touch("/transfer", touch.pos, touch.dwell),
                ButtonTouchCheck::Accepted
            );
            let out = flock.process_touch(&touch, &mut rng);
            assert!(
                !matches!(out.outcome, TouchAuthOutcome::OutsideSensors),
                "critical-button touch missed the sensor"
            );
        }
        // Most deliberate owner touches verify.
        let stats = flock.auth().stats();
        assert!(
            stats.verified > 30,
            "only {} of 50 verified",
            stats.verified
        );
    }

    #[test]
    fn impostor_cannot_rush_a_critical_button() {
        // An evasive impostor flicking the button fast fails the dwell
        // rule before the biometric even runs.
        let (layout, _) = layout();
        let b = layout.button_for("/delete").unwrap();
        let rushed_dwell = SimDuration::from_millis(30);
        assert_eq!(
            layout.check_touch("/delete", b.region.center(), rushed_dwell),
            ButtonTouchCheck::TooShort
        );
        // The minimal dwell exceeds a windowed capture time, so an
        // accepted touch always leaves time for a capture.
        let spec = btd_sensor::spec::SensorSpec::flock_patch();
        let window = spec.full_window();
        let capture = btd_sensor::readout::ReadoutConfig::default().capture_time(&spec, &window);
        assert!(b.min_dwell > capture);
    }
}
