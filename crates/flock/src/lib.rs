#![warn(missing_docs)]

//! The FLock module (paper Figure 5) and the continuous-authentication
//! pipeline (Figure 6).
//!
//! FLock is the trusted hardware anchor of the TRUST architecture: "Each
//! FLock module has a unique built-in (public, private) key pair. The FLock
//! module consists of a fingerprint controller, a touchscreen controller, a
//! display repeater, a frame hash engine, a fingerprint processor, a host
//! interface, on-chip storage devices (SRAM and Flash), and a crypto
//! processor." This crate assembles those blocks from the substrate crates:
//!
//! * [`storage`] — byte-budgeted protected non-volatile storage for
//!   templates, per-site key pairs, and account records.
//! * [`framehash`] — display frames and the frame-hash engine (hash of
//!   every displayed frame, later auditable by the server).
//! * [`display`] — the display repeater that taps frames into the hash
//!   engine on their way to the panel.
//! * [`crypto_proc`] — the crypto processor: `btd-crypto` operations with
//!   latency accounting.
//! * [`fp_processor`] — template store + partial-print matcher invocation.
//! * [`risk`] — the identity-risk tracker (k-of-n window rule, lockout
//!   policy).
//! * [`pipeline`] — the Figure 6 flow: touch → sensor activation → quality
//!   gate → match → risk update.
//! * [`ui`] — critical buttons drawn over sensor regions with a minimal
//!   touch time (the §IV-A preventive measures).
//! * [`unlock`] — explicit login flows for the Table I comparison
//!   (password vs separate sensor vs integrated sensor).
//! * [`module`] — [`module::FlockModule`], the composition the TRUST
//!   protocol talks to.
//!
//! # Example
//!
//! ```
//! use btd_flock::module::{FlockConfig, FlockModule};
//! use btd_sim::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from(7);
//! let mut flock = FlockModule::new("device-1", FlockConfig::fast_test(), &mut rng);
//! flock.enroll_owner(42, 3, &mut rng); // user 42, three fingers
//! assert_eq!(flock.enrolled_finger_count(), 3);
//! ```

pub mod crypto_proc;
pub mod display;
pub mod fp_processor;
pub mod framehash;
pub mod module;
pub mod pipeline;
pub mod risk;
pub mod storage;
pub mod ui;
pub mod unlock;

pub use module::{FlockConfig, FlockModule};
pub use pipeline::{AuthPipeline, TouchAuthOutcome};
pub use risk::{RiskAction, RiskConfig, RiskTracker};
