//! The identity-risk tracker (paper §IV-A).
//!
//! "Our solution uses identity risk to quantitatively measure the
//! likelihood of identity fraud. Identity risk can be defined as the
//! number of times that fingerprints can be captured and verified out of
//! \[a\] certain number of touches from a user." The paper also proposes the
//! window rule — "at least k out of n consecutive touch inputs need to
//! produce at least one valid fingerprint" — as the defence against the
//! low-quality-evasion attack.

use std::collections::VecDeque;

/// The per-touch verdict the pipeline feeds into the tracker.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TouchVerdict {
    /// A fingerprint was captured and matched the owner.
    Verified,
    /// A fingerprint was captured and did **not** match the owner.
    Mismatched,
    /// No usable data (outside sensors, or failed the quality gate).
    NoData,
}

/// The tracker's recommended response, in increasing severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RiskAction {
    /// Identity is sufficiently fresh; keep going.
    Continue,
    /// Too little recent evidence; force an explicit re-authentication
    /// (e.g. display a verify button over a sensor region).
    Reauthenticate,
    /// Evidence of fraud; halt interaction / log out (the paper's
    /// "pre-determined actions … halting interactions with the user,
    /// logging out automatically").
    Lockout,
}

/// Tracker configuration.
#[derive(Clone, Copy, Debug)]
pub struct RiskConfig {
    /// Window length `n` (consecutive touches considered).
    pub window: usize,
    /// Minimum verified touches `k` required per window once the window is
    /// full.
    pub min_verified: usize,
    /// Mismatches in the window that trigger lockout.
    pub max_mismatches: usize,
}

impl Default for RiskConfig {
    fn default() -> Self {
        RiskConfig {
            window: 12,
            min_verified: 1,
            max_mismatches: 3,
        }
    }
}

impl RiskConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `min_verified > window`.
    pub fn validate(&self) {
        assert!(self.window > 0, "window must be positive");
        assert!(
            self.min_verified <= self.window,
            "min_verified cannot exceed window"
        );
    }
}

/// The sliding-window identity-risk tracker.
#[derive(Clone, Debug)]
pub struct RiskTracker {
    config: RiskConfig,
    history: VecDeque<TouchVerdict>,
    total_touches: u64,
    total_verified: u64,
    total_mismatched: u64,
}

impl RiskTracker {
    /// Creates a tracker.
    pub fn new(config: RiskConfig) -> Self {
        config.validate();
        RiskTracker {
            config,
            history: VecDeque::with_capacity(config.window),
            total_touches: 0,
            total_verified: 0,
            total_mismatched: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RiskConfig {
        &self.config
    }

    /// Records a verdict and returns the recommended action.
    pub fn record(&mut self, verdict: TouchVerdict) -> RiskAction {
        self.total_touches += 1;
        match verdict {
            TouchVerdict::Verified => self.total_verified += 1,
            TouchVerdict::Mismatched => self.total_mismatched += 1,
            TouchVerdict::NoData => {}
        }
        if self.history.len() == self.config.window {
            self.history.pop_front();
        }
        self.history.push_back(verdict);
        self.action()
    }

    /// Verified touches in the current window.
    pub fn verified_in_window(&self) -> usize {
        self.history
            .iter()
            .filter(|v| **v == TouchVerdict::Verified)
            .count()
    }

    /// Mismatched touches in the current window.
    pub fn mismatched_in_window(&self) -> usize {
        self.history
            .iter()
            .filter(|v| **v == TouchVerdict::Mismatched)
            .count()
    }

    /// The paper's risk metric over the window: `1 − verified / n`,
    /// weighted up sharply by observed mismatches. In `[0, 1]`.
    pub fn risk_score(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let n = self.history.len() as f64;
        let verified = self.verified_in_window() as f64;
        let mismatched = self.mismatched_in_window() as f64;
        let staleness = 1.0 - (verified / n);
        let fraud = (mismatched / self.config.max_mismatches.max(1) as f64).min(1.0);
        (0.5 * staleness + 0.5 * fraud + 0.5 * fraud * staleness).min(1.0)
    }

    /// The current recommended action.
    pub fn action(&self) -> RiskAction {
        if self.mismatched_in_window() >= self.config.max_mismatches {
            return RiskAction::Lockout;
        }
        // Only enforce the k-of-n floor once a full window of evidence
        // exists (a fresh session starts with no history).
        if self.history.len() == self.config.window
            && self.verified_in_window() < self.config.min_verified
        {
            return RiskAction::Reauthenticate;
        }
        RiskAction::Continue
    }

    /// Lifetime counters: `(touches, verified, mismatched)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.total_touches,
            self.total_verified,
            self.total_mismatched,
        )
    }

    /// Clears the window (after a successful explicit re-authentication).
    pub fn reset_window(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_verdict() -> impl Strategy<Value = TouchVerdict> {
        prop_oneof![
            Just(TouchVerdict::Verified),
            Just(TouchVerdict::Mismatched),
            Just(TouchVerdict::NoData),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The risk score is always a fraction, the window never exceeds
        /// its configured size, and the action is consistent with the
        /// window counts.
        #[test]
        fn tracker_invariants(
            window in 1usize..20,
            min_verified in 0usize..6,
            max_mismatches in 1usize..6,
            verdicts in proptest::collection::vec(arb_verdict(), 0..80),
        ) {
            let min_verified = min_verified.min(window);
            let config = RiskConfig { window, min_verified, max_mismatches };
            let mut tracker = RiskTracker::new(config);
            for v in verdicts {
                let action = tracker.record(v);
                let score = tracker.risk_score();
                prop_assert!((0.0..=1.0).contains(&score));
                prop_assert!(tracker.verified_in_window() + tracker.mismatched_in_window() <= window);
                match action {
                    RiskAction::Lockout => {
                        prop_assert!(tracker.mismatched_in_window() >= max_mismatches)
                    }
                    RiskAction::Reauthenticate => {
                        prop_assert!(tracker.verified_in_window() < min_verified)
                    }
                    RiskAction::Continue => {
                        prop_assert!(tracker.mismatched_in_window() < max_mismatches)
                    }
                }
            }
            let (touches, verified, mismatched) = tracker.totals();
            prop_assert!(verified + mismatched <= touches);
        }

        /// All-verified streams never escalate.
        #[test]
        fn verified_streams_never_escalate(window in 1usize..20, n in 1usize..100) {
            let mut tracker = RiskTracker::new(RiskConfig {
                window,
                min_verified: 1,
                max_mismatches: 1,
            });
            for _ in 0..n {
                prop_assert_eq!(tracker.record(TouchVerdict::Verified), RiskAction::Continue);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(window: usize, min_verified: usize, max_mismatches: usize) -> RiskTracker {
        RiskTracker::new(RiskConfig {
            window,
            min_verified,
            max_mismatches,
        })
    }

    #[test]
    fn fresh_tracker_continues() {
        let t = tracker(8, 1, 2);
        assert_eq!(t.action(), RiskAction::Continue);
        assert_eq!(t.risk_score(), 0.0);
    }

    #[test]
    fn verified_touches_keep_risk_low() {
        let mut t = tracker(8, 2, 2);
        for _ in 0..20 {
            assert_eq!(t.record(TouchVerdict::Verified), RiskAction::Continue);
        }
        assert!(t.risk_score() < 0.05);
        assert_eq!(t.totals(), (20, 20, 0));
    }

    #[test]
    fn mismatches_trigger_lockout() {
        let mut t = tracker(8, 1, 2);
        assert_eq!(t.record(TouchVerdict::Mismatched), RiskAction::Continue);
        assert_eq!(t.record(TouchVerdict::Mismatched), RiskAction::Lockout);
        assert!(t.risk_score() > 0.5);
    }

    #[test]
    fn evasion_by_no_data_triggers_reauthentication() {
        // The paper's defence: an impostor giving only low-quality touches
        // produces a full window with zero verifications.
        let mut t = tracker(6, 1, 2);
        let mut action = RiskAction::Continue;
        for _ in 0..6 {
            action = t.record(TouchVerdict::NoData);
        }
        assert_eq!(action, RiskAction::Reauthenticate);
    }

    #[test]
    fn partial_window_of_no_data_is_tolerated() {
        let mut t = tracker(6, 1, 2);
        for _ in 0..5 {
            assert_eq!(t.record(TouchVerdict::NoData), RiskAction::Continue);
        }
    }

    #[test]
    fn one_verification_per_window_suffices_for_k1() {
        let mut t = tracker(6, 1, 2);
        for i in 0..30 {
            let verdict = if i % 6 == 0 {
                TouchVerdict::Verified
            } else {
                TouchVerdict::NoData
            };
            assert_eq!(t.record(verdict), RiskAction::Continue, "touch {i}");
        }
    }

    #[test]
    fn old_mismatches_slide_out_of_the_window() {
        let mut t = tracker(4, 0, 2);
        t.record(TouchVerdict::Mismatched);
        for _ in 0..4 {
            t.record(TouchVerdict::Verified);
        }
        assert_eq!(t.mismatched_in_window(), 0);
        assert_eq!(t.action(), RiskAction::Continue);
    }

    #[test]
    fn reset_window_clears_state() {
        let mut t = tracker(4, 1, 2);
        t.record(TouchVerdict::Mismatched);
        t.reset_window();
        assert_eq!(t.mismatched_in_window(), 0);
        assert_eq!(t.action(), RiskAction::Continue);
        // Lifetime totals survive the reset.
        assert_eq!(t.totals().0, 1);
    }

    #[test]
    fn risk_score_orders_scenarios() {
        let mut healthy = tracker(8, 1, 2);
        let mut stale = tracker(8, 1, 2);
        let mut fraud = tracker(8, 1, 2);
        for _ in 0..8 {
            healthy.record(TouchVerdict::Verified);
            stale.record(TouchVerdict::NoData);
            fraud.record(TouchVerdict::Mismatched);
        }
        assert!(healthy.risk_score() < stale.risk_score());
        assert!(stale.risk_score() < fraud.risk_score());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = tracker(0, 0, 1);
    }
}
