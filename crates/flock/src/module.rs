//! The assembled FLock module.
//!
//! [`FlockModule`] wires the Figure 5 blocks together behind the host
//! interface the TRUST protocol uses: the built-in device key pair and CA
//! provisioning, per-web-site key management in protected storage, frame
//! relaying with hashing, the continuous-authentication pipeline, and the
//! identity-transfer flow (paper §IV, "Identity Transfer").

use btd_crypto::bignum::U2048;
use btd_crypto::cert::Certificate;
use btd_crypto::elgamal::SealedBox;
use btd_crypto::entropy::ChaChaEntropy;
use btd_crypto::group::DhGroup;
use btd_crypto::schnorr::{KeyPair, PublicKey, Signature};
use btd_crypto::sha256::Digest;
use btd_fingerprint::minutiae::{Minutia, MinutiaKind};
use btd_fingerprint::quality::QualityGate;
use btd_fingerprint::template::Template;
use btd_sensor::array::PlacedSensor;
use btd_sensor::capture::CapturePipeline;
use btd_sensor::readout::ReadoutConfig;
use btd_sensor::spec::SensorSpec;
use btd_sim::geom::MmPoint;
use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;
use btd_workload::session::TouchSample;

use crate::crypto_proc::CryptoProcessor;
use crate::display::DisplayRepeater;
use crate::fp_processor::FingerprintProcessor;
use crate::framehash::DisplayFrame;
use crate::pipeline::{AuthPipeline, ProcessedTouch};
use crate::risk::RiskConfig;
use crate::storage::{DomainRecord, SecureStorage, StorageError};

/// Configuration for building a [`FlockModule`].
#[derive(Clone, Debug)]
pub struct FlockConfig {
    /// The DH group for all asymmetric operations.
    pub group: &'static DhGroup,
    /// Sensor patches and their panel placement.
    pub sensors: Vec<PlacedSensor>,
    /// Readout architecture.
    pub readout: ReadoutConfig,
    /// Capture-quality gate.
    pub gate: QualityGate,
    /// Identity-risk policy.
    pub risk: RiskConfig,
    /// Protected flash capacity, bytes.
    pub flash_bytes: usize,
    /// Touchscreen frame time.
    pub touch_frame: SimDuration,
}

impl FlockConfig {
    /// The default placement used across experiments: three 8 × 8 mm
    /// patches over the shared hot spots of the built-in user profiles.
    pub fn default_sensors() -> Vec<PlacedSensor> {
        vec![
            PlacedSensor::new(SensorSpec::flock_patch(), MmPoint::new(22.0, 70.0)),
            PlacedSensor::new(SensorSpec::flock_patch(), MmPoint::new(22.0, 84.0)),
            PlacedSensor::new(SensorSpec::flock_patch(), MmPoint::new(41.0, 58.0)),
        ]
    }

    /// Fast parameters for tests: the 512-bit group.
    pub fn fast_test() -> Self {
        FlockConfig {
            group: DhGroup::test_512(),
            sensors: FlockConfig::default_sensors(),
            readout: ReadoutConfig::default(),
            gate: QualityGate::default(),
            risk: RiskConfig::default(),
            flash_bytes: 1 << 20,
            touch_frame: SimDuration::from_millis(4),
        }
    }

    /// Production parameters: the RFC 3526 2048-bit group.
    pub fn production() -> Self {
        FlockConfig {
            group: DhGroup::modp_2048(),
            ..FlockConfig::fast_test()
        }
    }
}

/// Errors from identity import.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImportError {
    /// The sealed payload failed to open (wrong device or tampered).
    Unsealable,
    /// The payload did not decode as an identity export.
    Malformed,
    /// The imported records did not fit in flash.
    Storage(StorageError),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Unsealable => f.write_str("identity payload could not be unsealed"),
            ImportError::Malformed => f.write_str("identity payload is malformed"),
            ImportError::Storage(e) => write!(f, "identity import storage failure: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// The FLock module.
#[derive(Debug)]
pub struct FlockModule {
    device_id: String,
    group: &'static DhGroup,
    device_keys: KeyPair,
    certificate: Option<Certificate>,
    ca_key: Option<PublicKey>,
    crypto: CryptoProcessor,
    storage: SecureStorage,
    display: DisplayRepeater,
    auth: AuthPipeline,
}

impl FlockModule {
    /// Builds a module; the built-in key pair is generated immediately
    /// (the paper: "Each FLock module has a unique built-in
    /// (public, private) key pair").
    pub fn new(device_id: &str, config: FlockConfig, rng: &mut SimRng) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut crypto = CryptoProcessor::new(config.group, ChaChaEntropy::from_seed(seed));
        let device_keys = crypto.generate_keypair();
        let auth = AuthPipeline::new(
            CapturePipeline::new(config.sensors, config.readout),
            config.gate,
            FingerprintProcessor::new(),
            config.risk,
            config.touch_frame,
        );
        FlockModule {
            device_id: device_id.to_owned(),
            group: config.group,
            device_keys,
            certificate: None,
            ca_key: None,
            crypto,
            storage: SecureStorage::new(config.flash_bytes),
            display: DisplayRepeater::new(),
            auth,
        }
    }

    /// The device identifier.
    pub fn device_id(&self) -> &str {
        &self.device_id
    }

    /// The DH group in use.
    pub fn group(&self) -> &'static DhGroup {
        self.group
    }

    /// The built-in device public key.
    pub fn device_public_key(&self) -> &PublicKey {
        self.device_keys.public_key()
    }

    /// Provisions the CA root key (factory step).
    pub fn provision_ca(&mut self, ca_key: PublicKey) {
        self.ca_key = Some(ca_key);
    }

    /// Installs this device's CA-issued certificate.
    pub fn install_certificate(&mut self, cert: Certificate) {
        self.certificate = Some(cert);
    }

    /// The device certificate, if issued.
    pub fn certificate(&self) -> Option<&Certificate> {
        self.certificate.as_ref()
    }

    /// Verifies a peer certificate against the provisioned CA. Returns
    /// `false` when no CA key is provisioned (fail closed).
    pub fn verify_certificate(&mut self, cert: &Certificate) -> bool {
        match &self.ca_key {
            Some(ca) => cert.verify(ca),
            None => false,
        }
    }

    // --- Biometric side -------------------------------------------------

    /// Enrolls the device owner's fingers (guided flow).
    pub fn enroll_owner(&mut self, user_id: u64, finger_count: u8, rng: &mut SimRng) {
        self.auth
            .processor_mut()
            .enroll_user(user_id, finger_count, rng);
    }

    /// Enrolls an additional authorized user (shared device).
    pub fn enroll_additional_user(&mut self, user_id: u64, finger_count: u8, rng: &mut SimRng) {
        self.auth
            .processor_mut()
            .add_user(user_id, finger_count, rng);
    }

    /// All users with enrolled templates.
    pub fn enrolled_users(&self) -> Vec<u64> {
        self.auth.processor().enrolled_users()
    }

    /// Number of enrolled finger templates.
    pub fn enrolled_finger_count(&self) -> usize {
        self.auth.processor().template_count()
    }

    /// The enrolled owner, if any.
    pub fn owner(&self) -> Option<u64> {
        self.auth.processor().owner()
    }

    /// Runs one touch through the continuous-auth pipeline.
    pub fn process_touch(&mut self, sample: &TouchSample, rng: &mut SimRng) -> ProcessedTouch {
        self.auth.process_touch(sample, rng)
    }

    /// The continuous-auth pipeline (stats, risk state).
    pub fn auth(&self) -> &AuthPipeline {
        &self.auth
    }

    /// The continuous-auth pipeline, mutable.
    pub fn auth_mut(&mut self) -> &mut AuthPipeline {
        &mut self.auth
    }

    // --- Display side ---------------------------------------------------

    /// Relays a frame to the panel, returning its hash and engine time.
    pub fn relay_frame(&mut self, frame: &DisplayFrame) -> (Digest, SimDuration) {
        self.display.relay(frame)
    }

    /// Hash of the most recently displayed frame.
    pub fn last_frame_hash(&self) -> Option<Digest> {
        self.display.last_frame_hash()
    }

    // --- Identity / key management ---------------------------------------

    /// Registers a new web-site identity: generates a per-site key pair,
    /// stores the record, and returns the site public key.
    ///
    /// # Errors
    ///
    /// [`StorageError::CapacityExceeded`] if the flash is full.
    pub fn register_domain(
        &mut self,
        domain: &str,
        account: &str,
        server_key: &PublicKey,
    ) -> Result<PublicKey, StorageError> {
        let keys = self.crypto.generate_keypair();
        let record = DomainRecord {
            domain: domain.to_owned(),
            account: account.to_owned(),
            user_secret: *keys.secret_scalar(),
            server_key: server_key.clone(),
        };
        self.storage.put_record(record)?;
        Ok(keys.public_key().clone())
    }

    /// The stored record for `domain`.
    pub fn domain_record(&self, domain: &str) -> Option<&DomainRecord> {
        self.storage.record(domain)
    }

    /// Reconstructs the key pair for `domain`.
    pub fn domain_keypair(&self, domain: &str) -> Option<KeyPair> {
        self.storage
            .record(domain)
            .map(|r| KeyPair::from_secret(self.group, r.user_secret))
    }

    /// Removes a domain identity (server-side identity reset is mirrored
    /// locally when the user re-binds).
    pub fn remove_domain(&mut self, domain: &str) -> Option<DomainRecord> {
        self.storage.remove_record(domain)
    }

    /// Number of registered domains.
    pub fn domain_count(&self) -> usize {
        self.storage.record_count()
    }

    /// Signs with the built-in device key.
    pub fn sign_with_device_key(&mut self, message: &[u8]) -> Signature {
        let keys = self.device_keys.clone();
        self.crypto.sign(&keys, message)
    }

    /// Signs with a domain key pair, or `None` if the domain is unknown.
    pub fn sign_with_domain_key(&mut self, domain: &str, message: &[u8]) -> Option<Signature> {
        let keys = self.domain_keypair(domain)?;
        Some(self.crypto.sign(&keys, message))
    }

    /// The crypto processor (for the protocol layer's seal/open/MAC needs
    /// and latency accounting).
    pub fn crypto_mut(&mut self) -> &mut CryptoProcessor {
        &mut self.crypto
    }

    /// The crypto processor, read-only.
    pub fn crypto(&self) -> &CryptoProcessor {
        &self.crypto
    }

    /// Protected storage statistics: `(used, capacity)` bytes.
    pub fn storage_usage(&self) -> (usize, usize) {
        (self.storage.used(), self.storage.capacity())
    }

    // --- Identity transfer (paper §IV, "Identity Transfer") ---------------

    /// Exports the full identity (templates + all domain records) sealed
    /// to the new device's public key; requires a verified owner touch in
    /// the real flow (enforced by the caller's UI).
    pub fn export_identity(&mut self, new_device_key: &PublicKey) -> SealedBox {
        let owner = self.owner().unwrap_or(0);
        let templates = self.auth.processor().export_templates();
        let records: Vec<DomainRecord> = self.storage.records().cloned().collect();
        let payload = encode_identity(owner, &templates, &records);
        self.crypto.seal_to(new_device_key, &payload)
    }

    /// Imports a sealed identity exported by another device.
    ///
    /// # Errors
    ///
    /// [`ImportError`] if unsealing, decoding, or storage fails.
    pub fn import_identity(&mut self, sealed: &SealedBox) -> Result<(), ImportError> {
        let keys = self.device_keys.clone();
        let payload = self
            .crypto
            .open_with(&keys, sealed)
            .map_err(|_| ImportError::Unsealable)?;
        let (owner, templates, records) =
            decode_identity(&payload, self.group).ok_or(ImportError::Malformed)?;
        if !templates.is_empty() {
            self.auth
                .processor_mut()
                .install_templates(owner, templates);
        }
        for r in records {
            self.storage.put_record(r).map_err(ImportError::Storage)?;
        }
        Ok(())
    }
}

// --- Identity wire codec -------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(data);
}

fn get_bytes<'a>(input: &mut &'a [u8]) -> Option<&'a [u8]> {
    if input.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(input[..4].try_into().ok()?) as usize;
    if input.len() < 4 + len {
        return None;
    }
    let (head, rest) = input[4..].split_at(len);
    *input = rest;
    Some(head)
}

fn encode_identity(owner: u64, templates: &[Template], records: &[DomainRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&owner.to_be_bytes());
    out.extend_from_slice(&(templates.len() as u32).to_be_bytes());
    for t in templates {
        out.extend_from_slice(&t.user_id().to_be_bytes());
        out.push(t.finger_index());
        out.extend_from_slice(&(t.minutiae().len() as u32).to_be_bytes());
        for m in t.minutiae() {
            out.extend_from_slice(&m.pos.x.to_be_bytes());
            out.extend_from_slice(&m.pos.y.to_be_bytes());
            out.extend_from_slice(&m.angle.to_be_bytes());
            out.push(match m.kind {
                MinutiaKind::Ending => 0,
                MinutiaKind::Bifurcation => 1,
            });
        }
    }
    out.extend_from_slice(&(records.len() as u32).to_be_bytes());
    for r in records {
        put_bytes(&mut out, r.domain.as_bytes());
        put_bytes(&mut out, r.account.as_bytes());
        put_bytes(&mut out, &r.user_secret.to_be_bytes());
        put_bytes(&mut out, &r.server_key.to_bytes());
    }
    out
}

fn decode_identity(
    mut input: &[u8],
    group: &'static DhGroup,
) -> Option<(u64, Vec<Template>, Vec<DomainRecord>)> {
    let take = |input: &mut &[u8], n: usize| -> Option<Vec<u8>> {
        if input.len() < n {
            return None;
        }
        let (head, rest) = input.split_at(n);
        *input = rest;
        Some(head.to_vec())
    };
    let owner = u64::from_be_bytes(take(&mut input, 8)?.try_into().ok()?);
    let n_templates = u32::from_be_bytes(take(&mut input, 4)?.try_into().ok()?) as usize;
    let mut templates = Vec::with_capacity(n_templates);
    for _ in 0..n_templates {
        let user_id = u64::from_be_bytes(take(&mut input, 8)?.try_into().ok()?);
        let finger = take(&mut input, 1)?[0];
        let n_min = u32::from_be_bytes(take(&mut input, 4)?.try_into().ok()?) as usize;
        let mut minutiae = Vec::with_capacity(n_min);
        for _ in 0..n_min {
            let x = f64::from_be_bytes(take(&mut input, 8)?.try_into().ok()?);
            let y = f64::from_be_bytes(take(&mut input, 8)?.try_into().ok()?);
            let angle = f64::from_be_bytes(take(&mut input, 8)?.try_into().ok()?);
            let kind = match take(&mut input, 1)?[0] {
                0 => MinutiaKind::Ending,
                1 => MinutiaKind::Bifurcation,
                _ => return None,
            };
            minutiae.push(Minutia::new(MmPoint::new(x, y), angle, kind));
        }
        if minutiae.is_empty() {
            return None;
        }
        templates.push(Template::new(user_id, finger, minutiae));
    }
    let n_records = u32::from_be_bytes(take(&mut input, 4)?.try_into().ok()?) as usize;
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let domain = String::from_utf8(get_bytes(&mut input)?.to_vec()).ok()?;
        let account = String::from_utf8(get_bytes(&mut input)?.to_vec()).ok()?;
        let secret = U2048::from_be_bytes(get_bytes(&mut input)?);
        let server_element = U2048::from_be_bytes(get_bytes(&mut input)?);
        if !group.contains(&server_element) {
            return None;
        }
        records.push(DomainRecord {
            domain,
            account,
            user_secret: secret,
            server_key: PublicKey::from_element(group, server_element),
        });
    }
    if input.is_empty() {
        Some((owner, templates, records))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_crypto::cert::{CertificateAuthority, Role};

    fn module(seed: u64) -> (FlockModule, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let m = FlockModule::new("device-1", FlockConfig::fast_test(), &mut rng);
        (m, rng)
    }

    #[test]
    fn device_key_is_unique_per_device() {
        let (a, _) = module(1);
        let (b, _) = module(2);
        assert_ne!(a.device_public_key(), b.device_public_key());
    }

    #[test]
    fn certificate_verification_fails_closed() {
        let (mut m, mut rng) = module(3);
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut entropy = ChaChaEntropy::from_seed(seed);
        let mut ca = CertificateAuthority::new(DhGroup::test_512(), &mut entropy);
        let cert = ca.issue(
            "www.xyz.com",
            Role::WebServer,
            m.device_public_key(),
            &mut entropy,
        );
        // No CA provisioned: reject.
        assert!(!m.verify_certificate(&cert));
        m.provision_ca(ca.public_key().clone());
        assert!(m.verify_certificate(&cert));
        // A rogue CA's cert is rejected.
        let mut rogue = CertificateAuthority::new(DhGroup::test_512(), &mut entropy);
        let bad = rogue.issue(
            "www.xyz.com",
            Role::WebServer,
            m.device_public_key(),
            &mut entropy,
        );
        assert!(!m.verify_certificate(&bad));
    }

    #[test]
    fn domain_registration_and_signing() {
        let (mut m, mut rng) = module(4);
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut entropy = ChaChaEntropy::from_seed(seed);
        let server = KeyPair::generate(DhGroup::test_512(), &mut entropy);
        let user_pub = m
            .register_domain("www.xyz.com", "ab12xyom", server.public_key())
            .unwrap();
        assert_eq!(m.domain_count(), 1);
        let sig = m
            .sign_with_domain_key("www.xyz.com", b"login request")
            .unwrap();
        assert!(user_pub.verify(b"login request", &sig));
        // Unknown domain yields no signature.
        assert!(m.sign_with_domain_key("other.com", b"x").is_none());
        // Different domains get different keys.
        let other_pub = m
            .register_domain("bank.com", "acct2", server.public_key())
            .unwrap();
        assert_ne!(user_pub, other_pub);
    }

    #[test]
    fn identity_transfer_moves_domains_and_templates() {
        let (mut old, mut rng) = module(5);
        old.enroll_owner(42, 2, &mut rng);
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut entropy = ChaChaEntropy::from_seed(seed);
        let server = KeyPair::generate(DhGroup::test_512(), &mut entropy);
        old.register_domain("www.xyz.com", "alice", server.public_key())
            .unwrap();
        old.register_domain("bank.com", "alice2", server.public_key())
            .unwrap();

        let (mut new, _) = module(6);
        let sealed = old.export_identity(new.device_public_key());
        new.import_identity(&sealed).unwrap();

        assert_eq!(new.domain_count(), 2);
        assert_eq!(new.owner(), Some(42));
        assert_eq!(new.enrolled_finger_count(), 2);
        // The new device signs for the domain with the *same* site key.
        let msg = b"post-transfer request";
        let sig = new.sign_with_domain_key("www.xyz.com", msg).unwrap();
        let old_record = old.domain_record("www.xyz.com").unwrap();
        let site_pub = PublicKey::from_element(
            DhGroup::test_512(),
            *KeyPair::from_secret(DhGroup::test_512(), old_record.user_secret)
                .public_key()
                .element(),
        );
        assert!(site_pub.verify(msg, &sig));
    }

    #[test]
    fn identity_export_cannot_be_opened_by_a_third_device() {
        let (mut old, mut rng) = module(7);
        old.enroll_owner(42, 1, &mut rng);
        let (new, _) = module(8);
        let (mut thief, _) = module(9);
        let sealed = old.export_identity(new.device_public_key());
        assert_eq!(thief.import_identity(&sealed), Err(ImportError::Unsealable));
    }

    #[test]
    fn malformed_identity_rejected() {
        let (mut new, _) = module(10);
        let (mut old, _) = module(11);
        // Seal garbage to the new device: unseals fine, fails decoding.
        let garbage = old.crypto_mut().seal_to(new.device_public_key(), b"junk");
        assert_eq!(new.import_identity(&garbage), Err(ImportError::Malformed));
    }

    #[test]
    fn frame_relay_updates_last_hash() {
        let (mut m, _) = module(12);
        assert!(m.last_frame_hash().is_none());
        let frame = DisplayFrame::new(b"login".to_vec(), 480, 800);
        let (h, _) = m.relay_frame(&frame);
        assert_eq!(m.last_frame_hash(), Some(h));
    }

    #[test]
    fn codec_roundtrips_empty_and_full() {
        let group = DhGroup::test_512();
        let (owner, templates, records) =
            decode_identity(&encode_identity(9, &[], &[]), group).unwrap();
        // The identity blob is secret-bearing (encode_identity ->
        // DomainRecord.user_secret), and field-insensitive taint smears
        // onto every binding destructured from it; `owner` is the plain
        // u64 account id, so printing it on failure leaks nothing.
        // trust-lint: allow(secret-taint) -- owner is the non-secret half of the decoded tuple
        assert_eq!(owner, 9);
        assert!(templates.is_empty());
        assert!(records.is_empty());
        // Trailing garbage is rejected.
        let mut bytes = encode_identity(9, &[], &[]);
        bytes.push(0);
        assert!(decode_identity(&bytes, group).is_none());
        // Truncation is rejected.
        let bytes = encode_identity(9, &[], &[]);
        assert!(decode_identity(&bytes[..bytes.len() - 1], group).is_none());
    }
}
