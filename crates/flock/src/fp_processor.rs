//! The fingerprint processor block.
//!
//! "The fingerprint processor can authenticate the user identity by
//! matching the input with the stored biometric templates." This block
//! holds the enrolled templates (one per enrolled finger) and runs the
//! partial-print matcher against all of them, taking the best score — a
//! touch can come from any enrolled finger.

use btd_fingerprint::enroll::enroll;
use btd_fingerprint::matcher::{match_observation, MatchConfig, MatchResult};
use btd_fingerprint::minutiae::Minutia;
use btd_fingerprint::pattern::FingerPattern;
use btd_fingerprint::template::Template;
use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;

/// The three-way decision of a biometric verification.
///
/// Treating every non-accept as fraud would let ordinary capture noise
/// lock the owner out; the processor therefore only calls *Reject* when
/// the score is conclusively below the impostor band.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchDecision {
    /// The observation matches an enrolled finger.
    Accept,
    /// The observation is conclusively a different finger.
    Reject,
    /// Not enough evidence either way (noisy genuine capture, tiny
    /// observation).
    Inconclusive,
}

/// Outcome of a template-store verification.
#[derive(Clone, Copy, Debug)]
pub struct VerifyResult {
    /// Best match across enrolled fingers.
    pub best: MatchResult,
    /// Index of the best-matching enrolled finger.
    pub finger_index: usize,
    /// The user the best-matching template belongs to (meaningful on
    /// shared devices with multiple enrolled users).
    pub matched_user: u64,
    /// The three-way decision.
    pub decision: MatchDecision,
    /// Modelled matcher latency for this verification.
    pub latency: SimDuration,
}

impl VerifyResult {
    /// Whether the decision is [`MatchDecision::Accept`].
    pub fn accepted(&self) -> bool {
        self.decision == MatchDecision::Accept
    }
}

/// The fingerprint processor with its template store.
#[derive(Clone, Debug)]
pub struct FingerprintProcessor {
    templates: Vec<Template>,
    config: MatchConfig,
    owner_user_id: Option<u64>,
    verifications: u64,
}

/// Enrollment captures per finger (guided flow).
const ENROLL_CAPTURES: usize = 5;

impl FingerprintProcessor {
    /// Creates an empty processor with the default matcher configuration.
    pub fn new() -> Self {
        FingerprintProcessor {
            templates: Vec::new(),
            config: MatchConfig::default(),
            owner_user_id: None,
            verifications: 0,
        }
    }

    /// Creates a processor with a custom matcher configuration.
    pub fn with_config(config: MatchConfig) -> Self {
        FingerprintProcessor {
            config,
            ..FingerprintProcessor::new()
        }
    }

    /// The matcher configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The enrolled owner, if any.
    pub fn owner(&self) -> Option<u64> {
        self.owner_user_id
    }

    /// Number of enrolled finger templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Total flash footprint of the stored templates, bytes.
    pub fn templates_encoded_size(&self) -> usize {
        self.templates.iter().map(Template::encoded_size).sum()
    }

    /// How many verifications have been run.
    pub fn verification_count(&self) -> u64 {
        self.verifications
    }

    /// Enrolls `finger_count` fingers of `user_id` via the guided flow,
    /// replacing any previous enrollment. This user becomes the device
    /// owner.
    ///
    /// # Panics
    ///
    /// Panics if `finger_count` is zero.
    pub fn enroll_user(&mut self, user_id: u64, finger_count: u8, rng: &mut SimRng) {
        assert!(finger_count > 0, "must enroll at least one finger");
        self.templates.clear();
        self.owner_user_id = Some(user_id);
        self.add_user(user_id, finger_count, rng);
    }

    /// Enrolls an *additional* user's fingers without disturbing existing
    /// templates — a shared device (family tablet) supports several
    /// authorized users, all of whom continuously verify.
    ///
    /// # Panics
    ///
    /// Panics if `finger_count` is zero.
    pub fn add_user(&mut self, user_id: u64, finger_count: u8, rng: &mut SimRng) {
        assert!(finger_count > 0, "must enroll at least one finger");
        for f in 0..finger_count {
            let finger = FingerPattern::generate(user_id, f);
            self.templates.push(enroll(&finger, ENROLL_CAPTURES, rng));
        }
        if self.owner_user_id.is_none() {
            self.owner_user_id = Some(user_id);
        }
    }

    /// The distinct users with enrolled templates.
    pub fn enrolled_users(&self) -> Vec<u64> {
        let mut users: Vec<u64> = self.templates.iter().map(Template::user_id).collect();
        users.sort_unstable();
        users.dedup();
        users
    }

    /// Installs templates directly (identity transfer from another device).
    ///
    /// # Panics
    ///
    /// Panics if `templates` is empty.
    pub fn install_templates(&mut self, user_id: u64, templates: Vec<Template>) {
        assert!(
            !templates.is_empty(),
            "cannot install an empty template set"
        );
        self.templates = templates;
        self.owner_user_id = Some(user_id);
    }

    /// Exports the enrolled templates (identity transfer to a new device).
    pub fn export_templates(&self) -> Vec<Template> {
        self.templates.clone()
    }

    /// Verifies an observation against every enrolled finger, returning
    /// the best result, or `None` if nothing is enrolled.
    pub fn verify(&mut self, observed: &[Minutia]) -> Option<VerifyResult> {
        if self.templates.is_empty() {
            return None;
        }
        self.verifications += 1;
        let mut best: Option<(usize, MatchResult)> = None;
        for (i, t) in self.templates.iter().enumerate() {
            let r = match_observation(t, observed, &self.config);
            if best.is_none_or(|(_, b)| r.score > b.score) {
                best = Some((i, r));
            }
        }
        let (finger_index, best) = best.expect("templates non-empty");
        let matched_user = self.templates[finger_index].user_id();
        let decision = if observed.len() < self.config.min_minutiae {
            MatchDecision::Inconclusive
        } else if best.is_accepted(&self.config) {
            MatchDecision::Accept
        } else if best.score <= self.config.reject_threshold
            && observed.len() >= self.config.reject_min_minutiae
        {
            MatchDecision::Reject
        } else {
            MatchDecision::Inconclusive
        };
        // Matcher latency: Hough voting is O(template × observed) pairs;
        // an embedded matcher core does ~1 pair per 100 ns plus fixed
        // overhead.
        let pairs: u64 = self
            .templates
            .iter()
            .map(|t| (t.len() * observed.len()) as u64)
            .sum();
        let latency = SimDuration::from_nanos(50_000 + pairs * 100);
        Some(VerifyResult {
            best,
            finger_index,
            matched_user,
            decision,
            latency,
        })
    }
}

impl Default for FingerprintProcessor {
    fn default() -> Self {
        FingerprintProcessor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_fingerprint::minutiae::CaptureWindow;
    use btd_fingerprint::quality::CaptureConditions;
    use btd_sim::geom::MmPoint;

    fn observe(user_id: u64, finger: u8, seed: u64) -> Vec<Minutia> {
        let pattern = FingerPattern::generate(user_id, finger);
        let window = CaptureWindow::centered(MmPoint::new(0.0, 1.0), 8.0, 8.0);
        let mut rng = SimRng::seed_from(seed);
        pattern
            .observe(&window, &CaptureConditions::ideal(), &mut rng)
            .minutiae
    }

    #[test]
    fn owner_fingers_verify() {
        let mut p = FingerprintProcessor::new();
        let mut rng = SimRng::seed_from(1);
        p.enroll_user(500, 3, &mut rng);
        assert_eq!(p.owner(), Some(500));
        assert_eq!(p.template_count(), 3);
        let mut accepted = 0;
        for finger in 0..3u8 {
            for seed in 0..4 {
                let r = p.verify(&observe(500, finger, seed + 10)).unwrap();
                if r.accepted() {
                    accepted += 1;
                }
            }
        }
        assert!(accepted >= 9, "only {accepted}/12 owner captures accepted");
    }

    #[test]
    fn impostor_fingers_rejected() {
        let mut p = FingerprintProcessor::new();
        let mut rng = SimRng::seed_from(2);
        p.enroll_user(500, 3, &mut rng);
        let mut accepted = 0;
        for seed in 0..12 {
            let r = p.verify(&observe(999, 0, seed + 50)).unwrap();
            if r.accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= 1, "{accepted}/12 impostor captures accepted");
    }

    #[test]
    fn best_finger_is_reported() {
        let mut p = FingerprintProcessor::new();
        let mut rng = SimRng::seed_from(3);
        p.enroll_user(501, 3, &mut rng);
        let r = p.verify(&observe(501, 2, 77)).unwrap();
        if r.accepted() {
            assert_eq!(r.finger_index, 2);
        }
    }

    #[test]
    fn empty_processor_returns_none() {
        let mut p = FingerprintProcessor::new();
        assert!(p.verify(&observe(1, 0, 1)).is_none());
        assert_eq!(p.verification_count(), 0);
    }

    #[test]
    fn export_install_roundtrip() {
        let mut a = FingerprintProcessor::new();
        let mut rng = SimRng::seed_from(4);
        a.enroll_user(502, 2, &mut rng);
        let exported = a.export_templates();
        let mut b = FingerprintProcessor::new();
        b.install_templates(502, exported);
        assert_eq!(b.owner(), Some(502));
        assert_eq!(b.template_count(), 2);
        let r = b.verify(&observe(502, 0, 5)).unwrap();
        assert!(r.best.score > 0.0);
    }

    #[test]
    fn shared_device_verifies_both_users() {
        let mut p = FingerprintProcessor::new();
        let mut rng = SimRng::seed_from(8);
        p.enroll_user(600, 2, &mut rng);
        p.add_user(601, 2, &mut rng);
        assert_eq!(p.owner(), Some(600));
        assert_eq!(p.enrolled_users(), vec![600, 601]);
        assert_eq!(p.template_count(), 4);
        let mut matched = [0usize; 2];
        for (slot, user) in [(0usize, 600u64), (1, 601)] {
            for seed in 0..6 {
                let r = p.verify(&observe(user, 0, 300 + seed)).unwrap();
                if r.accepted() && r.matched_user == user {
                    matched[slot] += 1;
                }
            }
        }
        assert!(matched[0] >= 4, "user 600 matched {}/6", matched[0]);
        assert!(matched[1] >= 4, "user 601 matched {}/6", matched[1]);
    }

    #[test]
    fn stranger_rejected_on_shared_device() {
        let mut p = FingerprintProcessor::new();
        let mut rng = SimRng::seed_from(9);
        p.enroll_user(600, 2, &mut rng);
        p.add_user(601, 2, &mut rng);
        let mut accepted = 0;
        for seed in 0..10 {
            if p.verify(&observe(999, 0, 400 + seed)).unwrap().accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= 1, "stranger accepted {accepted}/10");
    }

    #[test]
    fn latency_reported_and_counts_tracked() {
        let mut p = FingerprintProcessor::new();
        let mut rng = SimRng::seed_from(5);
        p.enroll_user(503, 1, &mut rng);
        let r = p.verify(&observe(503, 0, 6)).unwrap();
        assert!(r.latency > SimDuration::ZERO);
        assert!(r.latency < SimDuration::from_millis(10));
        assert_eq!(p.verification_count(), 1);
    }
}
