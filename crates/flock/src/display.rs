//! The display repeater.
//!
//! In Figure 5 the display output of the SoC's graphics core "is relayed by
//! the display repeater of \[the\] FLock module" on its way to the panel, and
//! the repeater taps each frame into the frame-hash engine. Because the
//! repeater sits *between* the (untrusted) SoC and the glass, whatever hash
//! it records is the ground truth of what the user actually saw — malware
//! can forge requests but cannot forge this hash.

use btd_crypto::sha256::Digest;
use btd_sim::time::SimDuration;

use crate::framehash::{DisplayFrame, FrameHashEngine};

/// The display repeater with its attached frame-hash engine.
#[derive(Clone, Debug, Default)]
pub struct DisplayRepeater {
    engine: FrameHashEngine,
    last_hash: Option<Digest>,
    frames_relayed: u64,
}

impl DisplayRepeater {
    /// Creates a repeater with a default-throughput hash engine.
    pub fn new() -> Self {
        DisplayRepeater::default()
    }

    /// Relays a frame to the panel, hashing it on the way through. Returns
    /// the frame hash and the added latency (hashing is pipelined with
    /// scan-out, so the latency is the engine time, not additive per line).
    pub fn relay(&mut self, frame: &DisplayFrame) -> (Digest, SimDuration) {
        let (digest, took) = self.engine.hash_frame(frame);
        self.last_hash = Some(digest);
        self.frames_relayed += 1;
        (digest, took)
    }

    /// The hash of the most recently displayed frame — what FLock attaches
    /// to outgoing requests ("FrameHash: hash(frame L)").
    pub fn last_frame_hash(&self) -> Option<Digest> {
        self.last_hash
    }

    /// Total frames relayed.
    pub fn frames_relayed(&self) -> u64 {
        self.frames_relayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_records_last_hash() {
        let mut r = DisplayRepeater::new();
        assert!(r.last_frame_hash().is_none());
        let f1 = DisplayFrame::new(b"page one".to_vec(), 480, 800);
        let f2 = DisplayFrame::new(b"page two".to_vec(), 480, 800);
        let (h1, _) = r.relay(&f1);
        assert_eq!(r.last_frame_hash(), Some(h1));
        let (h2, _) = r.relay(&f2);
        assert_eq!(r.last_frame_hash(), Some(h2));
        assert_ne!(h1, h2);
        assert_eq!(r.frames_relayed(), 2);
    }

    #[test]
    fn hash_matches_what_the_user_saw_not_what_malware_claims() {
        // Malware shows the user a spoofed frame; the repeater hash is of
        // the spoofed frame, so the server's audit will catch the mismatch
        // with the page it actually served.
        let mut r = DisplayRepeater::new();
        let served = DisplayFrame::new(b"transfer $10 to alice".to_vec(), 480, 800);
        let spoofed = DisplayFrame::new(b"transfer $10 to mallory".to_vec(), 480, 800);
        let mut engine = FrameHashEngine::new();
        let (served_hash, _) = engine.hash_frame(&served);
        let (seen_hash, _) = r.relay(&spoofed);
        assert_ne!(served_hash, seen_hash);
    }
}
