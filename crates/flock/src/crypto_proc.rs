//! The crypto processor block.
//!
//! "The crypto processor is used to generate (public, private) key pairs,
//! as well as to encrypt and decrypt." This block wraps the `btd-crypto`
//! primitives and attaches a latency model: an embedded asymmetric engine
//! takes milliseconds per exponentiation, and the protocol benches report
//! where that time goes.

use btd_crypto::elgamal::{open, seal, OpenError, SealedBox};
use btd_crypto::entropy::{ChaChaEntropy, EntropySource};
use btd_crypto::group::DhGroup;
use btd_crypto::hmac::hmac_sha256;
use btd_crypto::schnorr::{KeyPair, PublicKey, Signature};
use btd_crypto::sha256::Digest;
use btd_sim::time::SimDuration;

/// Latency model for the asymmetric engine.
#[derive(Clone, Copy, Debug)]
pub struct CryptoLatency {
    /// One modular exponentiation in the working group.
    pub modexp: SimDuration,
    /// One HMAC / hash over a short message.
    pub mac: SimDuration,
}

impl CryptoLatency {
    /// An embedded-class engine: ~2 ms per 2048-bit exponentiation,
    /// microseconds for a MAC.
    pub fn embedded() -> Self {
        CryptoLatency {
            modexp: SimDuration::from_micros(2_000),
            mac: SimDuration::from_micros(8),
        }
    }
}

/// The crypto processor: primitives plus accumulated busy time.
#[derive(Clone, Debug)]
pub struct CryptoProcessor {
    group: &'static DhGroup,
    entropy: ChaChaEntropy,
    latency: CryptoLatency,
    busy: SimDuration,
}

impl CryptoProcessor {
    /// Creates a processor over `group` seeded by `entropy`.
    pub fn new(group: &'static DhGroup, entropy: ChaChaEntropy) -> Self {
        CryptoProcessor {
            group,
            entropy,
            latency: CryptoLatency::embedded(),
            busy: SimDuration::ZERO,
        }
    }

    /// The working group.
    pub fn group(&self) -> &'static DhGroup {
        self.group
    }

    /// Total time the engine has spent on crypto so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Generates a key pair (one exponentiation).
    pub fn generate_keypair(&mut self) -> KeyPair {
        self.busy += self.latency.modexp;
        KeyPair::generate(self.group, &mut self.entropy)
    }

    /// Signs a message (one exponentiation + hash).
    pub fn sign(&mut self, keys: &KeyPair, message: &[u8]) -> Signature {
        self.busy += self.latency.modexp;
        self.busy += self.latency.mac;
        keys.sign(message, &mut self.entropy)
    }

    /// Verifies a signature (two exponentiations + hash).
    pub fn verify(&mut self, key: &PublicKey, message: &[u8], sig: &Signature) -> bool {
        self.busy += self.latency.modexp * 2;
        self.busy += self.latency.mac;
        key.verify(message, sig)
    }

    /// Seals a payload to a public key (two exponentiations + symmetric).
    pub fn seal_to(&mut self, recipient: &PublicKey, payload: &[u8]) -> SealedBox {
        self.busy += self.latency.modexp * 2;
        self.busy += self.latency.mac;
        seal(recipient, payload, &mut self.entropy)
    }

    /// Opens a sealed payload (one exponentiation + symmetric).
    ///
    /// # Errors
    ///
    /// Propagates [`OpenError`] from the underlying primitive.
    pub fn open_with(&mut self, keys: &KeyPair, boxed: &SealedBox) -> Result<Vec<u8>, OpenError> {
        self.busy += self.latency.modexp;
        self.busy += self.latency.mac;
        open(keys, boxed)
    }

    /// Computes an HMAC tag under a symmetric session key.
    pub fn mac(&mut self, key: &[u8], message: &[u8]) -> Digest {
        self.busy += self.latency.mac;
        hmac_sha256(key, message)
    }

    /// Draws fresh random bytes (e.g. a session key).
    pub fn random_bytes(&mut self, n: usize) -> Vec<u8> {
        self.entropy.bytes(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn processor(seed: u64) -> CryptoProcessor {
        CryptoProcessor::new(DhGroup::test_512(), ChaChaEntropy::from_u64_seed(seed))
    }

    #[test]
    fn sign_verify_through_processor() {
        let mut p = processor(1);
        let keys = p.generate_keypair();
        let sig = p.sign(&keys, b"host request");
        assert!(p.verify(keys.public_key(), b"host request", &sig));
        assert!(!p.verify(keys.public_key(), b"tampered", &sig));
    }

    #[test]
    fn seal_open_through_processor() {
        let mut p = processor(2);
        let keys = p.generate_keypair();
        let boxed = p.seal_to(keys.public_key(), b"session key");
        assert_eq!(p.open_with(&keys, &boxed).unwrap(), b"session key");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut p = processor(3);
        let t0 = p.busy_time();
        let keys = p.generate_keypair();
        let t1 = p.busy_time();
        assert!(t1 > t0);
        let _ = p.sign(&keys, b"m");
        assert!(p.busy_time() > t1);
    }

    #[test]
    fn verify_costs_more_than_sign() {
        let mut signer = processor(4);
        let keys = signer.generate_keypair();
        let base = signer.busy_time();
        let sig = signer.sign(&keys, b"m");
        let sign_cost = signer.busy_time() - base;
        let base = signer.busy_time();
        let _ = signer.verify(keys.public_key(), b"m", &sig);
        let verify_cost = signer.busy_time() - base;
        assert!(verify_cost > sign_cost);
    }

    #[test]
    fn random_bytes_differ() {
        let mut p = processor(5);
        assert_ne!(p.random_bytes(32), p.random_bytes(32));
    }
}
