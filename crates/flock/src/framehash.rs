//! Display frames and the frame-hash engine.
//!
//! "The display repeater can intercept displayed contents and sends them to
//! the frame hash engine. The frame hash engine computes a hash value of
//! the displayed frame. The frame hash can be later sent to the server to
//! ensure that the displayed hyper-text page has not been tampered."
//! (paper §III-B). The engine hashes at a fixed bytes-per-cycle rate so the
//! protocol benches can report its throughput.

use btd_crypto::sha256::{Digest, Sha256};
use btd_sim::clock::ClockDomain;
use btd_sim::time::SimDuration;

/// A rendered display frame as the repeater sees it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DisplayFrame {
    /// Logical page identity (server page id + view transform), so tests
    /// can construct "the same page, zoomed" deterministically.
    pub content: Vec<u8>,
    /// Frame width in pixels (part of the hashed identity).
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
}

impl DisplayFrame {
    /// Builds a frame from page content bytes at a given viewport.
    pub fn new(content: impl Into<Vec<u8>>, width: u32, height: u32) -> Self {
        DisplayFrame {
            content: content.into(),
            width,
            height,
        }
    }

    /// A frame rendering `page` under a view transform (zoom/scroll); the
    /// finite set of such views is what the server can precompute ("the
    /// displayed view of a web page can only belong to a finite set").
    pub fn rendered_view(page: &[u8], zoom_percent: u32, scroll_y: u32) -> Self {
        let mut content = Vec::with_capacity(page.len() + 8);
        content.extend_from_slice(page);
        content.extend_from_slice(&zoom_percent.to_be_bytes());
        content.extend_from_slice(&scroll_y.to_be_bytes());
        DisplayFrame::new(content, 480, 800)
    }

    /// Total bytes the hash engine must stream.
    pub fn byte_len(&self) -> usize {
        self.content.len() + 8
    }
}

/// The frame-hash engine: streaming SHA-256 at a fixed rate.
#[derive(Clone, Debug)]
pub struct FrameHashEngine {
    clock: ClockDomain,
    bytes_per_cycle: u64,
    frames_hashed: u64,
}

impl FrameHashEngine {
    /// Creates an engine. A modest embedded block: 200 MHz, 8 bytes/cycle.
    pub fn new() -> Self {
        FrameHashEngine {
            clock: ClockDomain::from_mhz(200.0),
            bytes_per_cycle: 8,
            frames_hashed: 0,
        }
    }

    /// Creates an engine with explicit throughput parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn with_throughput(clock: ClockDomain, bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "throughput must be positive");
        FrameHashEngine {
            clock,
            bytes_per_cycle,
            frames_hashed: 0,
        }
    }

    /// Hashes a frame, returning the digest and the engine time it took.
    pub fn hash_frame(&mut self, frame: &DisplayFrame) -> (Digest, SimDuration) {
        let mut h = Sha256::new();
        h.update_field(&frame.width.to_be_bytes());
        h.update_field(&frame.height.to_be_bytes());
        h.update_field(&frame.content);
        let digest = h.finalize();
        let cycles = (frame.byte_len() as u64).div_ceil(self.bytes_per_cycle) + 64;
        self.frames_hashed += 1;
        (digest, self.clock.cycles_to_duration(cycles))
    }

    /// How many frames this engine has hashed.
    pub fn frames_hashed(&self) -> u64 {
        self.frames_hashed
    }
}

impl Default for FrameHashEngine {
    fn default() -> Self {
        FrameHashEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_frame_same_hash() {
        let mut e = FrameHashEngine::new();
        let f = DisplayFrame::new(b"login page".to_vec(), 480, 800);
        let (d1, _) = e.hash_frame(&f);
        let (d2, _) = e.hash_frame(&f.clone());
        assert_eq!(d1, d2);
        assert_eq!(e.frames_hashed(), 2);
    }

    #[test]
    fn tampered_frame_changes_hash() {
        let mut e = FrameHashEngine::new();
        let honest = DisplayFrame::new(b"pay alice $10".to_vec(), 480, 800);
        let spoofed = DisplayFrame::new(b"pay mallory $10".to_vec(), 480, 800);
        assert_ne!(e.hash_frame(&honest).0, e.hash_frame(&spoofed).0);
    }

    #[test]
    fn viewport_is_part_of_identity() {
        let mut e = FrameHashEngine::new();
        let a = DisplayFrame::new(b"page".to_vec(), 480, 800);
        let b = DisplayFrame::new(b"page".to_vec(), 800, 480);
        assert_ne!(e.hash_frame(&a).0, e.hash_frame(&b).0);
    }

    #[test]
    fn zoomed_views_hash_differently_but_deterministically() {
        let mut e = FrameHashEngine::new();
        let v100 = DisplayFrame::rendered_view(b"article", 100, 0);
        let v150 = DisplayFrame::rendered_view(b"article", 150, 0);
        let v100_again = DisplayFrame::rendered_view(b"article", 100, 0);
        assert_ne!(e.hash_frame(&v100).0, e.hash_frame(&v150).0);
        assert_eq!(e.hash_frame(&v100).0, e.hash_frame(&v100_again).0);
    }

    #[test]
    fn hashing_time_scales_with_frame_size() {
        let mut e = FrameHashEngine::new();
        let small = DisplayFrame::new(vec![0u8; 1_000], 480, 800);
        let large = DisplayFrame::new(vec![0u8; 1_000_000], 480, 800);
        let (_, t_small) = e.hash_frame(&small);
        let (_, t_large) = e.hash_frame(&large);
        assert!(t_large > t_small * 100);
        // A 1 MB frame at 1.6 GB/s is well under a millisecond.
        assert!(t_large < SimDuration::from_millis(1));
    }
}
