//! Explicit login flows — the Table I comparison.
//!
//! | | Password | Separate sensor | Integrated sensor |
//! |---|---|---|---|
//! | Continuous verification | no | no | **yes** |
//! | User burden | memorization | extra login step | none |
//! | Login speed | typing speed | few seconds | **instant** |
//! | Transparent | no | no | **yes** |
//!
//! [`LoginApproach`] models each row's login latency and burden; the
//! integrated approach is additionally driven end-to-end through the real
//! [`AuthPipeline`] by [`unlock_with_flock`] ("an unlock button will appear
//! above a fingerprint sensor. The user has to touch the unlock button to
//! unlock the mobile device").

use btd_sim::rng::SimRng;
use btd_sim::time::SimDuration;
use btd_workload::session::TouchSample;

use crate::pipeline::{AuthPipeline, TouchAuthOutcome};

/// The three mobile-authentication approaches of Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LoginApproach {
    /// Typing a password on the soft keyboard.
    Password {
        /// Password length in characters.
        length: usize,
    },
    /// A dedicated fingerprint sensor requiring an explicit rub/swipe.
    SeparateSensor,
    /// The paper's design: a touch on an unlock button over an integrated
    /// transparent sensor.
    IntegratedSensor,
}

/// Modelled login characteristics for one attempt.
#[derive(Clone, Copy, Debug)]
pub struct LoginMetrics {
    /// Wall-clock time from intent to unlocked.
    pub latency: SimDuration,
    /// Explicit user actions beyond the touch that expresses intent
    /// (keystrokes, swipe strokes).
    pub extra_actions: u32,
    /// Whether the approach demands memorization (cognitive burden).
    pub memorization: bool,
    /// Whether the approach keeps verifying after login.
    pub continuous: bool,
    /// Whether authentication is invisible to the user.
    pub transparent: bool,
}

impl LoginApproach {
    /// Samples one login attempt's metrics.
    pub fn sample(&self, rng: &mut SimRng) -> LoginMetrics {
        match self {
            LoginApproach::Password { length } => {
                // Mobile soft-keyboard typing: ~350 ms/char with variance,
                // plus recall and submit time.
                let per_char = rng.gaussian_with(0.35, 0.08).clamp(0.15, 0.8);
                let recall = rng.range_f64(0.4, 1.5);
                LoginMetrics {
                    latency: SimDuration::from_secs_f64(recall + per_char * *length as f64),
                    extra_actions: *length as u32 + 1,
                    memorization: true,
                    continuous: false,
                    transparent: false,
                }
            }
            LoginApproach::SeparateSensor => {
                // Reach the sensor, swipe, wait for the scan: "few
                // seconds".
                let reach = rng.range_f64(0.5, 1.2);
                let swipe = rng.range_f64(0.8, 1.8);
                let scan = rng.range_f64(0.3, 0.8);
                LoginMetrics {
                    latency: SimDuration::from_secs_f64(reach + swipe + scan),
                    extra_actions: 1,
                    memorization: false,
                    continuous: false,
                    transparent: false,
                }
            }
            LoginApproach::IntegratedSensor => {
                // The unlock touch *is* the authentication: touchscreen
                // frame + windowed readout + match, tens of milliseconds.
                let hardware = rng.range_f64(0.015, 0.045);
                LoginMetrics {
                    latency: SimDuration::from_secs_f64(hardware),
                    extra_actions: 0,
                    memorization: false,
                    continuous: true,
                    transparent: true,
                }
            }
        }
    }
}

/// Result of an end-to-end integrated unlock attempt sequence.
#[derive(Clone, Copy, Debug)]
pub struct UnlockResult {
    /// Whether the device unlocked.
    pub unlocked: bool,
    /// Touches needed (low-quality touches force a retry).
    pub attempts: u32,
    /// Total latency across attempts, including inter-attempt delay.
    pub total_latency: SimDuration,
}

/// Drives the real pipeline through the unlock flow: the unlock button sits
/// over the pipeline's first sensor; the given user touches it until a
/// capture verifies, fails as a mismatch, or `max_attempts` is exhausted.
///
/// # Panics
///
/// Panics if the pipeline has no sensors or `max_attempts` is zero.
pub fn unlock_with_flock(
    pipeline: &mut AuthPipeline,
    user_id: u64,
    finger_index: u8,
    max_attempts: u32,
    rng: &mut SimRng,
) -> UnlockResult {
    assert!(max_attempts > 0, "need at least one attempt");
    let sensor = pipeline
        .capture_pipeline()
        .sensors()
        .first()
        .expect("pipeline must have at least one sensor");
    let button = sensor.bounds().center();

    let mut total_latency = SimDuration::ZERO;
    let mut mismatches = 0;
    for attempt in 1..=max_attempts {
        // A deliberate unlock touch: slow and firm, centred on the button.
        let sample = TouchSample {
            at: btd_sim::time::SimTime::ZERO,
            pos: button,
            finger_center: button.offset(rng.gaussian_with(0.0, 0.6), rng.gaussian_with(1.0, 0.6)),
            user_id,
            finger_index,
            speed_mm_s: rng.range_f64(0.0, 5.0),
            pressure: rng.gaussian_with(0.55, 0.08).clamp(0.2, 0.9),
            contact_radius_mm: rng.range_f64(4.0, 5.5),
            moisture: rng.range_f64(0.2, 0.5),
            dwell: SimDuration::from_millis(250),
        };
        let processed = pipeline.process_touch(&sample, rng);
        total_latency += processed.latency;
        match processed.outcome {
            TouchAuthOutcome::Verified { .. } => {
                return UnlockResult {
                    unlocked: true,
                    attempts: attempt,
                    total_latency,
                }
            }
            TouchAuthOutcome::Mismatched { .. } => {
                // One conclusive mismatch can be capture noise even for
                // the genuine owner; a second ends the attempt sequence.
                mismatches += 1;
                if mismatches >= 2 {
                    return UnlockResult {
                        unlocked: false,
                        attempts: attempt,
                        total_latency,
                    };
                }
                total_latency += SimDuration::from_millis(400);
            }
            // Low quality or (impossible here) off-sensor: retry after the
            // user repositions.
            _ => total_latency += SimDuration::from_millis(400),
        }
    }
    UnlockResult {
        unlocked: false,
        attempts: max_attempts,
        total_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp_processor::FingerprintProcessor;
    use crate::risk::RiskConfig;
    use btd_fingerprint::quality::QualityGate;
    use btd_sensor::array::PlacedSensor;
    use btd_sensor::capture::CapturePipeline;
    use btd_sensor::readout::ReadoutConfig;
    use btd_sensor::spec::SensorSpec;
    use btd_sim::geom::MmPoint;

    fn pipeline(owner: u64, rng: &mut SimRng) -> AuthPipeline {
        let capture = CapturePipeline::new(
            vec![PlacedSensor::new(
                SensorSpec::flock_patch(),
                MmPoint::new(22.0, 80.0),
            )],
            ReadoutConfig::default(),
        );
        let mut processor = FingerprintProcessor::new();
        processor.enroll_user(owner, 2, rng);
        AuthPipeline::new(
            capture,
            QualityGate::default(),
            processor,
            RiskConfig::default(),
            SimDuration::from_millis(4),
        )
    }

    #[test]
    fn integrated_is_fastest_approach() {
        let mut rng = SimRng::seed_from(1);
        let pw = LoginApproach::Password { length: 8 }.sample(&mut rng);
        let sep = LoginApproach::SeparateSensor.sample(&mut rng);
        let int = LoginApproach::IntegratedSensor.sample(&mut rng);
        assert!(int.latency < sep.latency);
        assert!(sep.latency < pw.latency);
        assert!(int.latency < SimDuration::from_millis(100), "instant");
    }

    #[test]
    fn table_i_qualitative_rows_hold() {
        let mut rng = SimRng::seed_from(2);
        let pw = LoginApproach::Password { length: 8 }.sample(&mut rng);
        let sep = LoginApproach::SeparateSensor.sample(&mut rng);
        let int = LoginApproach::IntegratedSensor.sample(&mut rng);
        assert!(pw.memorization && !sep.memorization && !int.memorization);
        assert!(!pw.continuous && !sep.continuous && int.continuous);
        assert!(!pw.transparent && !sep.transparent && int.transparent);
        assert_eq!(int.extra_actions, 0);
        assert!(pw.extra_actions > sep.extra_actions);
    }

    #[test]
    fn owner_unlocks_within_few_attempts() {
        let mut rng = SimRng::seed_from(3);
        let mut p = pipeline(7, &mut rng);
        let mut total_attempts = 0;
        for _ in 0..10 {
            let r = unlock_with_flock(&mut p, 7, 0, 5, &mut rng);
            assert!(r.unlocked, "owner failed to unlock");
            total_attempts += r.attempts;
        }
        assert!(total_attempts <= 20, "attempts {total_attempts}");
    }

    #[test]
    fn impostor_cannot_unlock() {
        let mut rng = SimRng::seed_from(4);
        let mut p = pipeline(7, &mut rng);
        let mut unlocked = 0;
        for _ in 0..10 {
            if unlock_with_flock(&mut p, 99, 0, 5, &mut rng).unlocked {
                unlocked += 1;
            }
        }
        assert_eq!(unlocked, 0, "impostor unlocked {unlocked}/10 times");
    }

    #[test]
    fn unlock_latency_is_interactive() {
        let mut rng = SimRng::seed_from(5);
        let mut p = pipeline(7, &mut rng);
        let r = unlock_with_flock(&mut p, 7, 0, 5, &mut rng);
        assert!(r.unlocked);
        assert!(
            r.total_latency < SimDuration::from_secs(2),
            "unlock took {}",
            r.total_latency
        );
    }
}
