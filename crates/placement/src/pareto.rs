//! Sensor-count sweeps and Pareto-front extraction.
//!
//! The coverage-vs-cost experiment sweeps the number of placed sensors and
//! reports, for each count, the achieved coverage and cost — then extracts
//! the Pareto-efficient design points.

use btd_sim::geom::MmRect;

use crate::cost::CostModel;
use crate::greedy::greedy;
use crate::problem::PlacementProblem;

/// One design point of the sweep.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Number of sensors placed.
    pub sensors: usize,
    /// Touch coverage in `[0, 1]`.
    pub coverage: f64,
    /// Cost under the sweep's cost model.
    pub cost: f64,
    /// The placement itself.
    pub placement: Vec<MmRect>,
}

/// Sweeps sensor counts `1..=max_sensors` with greedy placement.
pub fn sweep(
    problem: &PlacementProblem,
    max_sensors: usize,
    step_mm: f64,
    cost_model: &CostModel,
) -> Vec<DesignPoint> {
    (1..=max_sensors)
        .map(|k| {
            let placement = greedy(problem, k, step_mm);
            DesignPoint {
                sensors: placement.len(),
                coverage: problem.coverage(&placement),
                cost: cost_model.cost(&placement),
                placement,
            }
        })
        .collect()
}

/// Extracts the Pareto front (maximize coverage, minimize cost), sorted by
/// cost ascending.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<DesignPoint> = points.to_vec();
    sorted.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    let mut front: Vec<DesignPoint> = Vec::new();
    let mut best_cov = f64::NEG_INFINITY;
    for p in sorted {
        if p.coverage > best_cov + 1e-12 {
            best_cov = p.coverage;
            front.push(p);
        }
    }
    front
}

/// A design point of the (size × count) sweep.
#[derive(Clone, Debug)]
pub struct SizedDesignPoint {
    /// Sensor edge length, millimetres (square patches).
    pub sensor_mm: f64,
    /// Number of sensors placed.
    pub sensors: usize,
    /// Touch coverage in `[0, 1]`.
    pub coverage: f64,
    /// Cost under the sweep's cost model.
    pub cost: f64,
}

/// Sweeps sensor *sizes* as well as counts — the paper's full design space
/// ("the optimal number, places, and sizes of fingerprint sensors").
/// Each design point places `k` square sensors of one size greedily.
///
/// # Panics
///
/// Panics if `sizes_mm` is empty or contains a non-positive size.
pub fn sweep_sizes(
    panel: btd_sim::geom::MmSize,
    heatmap: &btd_workload::heatmap::Heatmap,
    sizes_mm: &[f64],
    max_sensors: usize,
    step_mm: f64,
    cost_model: &CostModel,
) -> Vec<SizedDesignPoint> {
    assert!(!sizes_mm.is_empty(), "need at least one size");
    let mut points = Vec::new();
    for &size in sizes_mm {
        assert!(size > 0.0, "sensor size must be positive");
        let problem = PlacementProblem::new(
            panel,
            btd_sim::geom::MmSize::new(size, size),
            heatmap.clone(),
        );
        for k in 1..=max_sensors {
            let placement = greedy(&problem, k, step_mm);
            points.push(SizedDesignPoint {
                sensor_mm: size,
                sensors: placement.len(),
                coverage: problem.coverage(&placement),
                cost: cost_model.cost(&placement),
            });
        }
    }
    points
}

/// Extracts the Pareto front of a size sweep (maximize coverage, minimize
/// cost), sorted by cost ascending.
pub fn sized_pareto_front(points: &[SizedDesignPoint]) -> Vec<SizedDesignPoint> {
    let mut sorted: Vec<SizedDesignPoint> = points.to_vec();
    sorted.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    let mut front: Vec<SizedDesignPoint> = Vec::new();
    let mut best_cov = f64::NEG_INFINITY;
    for p in sorted {
        if p.coverage > best_cov + 1e-12 {
            best_cov = p.coverage;
            front.push(p);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_sim::geom::MmSize;
    use btd_sim::rng::SimRng;
    use btd_workload::heatmap::Heatmap;
    use btd_workload::profile::UserProfile;
    use btd_workload::session::SessionGenerator;

    fn problem() -> PlacementProblem {
        let mut rng = SimRng::seed_from(400);
        let profile = UserProfile::builtin(0);
        let panel = profile.panel_size();
        let mut gen = SessionGenerator::new(profile, &mut rng);
        let samples = gen.generate(2_000, &mut rng);
        let heatmap = Heatmap::from_samples(panel, 4.0, &samples);
        PlacementProblem::new(panel, MmSize::new(8.0, 8.0), heatmap)
    }

    #[test]
    fn sweep_produces_monotone_coverage() {
        let p = problem();
        let points = sweep(&p, 5, 4.0, &CostModel::default());
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(w[1].coverage >= w[0].coverage - 1e-9);
            assert!(w[1].cost >= w[0].cost);
        }
    }

    #[test]
    fn front_is_strictly_improving() {
        let p = problem();
        let points = sweep(&p, 5, 4.0, &CostModel::default());
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].cost > w[0].cost);
            assert!(w[1].coverage > w[0].coverage);
        }
    }

    #[test]
    fn size_sweep_covers_the_grid_and_larger_is_costlier() {
        let p = problem();
        let heatmap = p.heatmap().clone();
        let points = sweep_sizes(
            p.panel(),
            &heatmap,
            &[6.0, 10.0],
            3,
            4.0,
            &CostModel::default(),
        );
        assert_eq!(points.len(), 6);
        // Same count, bigger sensor: at least as much coverage, higher cost.
        for k in 1..=3 {
            let small = points
                .iter()
                .find(|x| x.sensor_mm == 6.0 && x.sensors == k)
                .unwrap();
            let large = points
                .iter()
                .find(|x| x.sensor_mm == 10.0 && x.sensors == k)
                .unwrap();
            assert!(large.coverage >= small.coverage - 0.02, "k={k}");
            assert!(large.cost > small.cost);
        }
        let front = sized_pareto_front(&points);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].cost > w[0].cost && w[1].coverage > w[0].coverage);
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let mk = |sensors, coverage, cost| DesignPoint {
            sensors,
            coverage,
            cost,
            placement: Vec::new(),
        };
        let points = vec![
            mk(1, 0.4, 1.0),
            mk(2, 0.4, 2.0), // same coverage, higher cost → dominated
            mk(3, 0.6, 3.0),
            mk(4, 0.55, 4.0), // less coverage, higher cost → dominated
        ];
        let front = pareto_front(&points);
        let sensors: Vec<usize> = front.iter().map(|p| p.sensors).collect();
        assert_eq!(sensors, vec![1, 3]);
    }
}
