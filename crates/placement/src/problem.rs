//! The placement optimization problem and its coverage objective.

use btd_sim::geom::{MmPoint, MmRect, MmSize};
use btd_sim::rng::SimRng;
use btd_workload::heatmap::Heatmap;

/// Sub-sampling grid per heatmap cell when evaluating coverage (a cell is
/// pro-rated by the fraction of its sub-points under some sensor).
const SUBSAMPLES: usize = 3;

/// A sensor-placement optimization instance.
#[derive(Clone, Debug)]
pub struct PlacementProblem {
    panel: MmSize,
    sensor: MmSize,
    heatmap: Heatmap,
}

impl PlacementProblem {
    /// Creates a problem: place sensors of footprint `sensor` on `panel`
    /// to cover the touch mass of `heatmap`.
    ///
    /// # Panics
    ///
    /// Panics if the sensor footprint does not fit the panel.
    pub fn new(panel: MmSize, sensor: MmSize, heatmap: Heatmap) -> Self {
        assert!(
            sensor.w <= panel.w && sensor.h <= panel.h,
            "sensor footprint must fit the panel"
        );
        PlacementProblem {
            panel,
            sensor,
            heatmap,
        }
    }

    /// The panel size.
    pub fn panel(&self) -> MmSize {
        self.panel
    }

    /// The sensor footprint.
    pub fn sensor_size(&self) -> MmSize {
        self.sensor
    }

    /// The touch-density weights.
    pub fn heatmap(&self) -> &Heatmap {
        &self.heatmap
    }

    /// The sensor rectangle whose top-left corner is `origin`.
    pub fn sensor_rect(&self, origin: MmPoint) -> MmRect {
        MmRect::new(origin, self.sensor)
    }

    /// Whether `rect` lies fully on the panel.
    pub fn fits(&self, rect: MmRect) -> bool {
        rect.left() >= 0.0
            && rect.top() >= 0.0
            && rect.right() <= self.panel.w
            && rect.bottom() <= self.panel.h
    }

    /// Whether `rect` overlaps any rectangle in `placement` (sensor
    /// patches are physical TFT stacks and cannot overlap).
    pub fn overlaps_any(&self, rect: MmRect, placement: &[MmRect]) -> bool {
        placement.iter().any(|p| p.overlaps(rect))
    }

    /// Fraction of the recorded touch mass that lands under some sensor of
    /// `placement` — the paper's "chance of capturing touch points during
    /// user-device interaction".
    pub fn coverage(&self, placement: &[MmRect]) -> f64 {
        if placement.is_empty() || self.heatmap.total() == 0 {
            return 0.0;
        }
        let mut covered = 0.0;
        let mut total = 0.0;
        for r in 0..self.heatmap.rows() {
            for c in 0..self.heatmap.cols() {
                let count = self.heatmap.count(r, c) as f64;
                if count == 0.0 {
                    continue;
                }
                total += count;
                let cell = self.heatmap.cell_rect(r, c);
                // Sub-sample the cell to pro-rate edge coverage under the
                // union of sensor rectangles.
                let mut hit = 0usize;
                for sy in 0..SUBSAMPLES {
                    for sx in 0..SUBSAMPLES {
                        let p = MmPoint::new(
                            cell.left() + (sx as f64 + 0.5) / SUBSAMPLES as f64 * cell.size.w,
                            cell.top() + (sy as f64 + 0.5) / SUBSAMPLES as f64 * cell.size.h,
                        );
                        if placement.iter().any(|rect| rect.contains(p)) {
                            hit += 1;
                        }
                    }
                }
                covered += count * hit as f64 / (SUBSAMPLES * SUBSAMPLES) as f64;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            covered / total
        }
    }

    /// A uniformly random non-overlapping placement of `k` sensors (the
    /// baseline the optimizers are compared against). May return fewer
    /// than `k` rectangles if random placement cannot fit more without
    /// overlap after many attempts.
    pub fn random_placement(&self, k: usize, rng: &mut SimRng) -> Vec<MmRect> {
        let mut placement = Vec::with_capacity(k);
        let mut attempts = 0;
        while placement.len() < k && attempts < 10_000 {
            attempts += 1;
            let origin = MmPoint::new(
                rng.range_f64(0.0, self.panel.w - self.sensor.w),
                rng.range_f64(0.0, self.panel.h - self.sensor.h),
            );
            let rect = self.sensor_rect(origin);
            if !self.overlaps_any(rect, &placement) {
                placement.push(rect);
            }
        }
        placement
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btd_workload::heatmap::Heatmap;
    use btd_workload::profile::UserProfile;
    use btd_workload::session::SessionGenerator;
    use proptest::prelude::*;

    fn quick_problem(seed: u64) -> PlacementProblem {
        let mut rng = SimRng::seed_from(seed);
        let profile = UserProfile::builtin((seed % 3) as usize);
        let panel = profile.panel_size();
        let mut gen = SessionGenerator::new(profile, &mut rng);
        let samples = gen.generate(500, &mut rng);
        let heatmap = Heatmap::from_samples(panel, 4.0, &samples);
        PlacementProblem::new(panel, MmSize::new(8.0, 8.0), heatmap)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Coverage is always a fraction, and adding a sensor never
        /// decreases it.
        #[test]
        fn coverage_is_monotone_fraction(seed in 0u64..500, n in 1usize..5) {
            let problem = quick_problem(seed);
            let mut rng = SimRng::seed_from(seed ^ 0xABCD);
            let placement = problem.random_placement(n, &mut rng);
            let cov = problem.coverage(&placement);
            prop_assert!((0.0..=1.0).contains(&cov));
            if placement.len() > 1 {
                let fewer = &placement[..placement.len() - 1];
                prop_assert!(problem.coverage(fewer) <= cov + 1e-9);
            }
        }

        /// Random placements are always physically valid.
        #[test]
        fn random_placement_is_always_valid(seed in 0u64..500, n in 1usize..6) {
            let problem = quick_problem(seed);
            let mut rng = SimRng::seed_from(seed.wrapping_mul(31));
            let placement = problem.random_placement(n, &mut rng);
            for (i, r) in placement.iter().enumerate() {
                prop_assert!(problem.fits(*r));
                for other in &placement[i + 1..] {
                    prop_assert!(!r.overlaps(*other));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_workload::profile::UserProfile;
    use btd_workload::session::SessionGenerator;

    pub(crate) fn problem_for(profile_idx: usize, touches: usize) -> PlacementProblem {
        let mut rng = SimRng::seed_from(profile_idx as u64 + 77);
        let profile = UserProfile::builtin(profile_idx);
        let panel = profile.panel_size();
        let mut gen = SessionGenerator::new(profile, &mut rng);
        let samples = gen.generate(touches, &mut rng);
        let heatmap = Heatmap::from_samples(panel, 4.0, &samples);
        PlacementProblem::new(panel, MmSize::new(8.0, 8.0), heatmap)
    }

    #[test]
    fn empty_placement_covers_nothing() {
        let p = problem_for(0, 1_000);
        assert_eq!(p.coverage(&[]), 0.0);
    }

    #[test]
    fn full_panel_placement_covers_everything() {
        let mut rng = SimRng::seed_from(1);
        let profile = UserProfile::builtin(0);
        let panel = profile.panel_size();
        let mut gen = SessionGenerator::new(profile, &mut rng);
        let samples = gen.generate(1_000, &mut rng);
        let heatmap = Heatmap::from_samples(panel, 4.0, &samples);
        let p = PlacementProblem::new(panel, panel, heatmap);
        let whole = p.sensor_rect(MmPoint::new(0.0, 0.0));
        assert!(p.coverage(&[whole]) > 0.97);
    }

    #[test]
    fn coverage_is_monotone_in_sensors() {
        let p = problem_for(0, 2_000);
        let a = p.sensor_rect(MmPoint::new(20.0, 70.0)); // keyboard band
        let b = p.sensor_rect(MmPoint::new(20.0, 84.0)); // nav row
        let one = p.coverage(&[a]);
        let two = p.coverage(&[a, b]);
        assert!(two >= one);
        assert!(one > 0.0);
    }

    #[test]
    fn hotspot_placement_beats_cold_corner() {
        let p = problem_for(0, 2_000);
        let hot = p.coverage(&[p.sensor_rect(MmPoint::new(22.0, 70.0))]);
        let cold = p.coverage(&[p.sensor_rect(MmPoint::new(0.0, 0.0))]);
        assert!(hot > 3.0 * cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn fits_and_overlap_checks() {
        let p = problem_for(0, 100);
        assert!(p.fits(p.sensor_rect(MmPoint::new(0.0, 0.0))));
        assert!(!p.fits(p.sensor_rect(MmPoint::new(50.0, 0.0))));
        let a = p.sensor_rect(MmPoint::new(10.0, 10.0));
        let b = p.sensor_rect(MmPoint::new(14.0, 14.0));
        let c = p.sensor_rect(MmPoint::new(30.0, 30.0));
        assert!(p.overlaps_any(b, &[a]));
        assert!(!p.overlaps_any(c, &[a]));
    }

    #[test]
    fn random_placement_is_valid() {
        let p = problem_for(1, 100);
        let mut rng = SimRng::seed_from(5);
        let placement = p.random_placement(5, &mut rng);
        assert_eq!(placement.len(), 5);
        for (i, r) in placement.iter().enumerate() {
            assert!(p.fits(*r));
            for other in &placement[i + 1..] {
                assert!(!r.overlaps(*other));
            }
        }
    }
}
