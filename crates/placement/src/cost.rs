//! The sensor cost model.
//!
//! The paper frames placement as a *coverage vs cost* trade-off: "From
//! both energy consumption and hardware cost aspects, using a large
//! fingerprint sensor to cover the entire touchscreen is not a feasible
//! plan." The cost of a placement is TFT area cost plus per-patch
//! integration overhead (driver wiring, controller ports).

use btd_sim::geom::MmRect;

/// Cost model parameters (arbitrary cost units).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost per square centimetre of transparent TFT sensor area.
    pub per_cm2: f64,
    /// Fixed integration cost per sensor patch.
    pub per_patch: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_cm2: 0.15,
            per_patch: 0.25,
        }
    }
}

impl CostModel {
    /// Total cost of a placement.
    pub fn cost(&self, placement: &[MmRect]) -> f64 {
        let area_cm2: f64 = placement.iter().map(|r| r.area() / 100.0).sum();
        self.per_cm2 * area_cm2 + self.per_patch * placement.len() as f64
    }

    /// Coverage gained per cost unit — the figure of merit for comparing
    /// design points.
    pub fn effectiveness(&self, coverage: f64, placement: &[MmRect]) -> f64 {
        let c = self.cost(placement);
        if c == 0.0 {
            0.0
        } else {
            coverage / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_sim::geom::{MmPoint, MmSize};

    fn patch(x: f64) -> MmRect {
        MmRect::new(MmPoint::new(x, 0.0), MmSize::new(8.0, 8.0))
    }

    #[test]
    fn cost_scales_with_count_and_area() {
        let m = CostModel::default();
        let one = m.cost(&[patch(0.0)]);
        let two = m.cost(&[patch(0.0), patch(10.0)]);
        assert!((two - 2.0 * one).abs() < 1e-12);
        let big = MmRect::new(MmPoint::new(0.0, 0.0), MmSize::new(16.0, 16.0));
        assert!(m.cost(&[big]) > one);
    }

    #[test]
    fn empty_placement_costs_nothing() {
        let m = CostModel::default();
        assert_eq!(m.cost(&[]), 0.0);
        assert_eq!(m.effectiveness(0.5, &[]), 0.0);
    }

    #[test]
    fn effectiveness_prefers_cheap_coverage() {
        let m = CostModel::default();
        // Same coverage, fewer patches → more effective.
        let e1 = m.effectiveness(0.6, &[patch(0.0)]);
        let e2 = m.effectiveness(0.6, &[patch(0.0), patch(10.0)]);
        assert!(e1 > e2);
    }
}
