#![warn(missing_docs)]

//! Fingerprint-sensor placement optimization (paper §III-A / §IV-A).
//!
//! "For achieving the best trade-off between touch point coverage and
//! cost, one can use a biometric sensor placement approach that chooses
//! the optimal number, places, and sizes of fingerprint sensors. The
//! optimization is based on the observation that … touch points … appear
//! more frequently in certain touchscreen regions."
//!
//! This crate implements that approach over the heatmaps produced by
//! `btd-workload`:
//!
//! * [`problem`] — the optimization problem (panel, sensor footprint,
//!   touch-density weights) and the coverage objective.
//! * [`greedy`] — weighted maximum-coverage greedy placement.
//! * [`anneal`] — simulated-annealing refinement of a placement.
//! * [`cost`] — the area/unit cost model and cost-effectiveness metrics.
//! * [`pareto`] — sensor-count sweeps and Pareto-front extraction for the
//!   coverage-vs-cost experiment.
//!
//! # Example
//!
//! ```
//! use btd_placement::problem::PlacementProblem;
//! use btd_workload::heatmap::Heatmap;
//! use btd_workload::profile::UserProfile;
//! use btd_workload::session::SessionGenerator;
//! use btd_sim::geom::MmSize;
//! use btd_sim::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from(1);
//! let profile = UserProfile::builtin(0);
//! let panel = profile.panel_size();
//! let mut gen = SessionGenerator::new(profile, &mut rng);
//! let samples = gen.generate(2_000, &mut rng);
//! let heatmap = Heatmap::from_samples(panel, 4.0, &samples);
//! let problem = PlacementProblem::new(panel, MmSize::new(8.0, 8.0), heatmap);
//! let placement = btd_placement::greedy::greedy(&problem, 4, 2.0);
//! assert!(problem.coverage(&placement) > 0.3);
//! ```

pub mod anneal;
pub mod cost;
pub mod greedy;
pub mod pareto;
pub mod problem;

pub use problem::PlacementProblem;
