//! Greedy weighted maximum-coverage placement.
//!
//! Classic (1 − 1/e)-approximate greedy: enumerate candidate origins on a
//! grid, repeatedly add the sensor with the largest *marginal* coverage
//! gain. This is the workhorse the coverage experiment compares against
//! random placement and annealing refinement.

use btd_sim::geom::{MmPoint, MmRect};

use crate::problem::PlacementProblem;

/// Places up to `k` sensors by greedy marginal-coverage maximization, with
/// candidate origins on a `step_mm` grid.
///
/// Returns fewer than `k` rectangles only if the panel cannot fit more
/// non-overlapping sensors or no candidate adds coverage.
///
/// # Panics
///
/// Panics if `step_mm` is not positive.
pub fn greedy(problem: &PlacementProblem, k: usize, step_mm: f64) -> Vec<MmRect> {
    assert!(step_mm > 0.0, "candidate grid step must be positive");
    let candidates = candidate_origins(problem, step_mm);
    let mut placement: Vec<MmRect> = Vec::with_capacity(k);
    let mut current = 0.0;

    for _ in 0..k {
        let mut best: Option<(f64, MmRect)> = None;
        for origin in &candidates {
            let rect = problem.sensor_rect(*origin);
            if problem.overlaps_any(rect, &placement) {
                continue;
            }
            let mut trial = placement.clone();
            trial.push(rect);
            let gain = problem.coverage(&trial) - current;
            if best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, rect));
            }
        }
        match best {
            Some((gain, rect)) if gain > 1e-9 => {
                placement.push(rect);
                current += gain;
            }
            _ => break,
        }
    }
    placement
}

/// All grid origins where the sensor footprint fits the panel.
pub fn candidate_origins(problem: &PlacementProblem, step_mm: f64) -> Vec<MmPoint> {
    let panel = problem.panel();
    let sensor = problem.sensor_size();
    let mut origins = Vec::new();
    let mut y = 0.0;
    while y + sensor.h <= panel.h + 1e-9 {
        let mut x = 0.0;
        while x + sensor.w <= panel.w + 1e-9 {
            origins.push(MmPoint::new(x, y));
            x += step_mm;
        }
        y += step_mm;
    }
    origins
}

#[cfg(test)]
mod tests {
    use super::*;
    use btd_sim::geom::MmSize;
    use btd_sim::rng::SimRng;
    use btd_workload::heatmap::Heatmap;
    use btd_workload::profile::UserProfile;
    use btd_workload::session::SessionGenerator;

    fn problem_for(profile_idx: usize) -> PlacementProblem {
        let mut rng = SimRng::seed_from(profile_idx as u64 + 200);
        let profile = UserProfile::builtin(profile_idx);
        let panel = profile.panel_size();
        let mut gen = SessionGenerator::new(profile, &mut rng);
        let samples = gen.generate(3_000, &mut rng);
        let heatmap = Heatmap::from_samples(panel, 4.0, &samples);
        PlacementProblem::new(panel, MmSize::new(8.0, 8.0), heatmap)
    }

    #[test]
    fn candidates_fit_panel() {
        let p = problem_for(0);
        for o in candidate_origins(&p, 4.0) {
            assert!(p.fits(p.sensor_rect(o)));
        }
    }

    #[test]
    fn greedy_placements_are_disjoint_and_on_panel() {
        let p = problem_for(0);
        let placement = greedy(&p, 4, 2.0);
        assert_eq!(placement.len(), 4);
        for (i, r) in placement.iter().enumerate() {
            assert!(p.fits(*r));
            for other in &placement[i + 1..] {
                assert!(!r.overlaps(*other));
            }
        }
    }

    #[test]
    fn greedy_beats_random() {
        for idx in 0..3 {
            let p = problem_for(idx);
            let g = p.coverage(&greedy(&p, 3, 2.0));
            let mut rng = SimRng::seed_from(42);
            // Best of 5 random placements, to be fair to the baseline.
            let r = (0..5)
                .map(|_| p.coverage(&p.random_placement(3, &mut rng)))
                .fold(0.0, f64::max);
            assert!(g > r, "profile {idx}: greedy {g:.3} vs random {r:.3}");
        }
    }

    #[test]
    fn greedy_coverage_is_monotone_in_k() {
        let p = problem_for(1);
        let mut prev = 0.0;
        for k in 1..=5 {
            let cov = p.coverage(&greedy(&p, k, 2.0));
            assert!(cov >= prev - 1e-9, "coverage fell at k={k}");
            prev = cov;
        }
        assert!(prev > 0.3, "5 sensors should cover >30% (got {prev})");
    }

    #[test]
    fn limited_coverage_captures_most_touches() {
        // The paper's §IV-A claim: hot-spot placement makes limited sensor
        // area capture a large share of touches. 4 sensors of 8×8 mm cover
        // ~5% of panel area; they must capture far more than 5% of touches.
        let p = problem_for(0);
        let placement = greedy(&p, 4, 2.0);
        let area_frac =
            placement.iter().map(|r| r.area()).sum::<f64>() / (p.panel().w * p.panel().h);
        let cov = p.coverage(&placement);
        assert!(
            cov > 6.0 * area_frac,
            "coverage {cov:.3} should dwarf area fraction {area_frac:.3}"
        );
    }
}
