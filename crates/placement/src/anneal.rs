//! Simulated-annealing refinement of a placement.
//!
//! Greedy commits to grid-aligned origins; annealing jiggles sensors
//! continuously to climb off the grid. Moves that break the layout
//! (off-panel or overlapping) are rejected outright.

use btd_sim::geom::{MmPoint, MmRect};
use btd_sim::rng::SimRng;

use crate::problem::PlacementProblem;

/// Annealing schedule parameters.
#[derive(Clone, Copy, Debug)]
pub struct AnnealConfig {
    /// Number of proposal iterations.
    pub iterations: usize,
    /// Initial temperature (in coverage units).
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Standard deviation of positional proposals, millimetres.
    pub step_mm: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 2_000,
            initial_temp: 0.02,
            cooling: 0.998,
            step_mm: 3.0,
        }
    }
}

/// Refines `initial` by simulated annealing; returns the best placement
/// seen (never worse than the input).
pub fn anneal(
    problem: &PlacementProblem,
    initial: &[MmRect],
    config: &AnnealConfig,
    rng: &mut SimRng,
) -> Vec<MmRect> {
    if initial.is_empty() {
        return Vec::new();
    }
    let mut current: Vec<MmRect> = initial.to_vec();
    let mut current_cov = problem.coverage(&current);
    let mut best = current.clone();
    let mut best_cov = current_cov;
    let mut temp = config.initial_temp;

    for _ in 0..config.iterations {
        // Propose: move one sensor by a Gaussian step.
        let idx = rng.below(current.len() as u64) as usize;
        let old = current[idx];
        let proposal = problem.sensor_rect(MmPoint::new(
            old.origin.x + rng.gaussian_with(0.0, config.step_mm),
            old.origin.y + rng.gaussian_with(0.0, config.step_mm),
        ));
        let others: Vec<MmRect> = current
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, r)| *r)
            .collect();
        if !problem.fits(proposal) || problem.overlaps_any(proposal, &others) {
            temp *= config.cooling;
            continue;
        }
        current[idx] = proposal;
        let new_cov = problem.coverage(&current);
        let accept = new_cov >= current_cov
            || rng.chance(((new_cov - current_cov) / temp.max(1e-9)).exp().min(1.0));
        if accept {
            current_cov = new_cov;
            if new_cov > best_cov {
                best_cov = new_cov;
                best = current.clone();
            }
        } else {
            current[idx] = old;
        }
        temp *= config.cooling;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy;
    use btd_sim::geom::MmSize;
    use btd_workload::heatmap::Heatmap;
    use btd_workload::profile::UserProfile;
    use btd_workload::session::SessionGenerator;

    fn problem_for(profile_idx: usize) -> PlacementProblem {
        let mut rng = SimRng::seed_from(profile_idx as u64 + 300);
        let profile = UserProfile::builtin(profile_idx);
        let panel = profile.panel_size();
        let mut gen = SessionGenerator::new(profile, &mut rng);
        let samples = gen.generate(3_000, &mut rng);
        let heatmap = Heatmap::from_samples(panel, 4.0, &samples);
        PlacementProblem::new(panel, MmSize::new(8.0, 8.0), heatmap)
    }

    #[test]
    fn anneal_never_degrades() {
        let p = problem_for(0);
        let initial = greedy(&p, 3, 4.0);
        let before = p.coverage(&initial);
        let mut rng = SimRng::seed_from(1);
        let cfg = AnnealConfig {
            iterations: 400,
            ..AnnealConfig::default()
        };
        let refined = anneal(&p, &initial, &cfg, &mut rng);
        let after = p.coverage(&refined);
        assert!(
            after >= before - 1e-9,
            "annealing degraded: {before} → {after}"
        );
    }

    #[test]
    fn anneal_improves_a_random_start() {
        let p = problem_for(1);
        let mut rng = SimRng::seed_from(2);
        let initial = p.random_placement(3, &mut rng);
        let before = p.coverage(&initial);
        let cfg = AnnealConfig {
            iterations: 800,
            ..AnnealConfig::default()
        };
        let refined = anneal(&p, &initial, &cfg, &mut rng);
        let after = p.coverage(&refined);
        assert!(after > before, "no improvement: {before} → {after}");
    }

    #[test]
    fn result_remains_valid_layout() {
        let p = problem_for(2);
        let mut rng = SimRng::seed_from(3);
        let initial = greedy(&p, 4, 4.0);
        let refined = anneal(&p, &initial, &AnnealConfig::default(), &mut rng);
        assert_eq!(refined.len(), initial.len());
        for (i, r) in refined.iter().enumerate() {
            assert!(p.fits(*r));
            for other in &refined[i + 1..] {
                assert!(!r.overlaps(*other));
            }
        }
    }

    #[test]
    fn empty_initial_is_noop() {
        let p = problem_for(0);
        let mut rng = SimRng::seed_from(4);
        assert!(anneal(&p, &[], &AnnealConfig::default(), &mut rng).is_empty());
    }
}
