//! A deterministic, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of proptest's API its test suites actually use:
//! the [`proptest!`] macro, `prop_assert*` / `prop_assume!`, range and
//! `any::<T>()` strategies, `collection::vec`, `Just`, `prop_oneof!`, and
//! `prop_map`. Semantics differ from real proptest in one deliberate way:
//! cases are generated from a fixed per-case seed, so every run of every
//! test is bit-for-bit reproducible (there is no persistence file).
//!
//! Failures shrink: integer strategies walk toward their lower bound,
//! vector strategies drop and simplify elements, and the harness greedily
//! re-runs smaller candidates (coordinate-wise across the test's
//! arguments) until no candidate still fails, then reports the minimal
//! failing input alongside the original assertion message.

use std::fmt;

/// Sentinel error used by [`prop_assume!`] to reject a case.
#[doc(hidden)]
pub const ASSUME_REJECTED: &str = "__prop_assume_rejected__";

/// Test-harness configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case-level RNG (SplitMix64).
pub mod test_runner {
    /// A small deterministic generator seeded per test case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` of a test run.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15 ^ case.wrapping_mul(0xA24B_AED4_963E_E407),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a case RNG.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Produces one value for the current case.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of a failing `value`, simplest first.
        /// The default is no shrinking.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Boxes a strategy (helper for [`prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            (**self).shrink(value)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniformly picks one of several boxed strategies.
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds the union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            // The producing arm is unknown; offer every arm's candidates
            // (arms that cannot have produced `value` simply offer none).
            self.options.iter().flat_map(|o| o.shrink(value)).collect()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
        // No shrink: `f` is not invertible.
    }

    /// `any::<T>()` marker strategy.
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a full-range uniform strategy.
    pub trait Arbitrary {
        /// One uniform value over the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Candidate simplifications of `self`, simplest first.
        fn shrink(&self) -> Vec<Self>
        where
            Self: Sized,
        {
            Vec::new()
        }
    }

    /// Uniform values over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink()
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
                fn shrink(&self) -> Vec<Self> {
                    let zero: $ty = 0;
                    if *self == zero {
                        return Vec::new();
                    }
                    let mut out = vec![zero];
                    let half = *self / 2;
                    if half != zero {
                        out.push(half);
                    }
                    let step = if *self > zero { *self - 1 } else { *self + 1 };
                    if step != zero && step != half {
                        out.push(step);
                    }
                    out
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
        fn shrink(&self) -> Vec<Self> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_toward(self.start, *value)
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_toward(*self.start(), *value)
                }
            }

            impl ShrinkToward for $ty {
                fn shrink_toward(lo: $ty, value: $ty) -> Vec<$ty> {
                    if value <= lo {
                        return Vec::new();
                    }
                    let mut out = vec![lo];
                    let mid = lo + (value - lo) / 2;
                    if mid != lo && mid != value {
                        out.push(mid);
                    }
                    let dec = value - 1;
                    if dec != lo && dec != mid {
                        out.push(dec);
                    }
                    out
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize);

    /// Integer shrinking toward a lower bound (bisect, then decrement).
    trait ShrinkToward: Sized {
        fn shrink_toward(lo: Self, value: Self) -> Vec<Self>;
    }

    fn shrink_toward<T: ShrinkToward>(lo: T, value: T) -> Vec<T> {
        T::shrink_toward(lo, value)
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            if *value <= self.start {
                return Vec::new();
            }
            let mid = self.start + (*value - self.start) / 2.0;
            let mut out = vec![self.start];
            if mid != self.start && mid != *value {
                out.push(mid);
            }
            out
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($S:ident . $idx:tt),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+)
            where
                $($S::Value: Clone),+
            {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )+};
    }
    impl_strategy_tuple! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Bound;
    use std::ops::RangeBounds;

    /// Generates `Vec`s whose lengths fall in a size range.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// A vector strategy with element strategy `elem` and a length drawn
    /// uniformly from `size` (exclusive or inclusive upper bound).
    pub fn vec<S: Strategy>(elem: S, size: impl RangeBounds<usize>) -> VecStrategy<S> {
        let min = match size.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let max = match size.end_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n.saturating_sub(1),
            Bound::Unbounded => min + 64,
        };
        assert!(min <= max, "empty size range");
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural shrinks first (shorter is simpler), never below
            // the strategy's minimum length.
            if value.len() > self.min {
                let half = value.len() / 2;
                if half >= self.min && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
                out.push(value[1..].to_vec());
            }
            // Then elementwise shrinks, bounded to keep candidate lists
            // small on long vectors.
            for (i, v) in value.iter().enumerate().take(8) {
                for cand in self.elem.shrink(v).into_iter().take(2) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Everything a proptest module conventionally imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[doc(hidden)]
pub fn __panic_on_failure(test: &str, case: u32, msg: &str) -> ! {
    panic!("proptest '{test}' failed at case {case}: {msg}")
}

/// Ties a case-runner closure's argument type to its strategy's `Value`
/// so the macro-generated closure body type-checks without annotations.
#[doc(hidden)]
pub fn __checked_runner<S, F>(_strategy: &S, run: F) -> F
where
    S: strategy::Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    run
}

/// Greedily shrinks a failing input: whenever any candidate still fails,
/// adopt it and restart, until no candidate fails or the budget runs out.
#[doc(hidden)]
pub fn __shrink_failure<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    run: &F,
) -> (S::Value, String)
where
    S: strategy::Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), String>,
{
    let mut budget = 512usize;
    'outer: loop {
        for cand in strategy.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            match run(cand.clone()) {
                Err(m) if m != ASSUME_REJECTED => {
                    value = cand;
                    msg = m;
                    continue 'outer;
                }
                _ => {}
            }
        }
        break;
    }
    (value, msg)
}

#[doc(hidden)]
pub struct __CaseError(pub String);

impl fmt::Debug for __CaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+ ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($( $strat, )+);
                let run = $crate::__checked_runner(&strategy, |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                });
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                    let value = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    match run(::std::clone::Clone::clone(&value)) {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(msg) if msg == $crate::ASSUME_REJECTED => {}
                        ::std::result::Result::Err(msg) => {
                            let (value, msg) =
                                $crate::__shrink_failure(&strategy, value, msg, &run);
                            $crate::__panic_on_failure(
                                stringify!($name),
                                case,
                                &::std::format!("{msg}\n  minimal failing input: {value:?}"),
                            )
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Rejects the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::string::String::from(
                $crate::ASSUME_REJECTED,
            ));
        }
    };
}

/// Uniformly picks one of the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in 0.5f64..1.5, n in 1usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.5..1.5).contains(&b));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(any::<u8>(), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![Just(1u32), Just(2u32)].prop_map(|v| v * 10),
        ) {
            prop_assert!(x == 10 || x == 20);
            prop_assert_ne!(x, 15);
            prop_assert_eq!(x % 10, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn integer_shrink_moves_toward_range_start() {
        let strat = 3u64..100;
        let candidates = strat.shrink(&90);
        assert!(candidates.contains(&3), "lower bound offered first");
        assert!(candidates.iter().all(|c| *c >= 3 && *c < 90));
        assert!(strat.shrink(&3).is_empty(), "minimum cannot shrink");
    }

    #[test]
    fn vec_shrink_respects_min_len_and_simplifies_elements() {
        let strat = crate::collection::vec(0u8..50, 2..6);
        let candidates = strat.shrink(&vec![9, 9, 9, 9]);
        assert!(candidates.iter().all(|c| c.len() >= 2));
        assert!(candidates.iter().any(|c| c.len() < 4), "drops elements");
        assert!(
            candidates.iter().any(|c| c.len() == 4 && c.contains(&0)),
            "shrinks an element toward its bound"
        );
    }

    #[test]
    fn greedy_shrink_finds_minimal_counterexample() {
        // Fails iff x >= 17: the shrinker must land exactly on 17.
        let strat = (0u64..1000,);
        let run = |(x,): (u64,)| {
            if x >= 17 {
                Err("too big".to_owned())
            } else {
                Ok(())
            }
        };
        let (min, msg) = crate::__shrink_failure(&strat, (900,), "too big".to_owned(), &run);
        assert_eq!(min.0, 17);
        assert_eq!(msg, "too big");
    }

    #[test]
    fn any_shrink_halves_toward_zero() {
        use crate::strategy::Arbitrary;
        let candidates = 64u32.shrink();
        assert_eq!(candidates, vec![0, 32, 63]);
        let signed = (-8i32).shrink();
        assert!(signed.contains(&0) && signed.contains(&-4));
        assert!(0u8.shrink().is_empty());
    }
}
