//! Quickstart: enroll a user, watch continuous local authentication work,
//! and see an impostor get caught.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use btd_flock::module::{FlockConfig, FlockModule};
use btd_flock::risk::RiskAction;
use btd_flock::unlock::unlock_with_flock;
use btd_sim::rng::SimRng;
use btd_workload::profile::UserProfile;
use btd_workload::session::SessionGenerator;

fn main() {
    let mut rng = SimRng::seed_from(2012);

    // 1. A phone with a FLock biometric touch-display module.
    let mut flock = FlockModule::new("demo-phone", FlockConfig::fast_test(), &mut rng);
    println!("device: {}", flock.device_id());
    println!(
        "sensors: {} transparent TFT patches on the touchscreen",
        flock.auth().capture_pipeline().sensors().len()
    );

    // 2. Enroll the owner (guided flow, three fingers).
    let owner = 42;
    flock.enroll_owner(owner, 3, &mut rng);
    println!(
        "enrolled owner {owner} with {} fingers\n",
        flock.enrolled_finger_count()
    );

    // 3. Unlock with a single touch — the touch IS the authentication.
    let unlock = unlock_with_flock(flock.auth_mut(), owner, 0, 5, &mut rng);
    println!(
        "unlock: {} in {} attempt(s), {}",
        if unlock.unlocked { "OK" } else { "FAILED" },
        unlock.attempts,
        unlock.total_latency
    );

    // 4. Natural use: every ordinary touch opportunistically verifies.
    let mut gen = SessionGenerator::new(UserProfile::builtin(0), &mut rng);
    for _ in 0..300 {
        let mut touch = gen.next_touch(&mut rng);
        touch.user_id = owner; // these are the owner's physical fingers
        let out = flock.process_touch(&touch, &mut rng);
        if out.action == RiskAction::Reauthenticate {
            flock.auth_mut().risk_mut().reset_window();
        }
    }
    let s = flock.auth().stats();
    println!("\nafter 300 natural owner touches:");
    println!("  on-sensor captures : {}", s.touches - s.outside);
    println!("  quality-discarded  : {}", s.low_quality);
    println!("  verified           : {}", s.verified);
    println!("  inconclusive       : {}", s.inconclusive);
    println!("  mismatched         : {}", s.mismatched);
    println!(
        "  risk score         : {:.3}",
        flock.auth().risk().risk_score()
    );

    // 5. The phone is snatched mid-session.
    println!("\n*** phone snatched — impostor starts using it ***");
    let mut thief_gen = SessionGenerator::new(UserProfile::builtin(1), &mut rng);
    for i in 1..=100 {
        let mut touch = thief_gen.next_touch(&mut rng);
        touch.user_id = 6_666; // the thief's fingers
        let out = flock.process_touch(&touch, &mut rng);
        match out.action {
            RiskAction::Lockout => {
                println!(
                    "thief locked out after {i} touches (risk {:.3})",
                    flock.auth().risk().risk_score()
                );
                return;
            }
            RiskAction::Reauthenticate => {
                println!(
                    "explicit re-authentication demanded after {i} touches — \
                     the thief's finger cannot pass it"
                );
                return;
            }
            RiskAction::Continue => {}
        }
    }
    println!("impostor was NOT detected (unexpected)");
}
