//! Device lifecycle: identity transfer to a new phone, and identity reset
//! after losing one (paper §IV, "Identity Transfer" / "Identity Reset").
//!
//! ```sh
//! cargo run --example device_migration
//! ```

use btd_sim::rng::SimRng;
use trust_core::scenario::World;

fn main() {
    let mut rng = SimRng::seed_from(99);
    let mut world = World::new(&mut rng);
    world.add_server("bank.com", &mut rng);
    world.add_server("mail.com", &mut rng);

    // Alice sets up her first phone and registers everywhere.
    let phone1 = world.add_device("phone-1", 42, &mut rng);
    world
        .register(phone1, "bank.com", "alice", &mut rng)
        .unwrap();
    world
        .register(phone1, "mail.com", "alice-m", &mut rng)
        .unwrap();
    println!(
        "phone-1: {} identities in protected flash ({} bytes used)",
        world.device(phone1).flock().domain_count(),
        world.device(phone1).flock().storage_usage().0
    );

    // --- Upgrade: transfer everything to phone-2 -------------------------
    println!("\n== upgrade: identity transfer to phone-2 ==");
    let phone2 = world.add_device("phone-2", 42, &mut rng);
    println!("connecting both phones; owner authorizes with her fingerprint…");
    world.transfer(phone1, phone2, 42, &mut rng).unwrap();
    println!(
        "transfer complete: phone-2 now holds {} identities and {} finger templates",
        world.device(phone2).flock().domain_count(),
        world.device(phone2).flock().enrolled_finger_count()
    );

    // No re-registration needed — the bank accepts phone-2 immediately.
    world.login(phone2, "bank.com", &mut rng).unwrap();
    let s = world.run_session(phone2, "bank.com", 10, &mut rng).unwrap();
    println!(
        "phone-2 banking session: {}/{} served",
        s.served, s.attempted
    );

    // A thief cannot authorize a transfer off phone-2.
    let phone_thief = world.add_device("thief-phone", 13, &mut rng);
    let theft = world.transfer(phone2, phone_thief, 31_337, &mut rng);
    println!("thief-initiated transfer: {}", theft.unwrap_err());

    // --- Loss: reset and rebind ------------------------------------------
    println!("\n== phone-2 is lost: identity reset ==");
    let phone3 = world.add_device("phone-3", 42, &mut rng);
    let password = world
        .server(0)
        .reset_password_for("alice")
        .unwrap()
        .to_owned();
    println!("alice resets 'alice' at bank.com with her fallback password…");
    world
        .reset_and_rebind("bank.com", "alice", &password, phone3, &mut rng)
        .unwrap();
    println!("phone-3 bound.");

    // The lost phone's key no longer works at the bank.
    let stale = world.login(phone2, "bank.com", &mut rng);
    println!("lost phone-2 tries to log in: {}", stale.unwrap_err());

    // Phone-3 works.
    world.login(phone3, "bank.com", &mut rng).unwrap();
    let s3 = world.run_session(phone3, "bank.com", 5, &mut rng).unwrap();
    println!(
        "phone-3 banking session: {}/{} served — lifecycle complete",
        s3.served, s3.attempted
    );
}
