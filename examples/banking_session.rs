//! A remote banking session under attack (paper Figs. 8–10).
//!
//! Walks the full remote-identity story: CA provisioning, device-to-bank
//! registration, a continuous-authenticated browsing session, a network
//! replay attack, malware-forged requests, a display-spoofing infection —
//! and the offline frame-hash audit that catches it.
//!
//! ```sh
//! cargo run --example banking_session
//! ```

use btd_sim::rng::SimRng;
use trust_core::audit::audit_server;
use trust_core::channel::Adversary;
use trust_core::messages::Reject;
use trust_core::pages::Page;
use trust_core::scenario::World;

fn main() {
    let mut rng = SimRng::seed_from(77);

    // A world with an on-path replayer: every message is delivered twice.
    let mut world = World::with_adversary(Adversary::Replayer, &mut rng);
    world.add_server("bank.com", &mut rng);
    let phone = world.add_device("alice-phone", 42, &mut rng);

    // --- Registration (Fig. 9) -----------------------------------------
    let reg = world
        .register(phone, "bank.com", "alice", &mut rng)
        .unwrap();
    println!("registration: bound key for 'alice' in {}", reg.latency);
    println!(
        "  replayed copies: {} answered from the idempotency cache, {} rejected, \
         {} accepted as fresh (must be 0)",
        reg.metrics.duplicates_resent, reg.metrics.replays_rejected, reg.metrics.replays_accepted
    );

    // --- Login + continuous session (Fig. 10) ---------------------------
    let login = world.login(phone, "bank.com", &mut rng).unwrap();
    println!("\nlogin: session {} in {}", login.session_id, login.latency);
    let session = world.run_session(phone, "bank.com", 30, &mut rng).unwrap();
    println!(
        "browsing: {}/{} interactions served; replayed copies: {} cache-answered, \
         {} rejected, {} accepted (must be 0)",
        session.served,
        session.attempted,
        session.metrics.duplicates_resent,
        session.metrics.replays_rejected,
        session.metrics.replays_accepted
    );

    // --- Malware: forged request ----------------------------------------
    let forged = world
        .device(phone)
        .malware_forge_interaction("bank.com", "/transfer")
        .expect("live session");
    let result = world.server_mut(0).handle_interaction(&forged);
    println!(
        "\nmalware forges a /transfer request without FLock → server says: {}",
        result.unwrap_err()
    );

    // --- Malware: display spoofing ---------------------------------------
    println!("\nmalware infects the display path (user sees spoofed pages)…");
    world
        .device_mut(phone)
        .infect_display(Page::new("/spoof", b"nothing suspicious here".to_vec()));
    let infected = world.run_session(phone, "bank.com", 10, &mut rng).unwrap();
    println!(
        "  online the session looks normal: {}/{} served",
        infected.served, infected.attempted
    );

    // --- Offline audit -----------------------------------------------------
    let audit = audit_server(world.server(0));
    println!("\noffline frame-hash audit:");
    println!("  entries checked : {}", audit.total);
    println!("  legitimate      : {}", audit.legitimate);
    println!("  TAMPERED        : {}", audit.findings.len());
    if let Some(first) = audit.findings.first() {
        println!(
            "  first finding: account '{}' authorized '{}' while seeing a frame \
             that matches no legitimate view of {}",
            first.account, first.action, first.expected_path
        );
    }

    // --- Attack scoreboard --------------------------------------------------
    println!("\nserver rejection counters:");
    let mut rows: Vec<(Reject, u64)> = world
        .server(0)
        .reject_counts()
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect();
    rows.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
    for (reason, count) in rows {
        println!("  {reason:<30} {count}");
    }
}
