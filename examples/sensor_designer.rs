//! Sensor-placement design studio (paper §III-A / Fig. 7).
//!
//! Collects touch distributions for the three built-in users, renders the
//! Figure 7 heatmaps as ASCII art, then optimizes transparent-TFT sensor
//! placement for the pooled distribution, reporting the coverage-vs-cost
//! sweep a hardware designer would use.
//!
//! ```sh
//! cargo run --example sensor_designer
//! ```

use btd_placement::anneal::{anneal, AnnealConfig};
use btd_placement::cost::CostModel;
use btd_placement::greedy::greedy;
use btd_placement::pareto::{pareto_front, sweep};
use btd_placement::problem::PlacementProblem;
use btd_sim::geom::MmSize;
use btd_sim::rng::SimRng;
use btd_workload::heatmap::Heatmap;
use btd_workload::profile::UserProfile;
use btd_workload::session::SessionGenerator;

fn main() {
    let mut rng = SimRng::seed_from(7);
    let panel = UserProfile::builtin(0).panel_size();
    let touches_per_user = 6_000;

    // --- Figure 7: per-user touch distributions ---------------------------
    let mut pooled = Heatmap::new(panel, 4.0);
    for idx in 0..3 {
        let profile = UserProfile::builtin(idx);
        let name = profile.name().to_owned();
        let mut gen = SessionGenerator::new(profile, &mut rng);
        let samples = gen.generate(touches_per_user, &mut rng);
        let heatmap = Heatmap::from_samples(panel, 4.0, &samples);
        println!("touch density, {name} ({touches_per_user} touches):");
        println!("{}", heatmap.render_ascii());
        pooled.absorb(&heatmap);
    }

    // --- Hot-spot overlap (the paper's observation) -----------------------
    let maps: Vec<Heatmap> = (0..3)
        .map(|idx| {
            let profile = UserProfile::builtin(idx);
            let mut gen = SessionGenerator::new(profile, &mut rng);
            let samples = gen.generate(touches_per_user, &mut rng);
            Heatmap::from_samples(panel, 4.0, &samples)
        })
        .collect();
    println!("hot-spot overlap (Jaccard of top-25 cells):");
    for i in 0..3 {
        for j in (i + 1)..3 {
            println!(
                "  user{} vs user{}: {:.2}",
                i + 1,
                j + 1,
                maps[i].hotspot_overlap(&maps[j], 25)
            );
        }
    }

    // --- Placement optimization -------------------------------------------
    let sensor = MmSize::new(8.0, 8.0);
    let problem = PlacementProblem::new(panel, sensor, pooled);
    let cost_model = CostModel::default();

    println!("\ncoverage vs number of 8×8 mm sensors (pooled users):");
    println!(
        "{:>8} {:>10} {:>8} {:>14}",
        "sensors", "coverage", "cost", "effectiveness"
    );
    let points = sweep(&problem, 8, 2.0, &cost_model);
    for p in &points {
        println!(
            "{:>8} {:>9.1}% {:>8.2} {:>14.3}",
            p.sensors,
            100.0 * p.coverage,
            p.cost,
            cost_model.effectiveness(p.coverage, &p.placement)
        );
    }
    let front = pareto_front(&points);
    println!(
        "pareto-efficient design points: {:?}",
        front.iter().map(|p| p.sensors).collect::<Vec<_>>()
    );

    // --- Annealing refinement ----------------------------------------------
    let k = 4;
    let initial = greedy(&problem, k, 2.0);
    let before = problem.coverage(&initial);
    let refined = anneal(&problem, &initial, &AnnealConfig::default(), &mut rng);
    let after = problem.coverage(&refined);
    println!(
        "\nannealing refinement of the {k}-sensor layout: {:.1}% → {:.1}%",
        100.0 * before,
        100.0 * after
    );
    println!("final layout:");
    for (i, r) in refined.iter().enumerate() {
        println!("  sensor {}: {}", i + 1, r);
    }
}
