//! A shared family tablet: several enrolled users, critical buttons over
//! sensor regions, and a stranger who gets nowhere.
//!
//! Exercises the multi-user enrollment extension and the paper's §IV-A
//! preventive measures (critical buttons over biometric regions with a
//! minimal touch time).
//!
//! ```sh
//! cargo run --example shared_tablet
//! ```

use btd_flock::module::{FlockConfig, FlockModule};
use btd_flock::pipeline::TouchAuthOutcome;
use btd_flock::ui::UiLayout;
use btd_sim::rng::SimRng;
use btd_sim::time::{SimDuration, SimTime};

fn main() {
    let mut rng = SimRng::seed_from(4242);

    // One tablet, three enrolled family members.
    let mut flock = FlockModule::new("family-tablet", FlockConfig::fast_test(), &mut rng);
    flock.enroll_owner(1_001, 2, &mut rng); // parent (owner)
    flock.enroll_additional_user(1_002, 2, &mut rng); // second parent
    flock.enroll_additional_user(1_003, 2, &mut rng); // teenager
    println!(
        "enrolled users: {:?} ({} templates in flash)",
        flock.enrolled_users(),
        flock.enrolled_finger_count()
    );

    // Critical buttons drawn over the sensor patches.
    let layout = UiLayout::over_sensors(
        &["/purchase", "/settings", "/delete-profile"],
        flock.auth().capture_pipeline().sensors(),
        SimDuration::from_millis(200),
    );
    println!(
        "critical buttons laid out over {} sensors\n",
        layout.buttons().len()
    );

    // Each family member presses the purchase button; all verify.
    for user in [1_001u64, 1_002, 1_003] {
        let mut verified = 0;
        let attempts = 10;
        for _ in 0..attempts {
            let touch = layout.deliberate_touch("/purchase", user, 0, SimTime::ZERO, &mut rng);
            if matches!(
                flock.process_touch(&touch, &mut rng).outcome,
                TouchAuthOutcome::Verified { .. }
            ) {
                verified += 1;
            }
        }
        println!("user {user}: {verified}/{attempts} purchase touches verified");
    }

    // A visiting stranger presses the same button.
    let stranger = 9_999u64;
    let mut verified = 0;
    let mut mismatched = 0;
    for _ in 0..10 {
        let touch = layout.deliberate_touch("/purchase", stranger, 0, SimTime::ZERO, &mut rng);
        match flock.process_touch(&touch, &mut rng).outcome {
            TouchAuthOutcome::Verified { .. } => verified += 1,
            TouchAuthOutcome::Mismatched { .. } => mismatched += 1,
            _ => {}
        }
    }
    println!(
        "\nstranger {stranger}: {verified}/10 verified, {mismatched}/10 conclusively rejected \
         — purchases stay locked"
    );
    println!(
        "risk after the stranger's attempts: {:.2} ({:?})",
        flock.auth().risk().risk_score(),
        flock.auth().risk().action()
    );
}
