#!/usr/bin/env bash
# Full local gate: formatting, lints, tier-1 build + tests.
#
#   bash scripts/check.sh
#
# Mirrors what CI would run; every step must pass before a PR merges.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> trust-lint (trust boundary / determinism / journal discipline)"
cargo run --release --bin trust_lint

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "All checks passed."
