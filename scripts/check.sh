#!/usr/bin/env bash
# Full local gate: formatting, lints, tier-1 build + tests.
#
#   bash scripts/check.sh
#
# Mirrors what CI would run; every step must pass before a PR merges.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> trust-lint (trust boundary / dataflow taint / determinism / journal discipline)"
mkdir -p target
cargo run --release --bin trust_lint -- --json > target/trust_lint_findings.json

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

# Runs a deterministic --json bench into $2 and fails fast on a nonzero
# exit status BEFORE any diff: a binary that panics mid-emit leaves a
# truncated JSON whose diff noise would bury the real failure.
run_bench_json() {
  local bin="$1" out="$2"
  if ! cargo run -q --release -p btd-bench --bin "$bin" -- --json > "$out"; then
    echo "$bin exited nonzero before emitting complete JSON; fix the bench, then re-run" >&2
    exit 1
  fi
}

echo "==> goodput matrix vs checked-in BENCH_goodput.json"
mkdir -p target
run_bench_json goodput_matrix target/goodput_matrix.json
diff -u BENCH_goodput.json target/goodput_matrix.json \
  || { echo "goodput drifted: re-bless BENCH_goodput.json if intended"; exit 1; }

echo "==> storage matrix vs checked-in BENCH_storage.json"
run_bench_json storage_matrix target/storage_matrix.json
diff -u BENCH_storage.json target/storage_matrix.json \
  || { echo "storage drifted: re-bless BENCH_storage.json if intended"; exit 1; }

echo "==> parallel matrix vs checked-in BENCH_parallel.json"
run_bench_json parallel_matrix target/parallel_matrix.json
diff -u BENCH_parallel.json target/parallel_matrix.json \
  || { echo "parallel drifted: re-bless BENCH_parallel.json if intended"; exit 1; }

echo "==> parallel matrix determinism gate (same seed, second run must be byte-identical)"
run_bench_json parallel_matrix target/parallel_matrix.run2.json
diff -u target/parallel_matrix.json target/parallel_matrix.run2.json \
  || { echo "parallel_matrix is nondeterministic across same-seed runs"; exit 1; }

echo "==> bench-delta gate (per-metric comparison against the blessed baselines)"
cargo run -q --release -p btd-bench --bin goodput_matrix -- --delta BENCH_goodput.json \
  || { echo "goodput regressed against BENCH_goodput.json"; exit 1; }
cargo run -q --release -p btd-bench --bin storage_matrix -- --delta BENCH_storage.json \
  || { echo "storage regressed against BENCH_storage.json"; exit 1; }
cargo run -q --release -p btd-bench --bin parallel_matrix -- --delta BENCH_parallel.json \
  || { echo "parallel regressed against BENCH_parallel.json"; exit 1; }

echo "==> fleet_top smoke (telemetry invariance + reconciliation + SLO health)"
cargo run -q --release -p btd-bench --bin fleet_top -- 16 > target/fleet_top.txt \
  || { echo "fleet_top failed: telemetry contract or SLO health broke"; cat target/fleet_top.txt; exit 1; }

echo "All checks passed."
