#!/usr/bin/env bash
# Full local gate: formatting, lints, tier-1 build + tests.
#
#   bash scripts/check.sh
#
# Mirrors what CI would run; every step must pass before a PR merges.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> trust-lint (trust boundary / determinism / journal discipline)"
cargo run --release --bin trust_lint

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> goodput matrix vs checked-in BENCH_goodput.json"
mkdir -p target
cargo run -q --release -p btd-bench --bin goodput_matrix -- --json \
  > target/goodput_matrix.json
diff -u BENCH_goodput.json target/goodput_matrix.json \
  || { echo "goodput drifted: re-bless BENCH_goodput.json if intended"; exit 1; }

echo "==> storage matrix vs checked-in BENCH_storage.json"
cargo run -q --release -p btd-bench --bin storage_matrix -- --json \
  > target/storage_matrix.json
diff -u BENCH_storage.json target/storage_matrix.json \
  || { echo "storage drifted: re-bless BENCH_storage.json if intended"; exit 1; }

echo "All checks passed."
